"""Sustained-load soak bench for the partition-parallel execution backend.

Pushes the text-mining chain into the millions-of-rows regime (default
``SOAK_SCALE_FACTOR=400`` is 1,000,000 documents) and runs it to
sustained load: one serial reference pass, then ``SOAK_ITERATIONS``
back-to-back passes under ``Engine(engine_jobs=SOAK_ENGINE_JOBS)``, all
stage-by-stage so every pass yields measured wall-clock per pipeline
stage.  The report emits rows/sec plus p50/p95/p99 stage and run
latencies as CI-uploaded JSON.

Two axes are asserted:

* **Correctness under load** — records, per-op metrics, and modeled
  seconds of the pooled runs are bit-identical to the serial pass.
* **Throughput** — on a host with >= 4 cores the pooled engine must
  clear 2x serial rows/sec (the acceptance bar for the backend).  The
  trend-gated headline is ``parallel_efficiency`` — speedup divided by
  the ideal speedup ``min(jobs, cores)`` — so the committed baseline is
  machine-relative and one number gates 1-core and 16-core runners
  alike.

Environment knobs (defaults are the CI configuration)::

    SOAK_SCALE_FACTOR=400   # 2,500 docs per unit; 400 => 1M documents
    SOAK_ITERATIONS=3       # sustained parallel passes
    SOAK_ENGINE_JOBS=4      # worker pool width
"""

import json
import math
import os
import time

from conftest import write_result

from repro.core import AnnotationMode
from repro.engine import Engine
from repro.optimizer import Optimizer
from repro.workloads import build_textmining

SCALE_FACTOR = float(os.environ.get("SOAK_SCALE_FACTOR", "400"))
ITERATIONS = int(os.environ.get("SOAK_ITERATIONS", "3"))
ENGINE_JOBS = int(os.environ.get("SOAK_ENGINE_JOBS", "4"))

#: The acceptance bar only binds where the hardware can express it.
SPEEDUP_BAR = 2.0
MIN_CORES_FOR_BAR = 4


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (the soak methodology's convention)."""
    ordered = sorted(samples)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def _latency_summary(samples: list[float]) -> dict:
    return {
        "samples": len(samples),
        "p50_seconds": _percentile(samples, 50),
        "p95_seconds": _percentile(samples, 95),
        "p99_seconds": _percentile(samples, 99),
    }


def _staged_pass(engine, plan, data):
    """One sustained-load pass; wall seconds plus per-stage wall samples."""
    start = time.perf_counter()
    result = engine.execute_staged(plan, data)
    seconds = time.perf_counter() - start
    return result, seconds, list(engine.last_stage_walls)


def test_soak_parallel_throughput(results_dir):
    workload = build_textmining(scale_factor=SCALE_FACTOR)
    optimized = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    plan = optimized.best.physical
    cores = os.cpu_count() or 1

    serial_engine = Engine(workload.params, workload.true_costs)
    reference, serial_seconds, serial_stage_walls = _staged_pass(
        serial_engine, plan, workload.data
    )
    rows = reference.report.rows_scanned
    serial_rps = rows / serial_seconds

    pooled = Engine(workload.params, workload.true_costs, engine_jobs=ENGINE_JOBS)
    runs = []
    stage_samples: list[float] = []
    run_samples: list[float] = []
    for iteration in range(ITERATIONS):
        result, seconds, stage_walls = _staged_pass(pooled, plan, workload.data)
        # Correctness under sustained load: every pooled pass stays
        # bit-identical to the serial reference.
        assert result.records == reference.records
        assert result.report.per_op == reference.report.per_op
        assert result.seconds == reference.seconds
        run_samples.append(seconds)
        stage_samples.extend(wall for _, wall in stage_walls)
        runs.append(
            {
                "iteration": iteration,
                "wall_seconds": seconds,
                "rows_per_sec": rows / seconds,
                "stages": [
                    {"stage": name, "wall_seconds": wall}
                    for name, wall in stage_walls
                ],
            }
        )

    parallel_rps = sorted(run["rows_per_sec"] for run in runs)[len(runs) // 2]
    speedup = parallel_rps / serial_rps
    ideal = min(ENGINE_JOBS, max(1, cores))
    report = {
        "workload": workload.name,
        "scale_factor": SCALE_FACTOR,
        "rows": rows,
        "rows_out": len(reference.records),
        "cpu_count": cores,
        "engine_jobs": ENGINE_JOBS,
        "iterations": ITERATIONS,
        "serial": {
            "wall_seconds": serial_seconds,
            "rows_per_sec": serial_rps,
            "stages": [
                {"stage": name, "wall_seconds": wall}
                for name, wall in serial_stage_walls
            ],
        },
        "parallel_runs": runs,
        "parallel_rows_per_sec_median": parallel_rps,
        "stage_latency": _latency_summary(stage_samples),
        "run_latency": _latency_summary(run_samples),
        "speedup_vs_serial": speedup,
        # The trend-gated headline: speedup normalized by what the host
        # could ideally deliver, so the committed baseline is portable
        # across runner core counts.
        "parallel_efficiency": speedup / ideal,
        "note": (
            "parallel_efficiency = (parallel rows/sec / serial rows/sec) "
            f"/ min(engine_jobs, cores); bar: >= {SPEEDUP_BAR}x speedup on "
            f">= {MIN_CORES_FOR_BAR} cores"
        ),
    }
    write_result(
        results_dir, "soak.json", json.dumps(report, indent=2, sort_keys=True)
    )

    if "SOAK_SCALE_FACTOR" not in os.environ:
        # The committed configuration is the millions-of-rows regime; an
        # explicit env override (local smoke runs) may shrink it.
        assert rows >= 1_000_000
    assert len(reference.records) > 0
    assert report["stage_latency"]["p50_seconds"] > 0
    assert (
        report["stage_latency"]["p99_seconds"]
        >= report["stage_latency"]["p50_seconds"]
    )
    if cores >= MIN_CORES_FOR_BAR and ENGINE_JOBS >= MIN_CORES_FOR_BAR:
        # The acceptance bar: >= 2x wall-clock rows/sec over serial on a
        # >= 4-core host.  (On smaller hosts the trend gate still holds
        # the cores-normalized efficiency to the committed baseline.)
        assert speedup >= SPEEDUP_BAR, (
            f"parallel soak achieved only {speedup:.2f}x over serial "
            f"({parallel_rps:.0f} vs {serial_rps:.0f} rows/sec) on "
            f"{cores} cores"
        )
