"""Feedback-loop quality: q-error and pick rank per adaptive round.

For every stock workload this runs the adaptive optimizer for two
feedback rounds and records, per round, the estimate quality (median and
max per-node q-error against observed cardinalities) and the deployed
pick (estimated-cost rank, measured runtime, measured-runtime rank).

Acceptance, asserted here and pinned by ``tests/feedback``: on at least
one stock workload round 1 strictly reduces the median q-error while
improving the pick's measured-runtime rank, and no workload's pick ever
gets measured-slower through feedback.  The JSON lands next to the
throughput benches as a CI artifact.
"""

import json

from conftest import write_result

from repro.feedback import AdaptiveOptimizer
from repro.workloads import ALL_WORKLOADS

FEEDBACK_ROUNDS = 2
PICKS = 5


def test_feedback_qerror(results_dir):
    report = {"feedback_rounds": FEEDBACK_ROUNDS, "picks": PICKS, "workloads": {}}
    improved_somewhere = False
    for name, build in ALL_WORKLOADS.items():
        workload = build()
        adaptive = AdaptiveOptimizer(workload, picks=PICKS)
        outcome = adaptive.run(feedback_rounds=FEEDBACK_ROUNDS)
        rounds = []
        for r in outcome.rounds:
            rounds.append(
                {
                    "round": r.index,
                    "qerror_median": r.qerror.median,
                    "qerror_max": r.qerror.max,
                    "qerror_nodes": r.qerror.count,
                    "pick_est_rank": r.pick.rank,
                    "pick_seconds": r.pick_seconds,
                    "pick_measured_rank": r.pick_measured_rank,
                    "plans_executed": len(r.executed),
                }
            )
        report["workloads"][name] = {
            "plan_count": outcome.final.optimization.plan_count,
            "converged": outcome.converged,
            "rounds": rounds,
        }

        round0, final = outcome.rounds[0], outcome.final
        # Feedback must never deploy a measured-slower plan...
        assert final.pick_seconds <= round0.pick_seconds, name
        assert final.pick_measured_rank <= round0.pick_measured_rank, name
        # ...and estimates must not get worse in the median.
        assert final.qerror.median <= round0.qerror.median, name
        if len(outcome.rounds) > 1:
            round1 = outcome.rounds[1]
            strictly_better_rank = (
                round1.pick_measured_rank < round0.pick_measured_rank
            )
            preserved_best = (
                round0.pick_measured_rank == 1 and round1.pick_measured_rank == 1
            )
            if round1.qerror.median < round0.qerror.median and (
                strictly_better_rank or preserved_best
            ):
                improved_somewhere = True

    # The headline claim: at least one stock workload demonstrably gains.
    assert improved_somewhere

    write_result(
        results_dir, "feedback_qerror.json", json.dumps(report, indent=2)
    )
