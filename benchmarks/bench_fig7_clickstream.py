"""Figure 7: cost estimates and runtimes for ALL execution plans of the
clickstream-processing job (non-relational reordering).

Paper: 4 plans; the best (33:52) pushes the selective login join below both
non-relational Reduces and beats the implemented flow (rank 3, 47:39) by
1.4x.  Our flow closes to 9 orders (the rotation set also finds bushy
login x user-info variants); the implemented flow again sits mid-ranking
and the best plan again wins by ~1.4x by pushing the join down.
"""

from conftest import write_result

from repro.bench import run_experiment, render_figure
from repro.core import AnnotationMode
from repro.core.plan import linearize


PAPER_NOTE = (
    "paper: 4 plans; best 33:52 beats the implemented flow (rank 3, 47:39) "
    "by 1.4x; worst 59:22"
)


def run_fig7(workload):
    return run_experiment(workload, execute_all=True, mode=AnnotationMode.MANUAL)


def test_fig7_clickstream(benchmark, clickstream_workload, results_dir):
    outcome = benchmark.pedantic(
        run_fig7, args=(clickstream_workload,), rounds=1, iterations=1
    )
    write_result(
        results_dir,
        "fig7_clickstream.txt",
        render_figure(outcome, "Figure 7 — clickstream plan quality", PAPER_NOTE),
    )

    assert outcome.plan_count == 9
    implemented_rank = outcome.original_rank()
    assert implemented_rank is not None
    # The implemented flow is neither best nor worst (paper: rank 3 of 4).
    assert 2 <= implemented_rank <= outcome.plan_count - 1

    implemented = next(p for p in outcome.executed if p.is_original)
    best = outcome.executed[0]
    win = implemented.runtime_seconds / best.runtime_seconds
    # Paper: 1.4x.
    assert 1.2 <= win <= 1.7

    # The winning plan pushes the login join below both Reduce operators.
    best_order = linearize(outcome.optimization.ranked[0].body)
    assert best_order.index("filter_logged_in") < best_order.index(
        "filter_buy_sessions"
    )
    # Simulated minutes land in the paper's range.
    assert 1700 < best.runtime_seconds < 2600          # paper: 2032 s
    assert 2700 < outcome.executed[-1].runtime_seconds < 3900  # paper: 3562 s
