"""Optimizer throughput: memoized vs. unmemoized enumerate-and-cost.

The hash-consed plan representation and the shared Volcano memo table
(one ``PhysicalOptimizer`` reused across every enumerated alternative)
amortize sub-plan optimization across the whole plan space.  This
benchmark times the full optimize pipeline (enumeration + costing +
ranking) on all four workloads with and without the shared memo, emits
the numbers as JSON (plans/sec and total seconds), and asserts that the
memoized results are plan-for-plan identical to the unmemoized
reference: same ranked order, same costs, same ships and local
strategies.
"""

import json
import time

from conftest import write_result

from repro.core import AnnotationMode
from repro.core.plan import signature
from repro.optimizer import Optimizer


def _optimize(workload, reuse_memo):
    optimizer = Optimizer(
        workload.catalog,
        workload.hints,
        AnnotationMode.SCA,
        workload.params,
        reuse_memo=reuse_memo,
    )
    start = time.perf_counter()
    result = optimizer.optimize(workload.plan)
    return result, time.perf_counter() - start


def assert_plans_identical(memoized, reference):
    assert memoized.plan_count == reference.plan_count
    for got, want in zip(memoized.ranked, reference.ranked):
        assert got.rank == want.rank
        assert signature(got.body) == signature(want.body)
        assert got.cost == want.cost
        assert got.physical.describe() == want.physical.describe()


def run_throughput(workloads):
    report = {}
    for w in workloads:
        # Warm the one-time operator-level caches (SCA analysis, property
        # binding) so the timed runs compare pure enumerate-and-cost work.
        _optimize(w, reuse_memo=True)
        reference, ref_s = _optimize(w, reuse_memo=False)
        memoized, memo_s = _optimize(w, reuse_memo=True)
        assert_plans_identical(memoized, reference)
        plans = memoized.plan_count
        report[w.name] = {
            "plans": plans,
            "memoized_seconds": memo_s,
            "unmemoized_seconds": ref_s,
            "memoized_plans_per_sec": plans / memo_s if memo_s else float("inf"),
            "unmemoized_plans_per_sec": plans / ref_s if ref_s else float("inf"),
            "speedup": ref_s / memo_s if memo_s else float("inf"),
        }
    return report


def test_optimizer_throughput(
    benchmark,
    q7_workload,
    q15_workload,
    clickstream_workload,
    textmining_workload,
    results_dir,
):
    workloads = [q7_workload, q15_workload, clickstream_workload, textmining_workload]
    report = benchmark.pedantic(
        run_throughput, args=(workloads,), rounds=1, iterations=1
    )
    write_result(
        results_dir,
        "optimizer_throughput.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    # The memoized path must never be slower than ~par with the reference;
    # on the large Q7 plan space the shared memo is a clear win.
    assert report["tpch_q7"]["speedup"] > 1.5
    for stats in report.values():
        assert stats["plans"] >= 1
