"""Mid-query re-optimization: a mis-hinted plan recovers mid-run.

The scenario the tentpole exists for: the clickstream workload is
optimized under a deliberately wrong hint — the buy filter is declared
near-annihilating (selectivity 0.05, ~10 surviving sessions) when it in
fact forwards every click of every buying session — so the optimizer
bets on a tiny intermediate and picks a plan that is several times
slower than the best one.  Executed stage-by-stage, the very first
boundary *after the mis-hinted operator* reveals the true cardinality;
the controller re-plans the unexecuted suffix against the exact
materialized boundary, switches, and the end-to-end modeled time lands
within a whisker of what a perfectly-hinted run would have cost.

Also pinned here: with ``switch_threshold=inf`` the staged execution is
bit-identical to the plain engine (the correctness bar), and the
switched run produces the identical result set.

Results are written to ``benchmarks/results/midquery.json``.
"""

import json
import math

from conftest import write_result

from repro.feedback import run_midquery
from repro.optimizer import Hints
from repro.workloads import build_clickstream

#: Truth: the filter forwards whole buying sessions (thousands of rows).
MISLEADING_BUY_HINT = Hints(selectivity=0.05, cpu_per_call=3.0, distinct_keys=10)


def run_bench():
    workload = build_clickstream()
    mis_hints = dict(workload.hints)
    mis_hints["filter_buy_sessions"] = MISLEADING_BUY_HINT

    # The race: the mis-hinted pick to completion vs the same pick with
    # mid-query re-optimization at every stage boundary.
    experiment = run_midquery(workload, hints=mis_hints, switch_threshold=1.1)
    # Reference point: what a correctly-hinted optimizer would have run.
    well_hinted = run_midquery(workload, switch_threshold=math.inf)
    # Correctness bar: switching disabled == plain engine, bit-identical.
    frozen = run_midquery(workload, hints=mis_hints, switch_threshold=math.inf)

    switches = [d for d in experiment.decisions if d.switched]
    report = {
        "workload": workload.name,
        "plan_count": experiment.plan_count,
        "switch_threshold": 1.1,
        "mis_hint": {
            "operator": "filter_buy_sessions",
            "selectivity": MISLEADING_BUY_HINT.selectivity,
            "distinct_keys": MISLEADING_BUY_HINT.distinct_keys,
        },
        "baseline_seconds": experiment.baseline_seconds,
        "midquery_seconds": experiment.adaptive_seconds,
        "modeled_speedup": experiment.modeled_speedup,
        "well_hinted_seconds": well_hinted.baseline_seconds,
        "switches": [
            {
                "boundary": d.boundary,
                "stage": d.stage_name,
                "remaining_cost_kept": d.current_cost,
                "remaining_cost_replanned": d.best_cost,
                "improvement": d.improvement,
            }
            for d in switches
        ],
        "boundaries": len(experiment.decisions),
        "records_match": experiment.records_match,
        "frozen_bit_identical": (
            frozen.adaptive_seconds == frozen.baseline_seconds
            and frozen.adaptive.records == frozen.baseline.records
            and frozen.adaptive.report.per_op == frozen.baseline.report.per_op
        ),
    }
    return report


def test_mishinted_plan_recovers_mid_run(benchmark, results_dir):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_result(
        results_dir,
        "midquery.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    # The wrong plan was switched at a stage boundary...
    assert report["switches"], "no mid-query switch fired"
    assert report["switches"][0]["stage"] == "filter_buy_sessions"
    # ...the end-to-end modeled time beats running the mis-pick through
    # (~6.7x measured; gate conservatively)...
    assert report["modeled_speedup"] > 2.0
    # ...recovering to within 5% of the perfectly-hinted runtime...
    assert report["midquery_seconds"] <= 1.05 * report["well_hinted_seconds"]
    # ...without changing the answer, and with switching disabled the
    # staged engine is bit-identical to the plain one.
    assert report["records_match"]
    assert report["frozen_bit_identical"]
