"""Figure 3 / the Q15 discussion of Section 7.3: the plan space of TPC-H
query 15 and the physical strategies the reordering unlocks.

Paper narrative:
  * With Reduce below Match (Figure 3a) the optimizer partitions the
    Reduce input, and the Match *reuses* the partitioning property —
    the aggregated side is forwarded, the supplier side shipped.
  * With Match below Reduce (Figure 3b) the lineitem side is large, so
    the optimizer instead *broadcasts* the small supplier relation and
    forwards lineitem.

Both decisions must fall out of the cost-based physical optimizer here.
(The paper enumerates 4 orders; our pairwise conditions derive 3 — see
EXPERIMENTS.md.)
"""

from conftest import write_result

from repro.bench import run_experiment
from repro.core import AnnotationMode
from repro.core.plan import linearize
from repro.optimizer import ShipKind


def run_q15(workload):
    return run_experiment(workload, execute_all=True, mode=AnnotationMode.MANUAL)


def _find_op(phys, name):
    if phys.name == name:
        return phys
    for child in phys.children:
        found = _find_op(child, name)
        if found is not None:
            return found
    return None


def test_q15_plan_space_and_strategies(benchmark, q15_workload, results_dir):
    outcome = benchmark.pedantic(run_q15, args=(q15_workload,), rounds=1, iterations=1)
    result = outcome.optimization

    lines = ["Q15 plan space (paper Figure 3 discussion)", ""]
    for plan in result.ranked:
        execution = next(e for e in outcome.executed if e.rank == plan.rank)
        lines.append(
            f"rank {plan.rank}: {' -> '.join(linearize(plan.body))} "
            f"(cost ~{plan.cost:.1f}s, simulated {execution.runtime_label})"
        )
        lines.append(plan.physical.describe(indent=1))
        lines.append("")
    write_result(results_dir, "q15_planspace.txt", "\n".join(lines))

    assert result.plan_count == 3  # paper: 4; see EXPERIMENTS.md

    # Find the three alternatives by operator order.
    by_order = {linearize(p.body): p for p in result.ranked}
    reduce_first = by_order[
        ("sigma_shipdate_q15", "gamma_supplier_revenue", "join_s_rev")
    ]
    join_mid = by_order[
        ("sigma_shipdate_q15", "join_s_rev", "gamma_supplier_revenue")
    ]
    join_early = by_order[
        ("join_s_rev", "sigma_shipdate_q15", "gamma_supplier_revenue")
    ]

    # (a) Reduce below Match: the Match forwards the aggregated side,
    # reusing the Reduce's partitioning (paper: "the partitioning property
    # remains and can be reused").
    match_a = _find_op(reduce_first.physical, "join_s_rev")
    assert ShipKind.FORWARD in {s.kind for s in match_a.ships}
    reduce_a = _find_op(reduce_first.physical, "gamma_supplier_revenue")
    assert reduce_a.ships[0].kind is ShipKind.PARTITION

    # (b) With the filtered join below the Reduce, the interesting-property
    # machinery chooses partition-partition for the Match so the Reduce
    # above can forward — property-aware planning across the swap.
    match_mid = _find_op(join_mid.physical, "join_s_rev")
    assert {s.kind for s in match_mid.ships} == {ShipKind.PARTITION}
    reduce_mid = _find_op(join_mid.physical, "gamma_supplier_revenue")
    assert reduce_mid.ships[0].kind is ShipKind.FORWARD

    # (c) With the *unfiltered* lineitem feeding the Match, shipping it is
    # expensive: the optimizer broadcasts the much smaller supplier input
    # instead (the paper's Figure 3b strategy).
    match_b = _find_op(join_early.physical, "join_s_rev")
    assert match_b.ships[0].kind is ShipKind.BROADCAST
    assert match_b.build_side == 0  # the supplier side builds the table

    # The aggregation-early plans beat the join-early plan on this data.
    assert reduce_first.cost < join_early.cost
