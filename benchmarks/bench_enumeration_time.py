"""Enumeration overhead (Section 7.3, "Enumeration Time").

Paper: "plan enumeration took less than 1654 ms" for every evaluation
query with the naive implementation, and "the overhead of performing the
static code analysis is virtually zero."

This benchmark times (a) pure plan enumeration per workload, (b) the
full SCA pass over all UDFs of a workload, asserting both stay within
the paper's envelope, and (c) end-to-end per-optimize planning latency
(enumerate + cost + rank, cold memo) as p50/p99 over repeated runs —
the per-call figure a serving path would see, reported for both the
eager reference and the cost-guided search.
"""

import time

from conftest import percentile, write_result

from repro.bench import render_table
from repro.core import AnnotationMode, body
from repro.core.operators import UdfOperator
from repro.core.plan import iter_nodes
from repro.optimizer import Optimizer, PlanContext, enumerate_flows
from repro.sca import analyze_udf

PLANNING_REPS = 5


def time_enumeration(workload):
    ctx = PlanContext(workload.catalog, AnnotationMode.SCA)
    start = time.perf_counter()
    flows = enumerate_flows(body(workload.plan), ctx)
    elapsed = time.perf_counter() - start
    return len(flows), elapsed


def time_sca(workload):
    udf_ops = [
        n.op for n in iter_nodes(workload.plan) if isinstance(n.op, UdfOperator)
    ]
    start = time.perf_counter()
    for op in udf_ops:
        analyze_udf(op.udf.fn, op.udf.param_kinds)
    return len(udf_ops), time.perf_counter() - start


def time_planning(workload, search):
    """Cold per-optimize latency distribution (fresh memo each call)."""
    latencies = []
    for _ in range(PLANNING_REPS):
        optimizer = Optimizer(
            workload.catalog,
            workload.hints,
            AnnotationMode.SCA,
            workload.params,
            search=search,
            top_k=1 if search == "guided" else None,
        )
        start = time.perf_counter()
        optimizer.optimize(workload.plan)
        latencies.append(time.perf_counter() - start)
    return percentile(latencies, 50), percentile(latencies, 99)


def run_enumeration_timing(workloads):
    rows = []
    for w in workloads:
        plans, enum_s = time_enumeration(w)
        udfs, sca_s = time_sca(w)
        eager_p50, eager_p99 = time_planning(w, "eager")
        guided_p50, guided_p99 = time_planning(w, "guided")
        rows.append(
            (
                w.name,
                plans,
                f"{enum_s * 1000:.1f} ms",
                udfs,
                f"{sca_s * 1000:.1f} ms",
                f"{eager_p50 * 1000:.1f}/{eager_p99 * 1000:.1f} ms",
                f"{guided_p50 * 1000:.1f}/{guided_p99 * 1000:.1f} ms",
            )
        )
    return rows


def test_enumeration_time(
    benchmark,
    q7_workload,
    q15_workload,
    clickstream_workload,
    textmining_workload,
    results_dir,
):
    workloads = [q7_workload, q15_workload, clickstream_workload, textmining_workload]
    rows = benchmark.pedantic(
        run_enumeration_timing, args=(workloads,), rounds=1, iterations=1
    )
    table = render_table(
        rows,
        (
            "PACT task",
            "plans",
            "enumeration",
            "UDFs",
            "SCA pass",
            "eager plan p50/p99",
            "guided plan p50/p99",
        ),
    )
    write_result(
        results_dir,
        "enumeration_time.txt",
        "Enumeration, SCA, and per-optimize planning latency\n"
        "(paper: enumeration < 1654 ms, SCA ~ 0; planning = enumerate + "
        "cost + rank, cold memo)\n" + table,
    )

    for _, _, enum_label, _, sca_label, eager_label, _ in rows:
        assert float(enum_label.split()[0]) < 1654.0  # the paper's bound
        assert float(sca_label.split()[0]) < 500.0
        # Full eager planning stays within the paper's enumeration
        # envelope too on every evaluation workload (p99).
        assert float(eager_label.split("/")[1].split()[0]) < 1654.0
