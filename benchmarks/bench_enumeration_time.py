"""Enumeration overhead (Section 7.3, "Enumeration Time").

Paper: "plan enumeration took less than 1654 ms" for every evaluation
query with the naive implementation, and "the overhead of performing the
static code analysis is virtually zero."

This benchmark times (a) pure plan enumeration per workload and (b) the
full SCA pass over all UDFs of a workload, asserting both stay within the
paper's envelope.
"""

import time

from conftest import write_result

from repro.bench import render_table
from repro.core import AnnotationMode, body
from repro.core.operators import UdfOperator
from repro.core.plan import iter_nodes
from repro.optimizer import PlanContext, enumerate_flows
from repro.sca import analyze_udf


def time_enumeration(workload):
    ctx = PlanContext(workload.catalog, AnnotationMode.SCA)
    start = time.perf_counter()
    flows = enumerate_flows(body(workload.plan), ctx)
    elapsed = time.perf_counter() - start
    return len(flows), elapsed


def time_sca(workload):
    udf_ops = [
        n.op for n in iter_nodes(workload.plan) if isinstance(n.op, UdfOperator)
    ]
    start = time.perf_counter()
    for op in udf_ops:
        analyze_udf(op.udf.fn, op.udf.param_kinds)
    return len(udf_ops), time.perf_counter() - start


def run_enumeration_timing(workloads):
    rows = []
    for w in workloads:
        plans, enum_s = time_enumeration(w)
        udfs, sca_s = time_sca(w)
        rows.append(
            (w.name, plans, f"{enum_s * 1000:.1f} ms", udfs, f"{sca_s * 1000:.1f} ms")
        )
    return rows


def test_enumeration_time(
    benchmark,
    q7_workload,
    q15_workload,
    clickstream_workload,
    textmining_workload,
    results_dir,
):
    workloads = [q7_workload, q15_workload, clickstream_workload, textmining_workload]
    rows = benchmark.pedantic(
        run_enumeration_timing, args=(workloads,), rounds=1, iterations=1
    )
    table = render_table(
        rows, ("PACT task", "plans", "enumeration", "UDFs", "SCA pass")
    )
    write_result(
        results_dir,
        "enumeration_time.txt",
        "Enumeration and SCA overhead (paper: enumeration < 1654 ms, SCA ~ 0)\n"
        + table,
    )

    for _, _, enum_label, _, sca_label in rows:
        assert float(enum_label.split()[0]) < 1654.0  # the paper's bound
        assert float(sca_label.split()[0]) < 500.0
