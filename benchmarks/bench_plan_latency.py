"""Planning latency: guided (best-first) vs eager search, stress space.

The cost-guided search (``Optimizer(search="guided")``) streams the
enumerated closure into a frontier ordered by an admissible lower bound
and physically costs only frontier heads, terminating once the top-``k``
prefix is provably final.  On the join-heavy stress space (7 chained
joins x 2 pushable filters -> 6864 alternatives, ~15k distinct
sub-plans) this turns planning from "cost everything" into "cost a
handful", which is the serving-path latency story.

Measured here with a long-lived optimizer and a cold memo per call
(every per-call table — memo, bounds, estimates — starts empty):

* p50/p99 per-optimize planning latency for both strategies;
* cardinality-estimate cache misses spent per optimize (deterministic);
* the ``optimizer.search.*`` work counters exported through repro.obs;
* exact rank-1 parity between the two strategies (asserted, not just
  reported).

Headline (trend-gated): ``median_speedup`` — eager median latency over
guided median latency, a machine-relative ratio.  The acceptance floors
(>= 5x fewer estimate calls AND >= 5x lower median planning latency) are
hard-asserted on every run.  Results land in
``benchmarks/results/plan_latency.json``.
"""

import gc
import json
import time

from bench_reoptimize import build_stress
from conftest import percentile, write_result

from repro.core import AnnotationMode
from repro.core.plan import signature
from repro.obs import Tracer
from repro.optimizer import Optimizer

EAGER_REPS = 3
GUIDED_REPS = 7


def make_optimizer(catalog, hints, search, tracer=None):
    """A long-lived optimizer, as a serving path would hold one."""
    return Optimizer(
        catalog,
        hints,
        AnnotationMode.MANUAL,
        search=search,
        top_k=1 if search == "guided" else None,
        tracer=tracer,
    )


def plan_once(optimizer, plan):
    """One cold-memo optimize: every per-call table (memo, bounds,
    estimates) starts empty; only the optimizer's hint-independent
    context caches (derived UDF properties, rule outcomes) stay warm,
    matching a serving system planning query after query."""
    gc.collect()  # prior reps' garbage must not bill a random rep
    start = time.perf_counter()
    result = optimizer.optimize(plan)
    return time.perf_counter() - start, result


def measure(plan, catalog, hints, search, reps):
    optimizer = make_optimizer(catalog, hints, search)
    # One uncounted warmup: the first optimize of a process pays one-time
    # costs (global plan-node interning of the closure, allocator growth)
    # that a per-call latency figure should not charge to either strategy.
    plan_once(optimizer, plan)
    latencies = []
    result = None
    for _ in range(reps):
        elapsed, result = plan_once(optimizer, plan)
        latencies.append(elapsed)
    stats = result.search_stats
    return {
        "reps": reps,
        "p50_seconds": percentile(latencies, 50),
        "p99_seconds": percentile(latencies, 99),
        "expanded": stats.expanded,
        "costed": stats.costed,
        "pruned": stats.pruned,
        "bounds_computed": stats.bounds_computed,
        "estimate_calls": stats.estimate_calls,
    }, result


def run_bench():
    plan, catalog, hints = build_stress()
    eager_stats, eager = measure(plan, catalog, hints, "eager", EAGER_REPS)
    guided_stats, guided = measure(plan, catalog, hints, "guided", GUIDED_REPS)

    # Parity: guided's rank-1 is the eager rank-1, exactly.
    g, e = guided.best, eager.best
    assert signature(g.body) == signature(e.body)
    assert g.cost == e.cost  # exact float equality
    assert g.physical.describe() == e.physical.describe()

    # The search-work counters flow through repro.obs unchanged.
    tracer = Tracer()
    _, traced = plan_once(
        make_optimizer(catalog, hints, "guided", tracer=tracer), plan
    )
    counters = tracer.metrics.counters
    assert counters["optimizer.search.expanded"] == traced.search_stats.expanded
    assert counters["optimizer.search.costed"] == traced.search_stats.costed
    assert counters["optimizer.search.pruned"] == traced.search_stats.pruned
    assert counters["optimizer.search.bounds"] == (
        traced.search_stats.bounds_computed
    )
    assert counters["optimizer.estimates"] == traced.search_stats.estimate_calls

    return {
        "alternatives": eager.plan_count,
        "eager": eager_stats,
        "guided": guided_stats,
        "median_speedup": (
            eager_stats["p50_seconds"] / guided_stats["p50_seconds"]
        ),
        "p99_speedup": eager_stats["p99_seconds"] / guided_stats["p99_seconds"],
        "estimate_call_ratio": (
            eager_stats["estimate_calls"] / guided_stats["estimate_calls"]
        ),
        "search_counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("optimizer.")
        },
    }


def test_plan_latency(benchmark, results_dir):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_result(
        results_dir,
        "plan_latency.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    eager, guided = report["eager"], report["guided"]
    # Both strategies walked the same 6864-alternative space...
    assert report["alternatives"] == eager["expanded"] == guided["expanded"]
    # ...but guided costed a sliver of it and pruned the rest unseen.
    assert guided["costed"] < guided["expanded"] // 100
    assert guided["costed"] + guided["pruned"] == guided["expanded"]
    # Acceptance floors: >= 5x fewer estimate-cache misses and >= 5x
    # lower median planning latency (measured ~870x / ~7x on the dev
    # box; gated conservatively for CI noise).
    assert report["estimate_call_ratio"] >= 5.0
    assert report["median_speedup"] >= 5.0
