"""Planning-server replay: multi-tenant workload mix, cold vs warm.

Spawns one real ``repro serve`` process (guided search, sqlite-backed
per-tenant statistics) and replays a workload mix against it from
``TENANTS`` concurrent tenants — every tenant requests all four paper
workloads, each over its own connection, exactly as a fleet of clients
would.  Each tenant's store is seeded with a distinct salt observation
first, so every tenant carries a distinct statistics fingerprint and the
shared plan cache **must not** leak plans across tenants (hard-asserted:
zero ``serve.cache_cross_tenant_hits``).

Phases:

* **warmup** — a throwaway tenant plans each workload once, absorbing
  one-time server costs (workload datagen, plan-node interning) that a
  steady-state latency figure should not charge to either phase;
* **cold** — each tenant's first request per workload: full guided
  planning against its own statistics (16 plans at the default mix);
* **warm** — ``WARM_REPS`` more rounds of the same mix: plan-cache hits
  served from the fingerprint-keyed cache.

Headline (trend-gated): ``warm_speedup_p50`` — cold p50 over warm p50
round-trip latency, a machine-relative ratio gated against a curated
portable floor.  The >= 5x floor and the zero-cross-tenant-hit invariant
are hard-asserted on every run.  Results land in
``benchmarks/results/serve.json``.

Nightly knobs: ``REPRO_BENCH_SERVE_TENANTS`` (default 4) and
``REPRO_BENCH_SERVE_WARM`` (default 25 rounds).
"""

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from conftest import percentile, write_result

from repro.feedback.observation import ExecutionObservation, OpObservation
from repro.feedback.store import StatisticsStore
from repro.serve import spawn_server

TENANTS = int(os.environ.get("REPRO_BENCH_SERVE_TENANTS", "4"))
WARM_REPS = int(os.environ.get("REPRO_BENCH_SERVE_WARM", "25"))
WORKLOADS = ("tpch_q7", "tpch_q15", "clickstream", "textmining")


def seed_tenant_store(stats_dir: Path, tenant: str, salt: int) -> None:
    """Give a tenant a distinct statistics fingerprint.

    The salt observation names an operator no workload contains, so it
    changes the tenant's ``estimator_view()`` (hence its cache
    fingerprint) without perturbing any real estimate — plans stay
    comparable across tenants while their cache keys must diverge.
    """
    store = StatisticsStore.open(stats_dir / f"{tenant}.sqlite")
    store.ingest(
        ExecutionObservation(
            plan_key=f"seed_{tenant}",
            seconds=1.0,
            ops=(
                OpObservation(
                    key=f"salt_{salt}",
                    op_name=f"salt_{salt}",
                    kind="map",
                    rows_in=salt + 1,
                    rows_out=salt + 1,
                    udf_calls=salt + 1,
                    cpu_per_call=1e-6,
                    disk_bytes=0.0,
                ),
            ),
        )
    )
    store.close()


def replay_mix(server, tenant: str, rounds: int, sink: list) -> None:
    """One tenant's client thread: the workload mix, round after round.

    Appends ``(latency_seconds, response)`` per request to ``sink``."""
    with server.connect() as client:
        for _ in range(rounds):
            for workload in WORKLOADS:
                start = time.perf_counter()
                response = client.plan(workload, tenant=tenant)
                sink.append((time.perf_counter() - start, response))


def run_phase(server, tenants: list[str], rounds: int):
    """Replay ``rounds`` of the mix from every tenant concurrently."""
    sinks: dict[str, list] = {tenant: [] for tenant in tenants}
    threads = [
        threading.Thread(
            target=replay_mix, args=(server, tenant, rounds, sinks[tenant])
        )
        for tenant in tenants
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return sinks, wall


def run_bench():
    tenants = [f"tenant_{i}" for i in range(TENANTS)]
    with tempfile.TemporaryDirectory(prefix="repro_serve_bench_") as tmp:
        stats_dir = Path(tmp) / "stats"
        stats_dir.mkdir()
        for index, tenant in enumerate(tenants):
            seed_tenant_store(stats_dir, tenant, index)
        with spawn_server(
            ["--stats-dir", str(stats_dir), "--search", "guided"]
        ) as server:
            # Warmup: one-time server costs (datagen, interning) land on
            # a throwaway tenant, off both measured phases.
            warmup_sink: list = []
            replay_mix(server, "warmup", 1, warmup_sink)

            cold_sinks, _ = run_phase(server, tenants, 1)
            warm_sinks, warm_wall = run_phase(server, tenants, WARM_REPS)

            with server.connect() as client:
                counters = client.metrics()["counters"]

    cold = [entry for sink in cold_sinks.values() for entry in sink]
    warm = [entry for sink in warm_sinks.values() for entry in sink]

    # Every cold request planned (distinct fingerprints: no tenant can
    # borrow another's entry), every warm request hit the cache.
    assert all(r["cache"] == "miss" for _, r in cold)
    assert all(r["cache"] == "hit" for _, r in warm)
    fingerprints = {r["fingerprint"] for _, r in cold}
    assert len(fingerprints) == TENANTS, "tenant fingerprints must differ"
    # Salted statistics shape the cache key, not the estimates: every
    # tenant's plan for a workload is identical, only its key differs.
    for workload in WORKLOADS:
        costs = {r["cost"] for _, r in cold if r["workload"] == workload}
        assert len(costs) == 1

    cold_latencies = [latency for latency, _ in cold]
    warm_latencies = [latency for latency, _ in warm]
    report = {
        "tenants": TENANTS,
        "workloads": list(WORKLOADS),
        "warm_reps": WARM_REPS,
        "cold_requests": len(cold),
        "warm_requests": len(warm),
        "cold_p50_seconds": percentile(cold_latencies, 50),
        "cold_p99_seconds": percentile(cold_latencies, 99),
        "warm_p50_seconds": percentile(warm_latencies, 50),
        "warm_p99_seconds": percentile(warm_latencies, 99),
        "warm_plans_per_sec": len(warm) / warm_wall,
        "planning_p50_seconds": percentile(
            [r["planning_seconds"] for _, r in cold], 50
        ),
        "serve_counters": {
            name: value for name, value in sorted(counters.items())
        },
    }
    report["warm_speedup_p50"] = (
        report["cold_p50_seconds"] / report["warm_p50_seconds"]
    )
    report["warm_speedup_p99"] = (
        report["cold_p99_seconds"] / report["warm_p99_seconds"]
    )
    return report


def test_serve(benchmark, results_dir):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_result(
        results_dir, "serve.json", json.dumps(report, indent=2, sort_keys=True)
    )

    counters = report["serve_counters"]
    # The invariant the fingerprint-keyed cache exists for: with
    # distinct per-tenant statistics, plans never cross tenants.
    assert counters.get("serve.cache_cross_tenant_hits", 0) == 0
    # Exactly the warmup + cold requests planned; every warm one hit.
    expected_misses = len(WORKLOADS) * (report["tenants"] + 1)
    assert counters["serve.planned"] == expected_misses
    assert counters["serve.cache_misses"] == expected_misses
    assert counters["serve.cache_hits"] == report["warm_requests"]
    assert counters.get("serve.rejected", 0) == 0
    # Acceptance floor: serving from the warm cache beats cold guided
    # planning by >= 5x at the median (measured ~10x+ on the dev box;
    # the trend gate tracks the curated baseline on top of this).
    assert report["warm_speedup_p50"] >= 5.0
