"""Figure 6: normalized cost estimates and runtimes for 10 rank-picked
plans of the biomedical text-mining job.

Paper: 24 enumerated plans; best ~16:53 min, worst ~168:41 min (~10x);
the cheap plans form a low plateau, the bad ones an order of magnitude up.
"""

from conftest import write_result

from repro.bench import run_experiment, render_figure

PAPER_NOTE = "paper: 24 plans; best 16:53 min, worst 168:41 min (~10x)"


def run_fig6(workload):
    return run_experiment(workload, picks=10)


def test_fig6_textmining(benchmark, textmining_workload, results_dir):
    outcome = benchmark.pedantic(
        run_fig6, args=(textmining_workload,), rounds=1, iterations=1
    )
    write_result(
        results_dir,
        "fig6_textmining.txt",
        render_figure(outcome, "Figure 6 — text mining plan quality", PAPER_NOTE),
    )

    assert outcome.plan_count == 24  # exactly the paper's count
    runtimes = [p.runtime_seconds for p in outcome.executed]
    assert runtimes[0] <= min(runtimes) * 1.2
    # Order-of-magnitude class spread (paper 10x; simulated 6-10x).
    assert outcome.runtime_spread >= 5.0
    # Monotone-ish: the top picks are all much cheaper than the bottom picks.
    assert max(runtimes[:3]) < min(runtimes[-3:])
    # Minutes scale comparable to the paper.
    assert 900 < runtimes[0] < 2100         # paper: 1013 s
    assert 8000 < runtimes[-1] < 13000      # paper: 10121 s
