"""Tracing overhead bench: observing a run must not change its price.

Runs the clickstream pick to completion ``TRACE_OVERHEAD_ITERATIONS``
times untraced and as many times under a live :class:`repro.obs.Tracer`,
interleaved so thermal drift hits both sides equally, and compares
min-of-N wall clocks.  Every pass is also asserted bit-identical to the
untraced reference — the tracer is a pure observer on the wall-clock
axis only.

Two overheads are reported:

* ``tracing_on_overhead`` — min traced wall / min untraced wall.  The
  trend-gated headline (lower is better); the <= 1.10 acceptance bar
  binds on the cleanest interleaved pair, which noise can only inflate.
* ``tracing_off_overhead`` — the default no-op tracer's cost, estimated
  machine-relatively: a microbenchmarked per-noop-span cost times the
  number of span sites the run actually hits, over the untraced wall.
  Bar: <= 1.02.

Environment knobs (defaults are the CI configuration)::

    TRACE_OVERHEAD_SCALE_FACTOR=8   # clickstream datagen scale
    TRACE_OVERHEAD_ITERATIONS=5     # passes per side (min-of-N)
"""

import json
import os

from conftest import write_result

from repro.core import AnnotationMode
from repro.engine import Engine
from repro.obs import NOOP_TRACER, Tracer, clock
from repro.optimizer import Optimizer
from repro.workloads import build_clickstream

SCALE_FACTOR = float(os.environ.get("TRACE_OVERHEAD_SCALE_FACTOR", "8"))
ITERATIONS = int(os.environ.get("TRACE_OVERHEAD_ITERATIONS", "5"))

#: Acceptance bars (ratios over the untraced run).
ON_BAR = 1.10
OFF_BAR = 1.02

#: Spins for the noop-span microbenchmark.
NOOP_SPINS = 200_000


def _noop_span_cost() -> float:
    """Per-call cost of a guarded no-op span site on this machine."""
    start = clock()
    for _ in range(NOOP_SPINS):
        with NOOP_TRACER.span("bench", category="engine", op="x"):
            pass
    return (clock() - start) / NOOP_SPINS


def _pass(workload, plan, tracer):
    engine = Engine(
        workload.params, workload.true_costs,
        tracer=NOOP_TRACER if tracer is None else tracer,
    )
    start = clock()
    result = engine.execute(plan, workload.data)
    return result, clock() - start


def test_trace_overhead(results_dir):
    workload = build_clickstream(scale_factor=SCALE_FACTOR)
    optimized = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    plan = optimized.best.physical

    reference, _ = _pass(workload, plan, None)  # warm-up, not timed
    untraced_walls: list[float] = []
    traced_walls: list[float] = []
    span_sites = 0
    for iteration in range(ITERATIONS):
        # Alternate which side runs first so allocator/GC state after the
        # first pass of an iteration penalizes both sides equally.
        sides = ["untraced", "traced"]
        if iteration % 2:
            sides.reverse()
        for side in sides:
            tracer = None if side == "untraced" else Tracer()
            result, wall = _pass(workload, plan, tracer)
            # The tracer is a pure observer: bit-identical results.
            assert result.records == reference.records
            assert result.report.per_op == reference.report.per_op
            assert result.seconds == reference.seconds
            if tracer is None:
                untraced_walls.append(wall)
            else:
                traced_walls.append(wall)
                span_sites = len(tracer.spans)

    untraced = min(untraced_walls)
    traced = min(traced_walls)
    on_overhead = traced / untraced
    # Paired per-iteration ratios cancel slow machine drift; noise can
    # only inflate a ratio, so the cleanest pair bounds the true
    # overhead from above with the least noise.
    paired = [t / u for t, u in zip(traced_walls, untraced_walls)]
    best_paired = min(paired)
    noop_cost = _noop_span_cost()
    off_overhead = 1.0 + span_sites * noop_cost / untraced

    report = {
        "workload": workload.name,
        "scale_factor": SCALE_FACTOR,
        "iterations": ITERATIONS,
        "rows_scanned": reference.report.rows_scanned,
        "span_sites": span_sites,
        "untraced_wall_seconds": untraced,
        "traced_wall_seconds": traced,
        "untraced_wall_samples": untraced_walls,
        "traced_wall_samples": traced_walls,
        "noop_span_cost_seconds": noop_cost,
        # The trend-gated headline: live-tracer wall over untraced wall,
        # min-of-N on both sides so the committed baseline is a
        # machine-relative ratio, not an absolute time.
        "tracing_on_overhead": on_overhead,
        "tracing_on_overhead_paired": paired,
        "tracing_on_overhead_best_pair": best_paired,
        "tracing_off_overhead": off_overhead,
        "note": (
            "tracing_on_overhead = min traced wall / min untraced wall "
            f"(bar <= {ON_BAR}); tracing_off_overhead = 1 + span_sites x "
            f"microbenched noop-span cost / untraced wall (bar <= {OFF_BAR})"
        ),
    }
    write_result(
        results_dir,
        "trace_overhead.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    assert span_sites > 0  # the traced runs actually traced
    assert off_overhead <= OFF_BAR, (
        f"default no-op tracer costs {(off_overhead - 1) * 100:.2f}% "
        f"({span_sites} sites x {noop_cost * 1e9:.0f}ns)"
    )
    # The hard bar binds on the cleanest interleaved pair (noise only
    # ever inflates a ratio); the trend gate holds the min-of-N headline
    # to the committed baseline on top.
    assert best_paired <= ON_BAR, (
        f"live tracing costs {(best_paired - 1) * 100:.1f}% wall even in "
        f"the cleanest of {ITERATIONS} interleaved pairs"
    )
