#!/usr/bin/env python3
"""CI bench-trend gate: fail on >30% regression of a headline metric.

Each benchmark writes a JSON report to ``benchmarks/results/``; a
committed snapshot of each report lives in ``benchmarks/baselines/``.
This script compares the headline metric of a fresh result against its
baseline and exits non-zero when the result regressed by more than
``TOLERANCE`` (direction-aware: throughput-style metrics must not drop,
cost-style metrics must not grow).

Headline metrics are deliberately machine-relative ratios or fully
deterministic modeled quantities, so the gate tracks the *code's* trend
rather than the CI host's mood.

Usage::

    python benchmarks/compare_trend.py                       # gate all known results
    python benchmarks/compare_trend.py results/midquery.json # gate one
    python benchmarks/compare_trend.py --write-baselines     # refresh snapshots
    python benchmarks/compare_trend.py --write-baselines results/soak.json  # one

Run from anywhere; paths resolve relative to this file.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: Allowed relative regression before the gate fails.
TOLERANCE = 0.30


@dataclass(frozen=True)
class Headline:
    """Where a benchmark's headline metric lives and which way is up."""

    path: tuple  # key path into the JSON report (ints index lists)
    higher_is_better: bool
    note: str


HEADLINES: dict[str, Headline] = {
    # Memoized costing speedup on the biggest plan space: machine-relative.
    "optimizer_throughput.json": Headline(
        ("tpch_q7", "speedup"), True, "memoized vs unmemoized costing, Q7"
    ),
    # Peak-allocation ratio streaming vs materializing: tracemalloc-based,
    # effectively deterministic.
    "engine_throughput.json": Headline(
        ("peak_memory_ratio",), True, "materializing/streaming peak bytes"
    ),
    # Parallel-backend soak: speedup over serial normalized by the ideal
    # speedup min(jobs, cores) — machine-relative, so one committed
    # baseline gates 1-core and 16-core runners alike.
    "soak.json": Headline(
        ("parallel_efficiency",),
        True,
        "soak speedup / min(engine_jobs, cores)",
    ),
    # Final-round median q-error on the headline workload: deterministic.
    "feedback_qerror.json": Headline(
        ("workloads", "clickstream", "rounds", -1, "qerror_median"),
        False,
        "median q-error after feedback (1.0 is perfect)",
    ),
    # Dirty-spine vs full-rebuild speedup: machine-relative.
    "reoptimize.json": Headline(
        ("reoptimize_q7", "gamma_revenue", "speedup"),
        True,
        "single-hint re-optimization speedup",
    ),
    # Modeled end-to-end recovery of the mis-hinted run: deterministic.
    "midquery.json": Headline(
        ("modeled_speedup",), True, "mis-hinted run recovery via mid-query"
    ),
    # Multi-process sqlite ingest throughput vs a curated portable floor
    # (see baseline_note); the bench itself hard-asserts zero lost updates.
    "store_concurrency.json": Headline(
        ("sqlite_ingests_per_sec",),
        True,
        "contended 4-writer sqlite ingests/sec vs curated floor",
    ),
    # Guided-vs-eager median cold planning latency on the 6864-alt
    # stress space: machine-relative ratio (the bench also hard-asserts
    # the >= 5x estimate-call and latency floors on every run).
    "plan_latency.json": Headline(
        ("median_speedup",),
        True,
        "eager/guided median planning latency, stress space",
    ),
    # Live-tracer wall over untraced wall (1.0 = tracing is free):
    # machine-relative ratio, lower is better.
    "trace_overhead.json": Headline(
        ("tracing_on_overhead",),
        False,
        "live-tracer wall / untraced wall (1.0 = free)",
    ),
    # Planning-server warm-vs-cold p50 latency ratio over a multi-tenant
    # replay vs a curated portable floor (the bench also hard-asserts
    # the >= 5x speedup floor and zero cross-tenant cache hits).
    "serve.json": Headline(
        ("warm_speedup_p50",),
        True,
        "planning server cold/warm p50 latency vs curated floor",
    ),
}


def extract(report: dict, path: tuple) -> float:
    value = report
    for key in path:
        value = value[key]
    if not isinstance(value, (int, float)):
        raise TypeError(f"headline at {path} is not numeric: {value!r}")
    return float(value)


def gate(result_path: Path) -> str | None:
    """Check one result against its baseline; return an error or None."""
    name = result_path.name
    headline = HEADLINES.get(name)
    if headline is None:
        return f"{name}: no headline metric registered in compare_trend.py"
    baseline_path = BASELINES_DIR / name
    if not baseline_path.exists():
        return (
            f"{name}: no committed baseline at {baseline_path} — run "
            "`python benchmarks/compare_trend.py --write-baselines` and "
            "commit the snapshot"
        )
    if not result_path.exists():
        return f"{name}: result {result_path} missing — did the bench run?"
    try:
        current = extract(json.loads(result_path.read_text()), headline.path)
    except (KeyError, IndexError, TypeError) as exc:
        return (
            f"{name}: headline key path {headline.path!r} not found in "
            f"{result_path} ({exc.__class__.__name__}: {exc}) — the bench's "
            "report schema and compare_trend.py disagree"
        )
    try:
        baseline = extract(json.loads(baseline_path.read_text()), headline.path)
    except (KeyError, IndexError, TypeError) as exc:
        return (
            f"{name}: headline key path {headline.path!r} not found in the "
            f"committed baseline {baseline_path} "
            f"({exc.__class__.__name__}: {exc}) — refresh it with "
            "`python benchmarks/compare_trend.py --write-baselines`"
        )
    if baseline <= 0:
        return f"{name}: non-positive baseline {baseline} is not gateable"
    if headline.higher_is_better:
        regressed = current < (1.0 - TOLERANCE) * baseline
        trend = current / baseline
    else:
        regressed = current > (1.0 + TOLERANCE) * baseline
        trend = baseline / current if current else float("inf")
    status = "REGRESSED" if regressed else "ok"
    print(
        f"{name}: {headline.note}: baseline={baseline:.4g} "
        f"current={current:.4g} (trend x{trend:.3f}) {status}"
    )
    if regressed:
        return (
            f"{name}: headline metric regressed more than "
            f"{TOLERANCE:.0%} vs the committed baseline "
            f"({baseline:.4g} -> {current:.4g}); if intentional, refresh "
            "benchmarks/baselines/ in this change and justify it"
        )
    return None


def write_baselines(paths: list[Path]) -> int:
    BASELINES_DIR.mkdir(exist_ok=True)
    for result in paths:
        if not result.exists():
            print(f"skip {result.name}: no fresh result to snapshot")
            continue
        (BASELINES_DIR / result.name).write_text(result.read_text())
        print(f"baseline {result.name} <- {result}")
    return 0


def resolve(path: Path) -> Path:
    """Make explicit result paths work from any cwd: fall back to
    resolving against this file's directory (``results/soak.json`` names
    ``benchmarks/results/soak.json`` from the repo root too)."""
    if path.exists() or path.is_absolute():
        return path
    candidate = BENCH_DIR / path
    return candidate if candidate.exists() else path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        nargs="*",
        type=Path,
        help="result JSON files to gate (default: every registered bench "
        "whose result file exists)",
    )
    parser.add_argument(
        "--write-baselines",
        action="store_true",
        help="snapshot fresh results into benchmarks/baselines/",
    )
    args = parser.parse_args(argv)
    # Default set: every registered bench with a fresh result OR a
    # committed baseline.  Including baseline-only names is what makes a
    # bench that silently failed to produce its result a gate failure
    # ("did the bench run?") instead of a silent skip.
    paths = [resolve(path) for path in args.results] or [
        RESULTS_DIR / name
        for name in sorted(HEADLINES)
        if (RESULTS_DIR / name).exists() or (BASELINES_DIR / name).exists()
    ]
    if args.write_baselines:
        return write_baselines(paths)
    if not paths:
        print(
            "FAIL no result files found under benchmarks/results/ — run the "
            "benchmarks first (explicit paths gate missing files as errors)",
            file=sys.stderr,
        )
        return 1
    errors = [error for path in paths if (error := gate(path)) is not None]
    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
