"""Ablation: contribution of each swap family to plan space and plan
quality on TPC-H Q7.

DESIGN.md calls out three swap families (S1 unary/unary, S2 unary/binary,
S3 binary rotations).  This ablation disables each family and measures how
the enumerated space and the best reachable estimated cost degrade —
quantifying how much of the optimization potential each theorem family
contributes (rotations unlock the bushy join orders; the unary/binary
exchanges unlock selection push-down).
"""

from unittest import mock

from conftest import write_result

from repro.bench import render_table
from repro.core import AnnotationMode, body
from repro.optimizer import (
    CardinalityEstimator,
    PlanContext,
    enumerate_flows,
    optimize_physical,
)
from repro.optimizer import rules as rules_module


def best_cost(flows, ctx, workload):
    estimator = CardinalityEstimator(ctx, workload.hints)
    return min(
        optimize_physical(f, ctx, estimator, workload.params).cost_total
        for f in flows
    )


def run_ablation(workload):
    flow = body(workload.plan)

    blocked = lambda *args, **kwargs: False  # noqa: E731
    variants = [
        ("full rule set", {}),
        ("no unary/unary swaps (Thm 1/2)", {"can_swap_unary_unary": blocked}),
        ("no unary/binary exchanges (Thm 3/4)", {"can_exchange_unary_binary": blocked}),
        ("no binary rotations (Lemma 1)", {"can_rotate": blocked}),
    ]
    rows = []
    for label, patches in variants:
        with mock.patch.multiple(rules_module, **patches) if patches else mock.patch.object(
            rules_module, "__doc__", rules_module.__doc__
        ):
            flows = enumerate_flows(flow, PlanContext(workload.catalog, AnnotationMode.SCA))
            cost = best_cost(flows, PlanContext(workload.catalog, AnnotationMode.SCA), workload)
        rows.append((label, len(flows), f"{cost:.1f} s"))
    return rows


def test_ablation_swap_families(benchmark, q7_workload, results_dir):
    rows = benchmark.pedantic(run_ablation, args=(q7_workload,), rounds=1, iterations=1)
    table = render_table(rows, ("rule set", "plans", "best est. cost"))
    write_result(
        results_dir,
        "ablation_rules.txt",
        "Ablation — swap-family contribution on TPC-H Q7\n" + table,
    )

    by_label = {r[0]: r for r in rows}
    full = by_label["full rule set"]
    assert full[1] == 442
    for label, plans, _ in rows[1:]:
        assert plans < full[1], f"{label} should shrink the plan space"
    # Rotations are what unlocks the bushy join space: removing them
    # collapses the space the most.
    no_rot = by_label["no binary rotations (Lemma 1)"]
    assert no_rot[1] == min(r[1] for r in rows[1:])
    # The full rule set reaches the cheapest plan.
    full_cost = float(full[2].split()[0])
    for label, _, cost_label in rows[1:]:
        assert float(cost_label.split()[0]) >= full_cost * 0.999, label
