"""Engine throughput and memory: streaming pipelined vs. materializing.

The streaming engine fuses forward-shipped Map chains into per-partition
batched pipelines, so a Map-chain-heavy flow allocates O(batch)
intermediate records instead of full per-operator partition lists.  This
benchmark executes the text-mining flow — seven fused Map annotators,
the engine's hottest chain shape — at 3x datagen scale (the new
``scale_factor`` knob) in both engine modes, asserts records and
simulated seconds are bit-identical, and emits rows/sec plus peak traced
allocation as JSON.

The streaming engine must show >= 2x smaller peak transient allocation:
at a fixed memory budget that is >= 2x larger runnable datagen scale,
which is the acceptance bar for the pipelined execution path.
"""

import gc
import json
import time
import tracemalloc

from conftest import write_result

from repro.core import AnnotationMode
from repro.datagen import CorpusScale
from repro.engine import Engine
from repro.optimizer import Optimizer
from repro.workloads import build_textmining

SCALE_FACTOR = 3.0


def _measure(engine, plan, data):
    """Execute once; wall seconds and peak bytes allocated during the run."""
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = engine.execute(plan, data)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak_bytes


def test_engine_throughput(results_dir):
    workload = build_textmining(scale_factor=SCALE_FACTOR)
    optimized = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    plan = optimized.best.physical

    report = {"workload": workload.name, "scale_factor": SCALE_FACTOR}
    results = {}
    modes = (
        ("streaming", dict(streaming=True)),
        ("materializing", dict(streaming=False)),
        ("parallel", dict(streaming=True, engine_jobs=4)),
    )
    for mode, engine_kwargs in modes:
        engine = Engine(workload.params, workload.true_costs, **engine_kwargs)
        engine.execute(plan, workload.data)  # warm one-time caches
        result, seconds, peak_bytes = _measure(engine, plan, workload.data)
        rows = result.report.rows_scanned
        results[mode] = result
        report[mode] = {
            "rows_in": rows,
            "rows_out": len(result.records),
            "wall_seconds": seconds,
            "rows_per_sec": rows / seconds if seconds else float("inf"),
            "peak_tracemalloc_bytes": peak_bytes,
        }

    # The streaming path is a pure scheduling change: bit-identical output.
    assert results["streaming"].records == results["materializing"].records
    assert results["streaming"].seconds == results["materializing"].seconds
    # So is the partition-parallel worker pool.
    assert results["parallel"].records == results["streaming"].records
    assert results["parallel"].seconds == results["streaming"].seconds

    stream, mat = report["streaming"], report["materializing"]
    report["throughput_ratio"] = stream["rows_per_sec"] / mat["rows_per_sec"]
    # Trajectory only (bench_soak gates it at soak scale on multicore
    # hosts): serial vs engine_jobs=4 wall-clock on this chain.  At this
    # smoke scale on few-core runners the pool's fork overhead can win,
    # so no assert here.
    report["parallel_speedup"] = (
        report["parallel"]["rows_per_sec"] / stream["rows_per_sec"]
    )
    report["parallel_engine_jobs"] = 4
    # Peak transient allocation bounds the datagen scale runnable at a
    # fixed memory budget; its inverse ratio is the scale-capacity gain.
    report["peak_memory_ratio"] = (
        mat["peak_tracemalloc_bytes"] / stream["peak_tracemalloc_bytes"]
    )
    report["scale_capacity_ratio"] = report["peak_memory_ratio"]
    write_result(
        results_dir,
        "engine_throughput.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    assert stream["rows_in"] == int(CorpusScale().documents * SCALE_FACTOR)
    assert stream["rows_per_sec"] > 0
    # Acceptance bar: >= 2x larger runnable scale at fixed memory.  Peak
    # allocation is measured deterministically via tracemalloc; wall-clock
    # throughput_ratio is reported as trajectory only (no perf gate —
    # shared CI runners are too noisy for a single-run timing assert).
    assert report["peak_memory_ratio"] >= 2.0
