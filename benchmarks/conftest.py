"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 7,
writes the rendered result to ``benchmarks/results/``, and asserts the
qualitative claims (who wins, by roughly what factor).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads import build_clickstream, build_q7, build_q15, build_textmining

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print()
    print(text)


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a small sample list."""
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@pytest.fixture(scope="session")
def q7_workload():
    return build_q7()


@pytest.fixture(scope="session")
def q15_workload():
    return build_q15()


@pytest.fixture(scope="session")
def clickstream_workload():
    return build_clickstream()


@pytest.fixture(scope="session")
def textmining_workload():
    return build_textmining()
