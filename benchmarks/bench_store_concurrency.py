"""Concurrent-writer bench for the statistics-store backends.

``STORE_BENCH_WRITERS`` forked processes share one statistics store and
ingest ``STORE_BENCH_INGESTS`` executions each, every execution touching
one writer-private operator plus one fully contended shared operator.
Per-ingest wall latencies stream to per-writer files; the parent folds
them into ingests/sec plus p50/p95/p99 and — the whole point — proves
**zero lost updates** under real multi-process contention:

* the final store version equals the total ingest count (every commit
  folded exactly one execution),
* every writer-private operator aggregated exactly its writer's runs,
* the contended operator aggregated every writer's runs.

Both backends run the same protocol (sqlite-WAL is the headline; JSON
with its advisory flock is the comparison), and a single-writer pass
additionally pins cross-backend parity of the resulting estimator view.

Environment knobs (defaults are the CI configuration)::

    STORE_BENCH_WRITERS=4   # forked writer processes
    STORE_BENCH_INGESTS=50  # ingests per writer
"""

import json
import math
import os
import time

from conftest import write_result

from repro.feedback import StatisticsStore
from repro.feedback.observation import ExecutionObservation, OpObservation

WRITERS = int(os.environ.get("STORE_BENCH_WRITERS", "4"))
INGESTS = int(os.environ.get("STORE_BENCH_INGESTS", "50"))

SUFFIX = {"sqlite": ".sqlite", "json": ".json"}


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (the soak methodology's convention)."""
    ordered = sorted(samples)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def _observation(writer: int, i: int) -> ExecutionObservation:
    """Deterministic per-(writer, ingest) observation: one private op,
    one fully contended op, one plan runtime."""
    return ExecutionObservation(
        plan_key=f"plan-{writer}",
        seconds=1.0 + 0.01 * i,
        ops=(
            OpObservation(
                key=f"private-{writer}",
                op_name=f"private-{writer}",
                kind="map",
                rows_in=1000,
                rows_out=100 + i,
                udf_calls=1000,
                cpu_per_call=1.5,
                disk_bytes=0.0,
            ),
            OpObservation(
                key="shared",
                op_name="shared",
                kind="map",
                rows_in=1000,
                rows_out=500 + writer,
                udf_calls=1000,
                cpu_per_call=2.0,
                disk_bytes=0.0,
            ),
        ),
        wall_seconds=0.001,
    )


def _writer_process(path, writer: int, latency_path) -> None:
    store = StatisticsStore.open(path)
    latencies = []
    for i in range(INGESTS):
        start = time.perf_counter()
        store.ingest(_observation(writer, i))
        latencies.append(time.perf_counter() - start)
    latency_path.write_text(json.dumps(latencies))


def _run_backend(backend: str, tmp_path) -> dict:
    path = tmp_path / f"contended{SUFFIX[backend]}"
    StatisticsStore.open(path)  # pre-create: writers race ingests, not birth
    start = time.perf_counter()
    children = []
    for writer in range(WRITERS):
        latency_path = tmp_path / f"latency-{backend}-{writer}.json"
        pid = os.fork()
        if pid == 0:  # pragma: no cover - exercised in the fork
            code = 1
            try:
                _writer_process(path, writer, latency_path)
                code = 0
            finally:
                os._exit(code)
        children.append(pid)
    for pid in children:
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 0, f"writer {pid} failed"
    wall = time.perf_counter() - start

    latencies = []
    for writer in range(WRITERS):
        latencies.extend(
            json.loads(
                (tmp_path / f"latency-{backend}-{writer}.json").read_text()
            )
        )
    total = WRITERS * INGESTS

    # Zero lost updates: every ingest from every process landed exactly
    # once, EMA folds and run counters included.
    final = StatisticsStore.open(path)
    assert final.version == total, (
        f"{backend}: lost updates — version {final.version} != {total}"
    )
    assert final.nodes["shared"].runs == total
    for writer in range(WRITERS):
        assert final.nodes[f"private-{writer}"].runs == INGESTS
        assert final.plans[f"plan-{writer}"].runs == INGESTS
    assert final.generation == total + 1  # +1 creation commit

    return {
        "writers": WRITERS,
        "ingests_per_writer": INGESTS,
        "total_ingests": total,
        "wall_seconds": wall,
        "ingests_per_sec": total / wall,
        "ingest_latency": {
            "samples": len(latencies),
            "p50_seconds": _percentile(latencies, 50),
            "p95_seconds": _percentile(latencies, 95),
            "p99_seconds": _percentile(latencies, 99),
        },
        "lost_updates": 0,
    }


def _single_writer_parity(tmp_path) -> bool:
    """The same ingest sequence lands bit-identically on every backend."""
    stores = {
        "memory": StatisticsStore(),
        "sqlite": StatisticsStore.open(tmp_path / "parity.sqlite"),
        "json": StatisticsStore.open(tmp_path / "parity.json"),
    }
    for store in stores.values():
        for writer in range(2):
            for i in range(10):
                store.ingest(_observation(writer, i))
    views = {name: store.estimator_view() for name, store in stores.items()}
    assert views["sqlite"] == views["memory"]
    assert views["json"] == views["memory"]
    reloaded = {
        "sqlite": StatisticsStore.open(tmp_path / "parity.sqlite"),
        "json": StatisticsStore.open(tmp_path / "parity.json"),
    }
    for name, store in reloaded.items():
        assert store.estimator_view() == views["memory"], name
        assert store.to_dict() == stores[name].to_dict()
    return True


def test_store_concurrency(results_dir, tmp_path):
    backends = {
        backend: _run_backend(backend, tmp_path)
        for backend in ("sqlite", "json")
    }
    report = {
        "writers": WRITERS,
        "ingests_per_writer": INGESTS,
        "cpu_count": os.cpu_count() or 1,
        "sqlite": backends["sqlite"],
        "json": backends["json"],
        # The trend-gated headline: sustained multi-process ingest
        # throughput of the sqlite-WAL backend under full contention.
        "sqlite_ingests_per_sec": backends["sqlite"]["ingests_per_sec"],
        "single_writer_parity": _single_writer_parity(tmp_path),
        "note": (
            f"{WRITERS} forked writers x {INGESTS} ingests each into one "
            "shared store; optimistic generation-checked commits; zero "
            "lost updates asserted on version, per-writer and contended "
            "aggregates"
        ),
    }
    write_result(
        results_dir,
        "store_concurrency.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    assert report["single_writer_parity"]
    for backend in ("sqlite", "json"):
        assert backends[backend]["lost_updates"] == 0
        assert backends[backend]["ingests_per_sec"] > 0
        latency = backends[backend]["ingest_latency"]
        assert latency["p99_seconds"] >= latency["p50_seconds"]
