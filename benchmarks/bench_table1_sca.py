"""Table 1: number of enumerated reordered alternatives with manually
annotated properties vs. properties derived by static code analysis.

Paper:                     ours:
  Clickstream  4 -> 3 (75%)  Clickstream  9 -> 5 (56%)
  TPC-H Q7  2518 -> 2518     TPC-H Q7   442 -> 442 (100%)
  TPC-H Q15    4 -> 4        TPC-H Q15    3 -> 3   (100%)
  Text mining 24 -> 24       Text mining 24 -> 24  (100%)

The qualitative result is identical: SCA recovers every reordering except
on the clickstream task, whose "filter buy sessions" UDF defeats the
analyzer (its record group escapes into a helper call), forcing the safe
conservative fallback and losing exactly the reorderings across that
operator.
"""

from conftest import write_result

from repro.bench import render_table
from repro.core import AnnotationMode, body
from repro.optimizer import PlanContext, enumerate_flows

PAPER = {
    "clickstream": (4, 3),
    "tpch_q7": (2518, 2518),
    "tpch_q15": (4, 4),
    "textmining": (24, 24),
}

EXPECTED_OURS = {
    "clickstream": (9, 5),
    "tpch_q7": (442, 442),
    "tpch_q15": (3, 3),
    "textmining": (24, 24),
}


def count_orders(workload, mode):
    ctx = PlanContext(workload.catalog, mode)
    return len(enumerate_flows(body(workload.plan), ctx))


def run_table1(workloads):
    rows = []
    for w in workloads:
        manual = count_orders(w, AnnotationMode.MANUAL)
        sca = count_orders(w, AnnotationMode.SCA)
        pm, ps = PAPER[w.name]
        rows.append(
            (
                w.name,
                manual,
                f"{sca} ({100 * sca // manual}%)",
                pm,
                f"{ps} ({100 * ps // pm}%)",
            )
        )
    return rows


def test_table1_sca_vs_manual(
    benchmark,
    clickstream_workload,
    q7_workload,
    q15_workload,
    textmining_workload,
    results_dir,
):
    workloads = [
        clickstream_workload,
        q7_workload,
        q15_workload,
        textmining_workload,
    ]
    rows = benchmark.pedantic(run_table1, args=(workloads,), rounds=1, iterations=1)
    table = render_table(
        rows,
        ("PACT task", "orders (manual)", "orders (SCA)", "paper manual", "paper SCA"),
    )
    write_result(
        results_dir,
        "table1_sca.txt",
        "Table 1 — manually annotated vs SCA-derived read/write sets\n" + table,
    )

    by_name = {r[0]: r for r in rows}
    for name, (manual, sca) in EXPECTED_OURS.items():
        assert by_name[name][1] == manual, name
        assert by_name[name][2].startswith(str(sca)), name
    # Qualitative Table 1 claim: SCA reaches 100% everywhere except the
    # clickstream task with its unanalyzable UDF.
    assert by_name["clickstream"][1] > int(by_name["clickstream"][2].split()[0])
    for name in ("tpch_q7", "tpch_q15", "textmining"):
        assert by_name[name][1] == int(by_name[name][2].split()[0])
