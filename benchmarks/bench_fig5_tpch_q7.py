"""Figure 5: normalized cost estimates and runtimes for 10 rank-picked
execution plans of TPC-H query 7.

Paper: 2518 enumerated plans; the rank-1 plan is also fastest (6:23 min);
the last-ranked plan is ~7x slower (45:06 min); cost estimates broadly
track runtimes.  Our enumerator derives 442 orders (orientation-preserving
rotations; see EXPERIMENTS.md) with the same cost/runtime shape.
"""

from conftest import write_result

from repro.bench import run_experiment, render_figure

PAPER_NOTE = (
    "paper: 2518 plans; best 6:23 min, worst 45:06 min (7.1x); "
    "cost estimates track runtimes"
)


def run_fig5(workload):
    return run_experiment(workload, picks=10)


def test_fig5_tpch_q7(benchmark, q7_workload, results_dir):
    outcome = benchmark.pedantic(run_fig5, args=(q7_workload,), rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig5_tpch_q7.txt",
        render_figure(outcome, "Figure 5 — TPC-H Q7 plan quality", PAPER_NOTE),
    )

    # Shape assertions against the paper's findings.
    assert outcome.plan_count == 442
    runtimes = [p.runtime_seconds for p in outcome.executed]
    # The cheapest-estimated plan is (near-)fastest...
    assert runtimes[0] <= min(runtimes) * 1.25
    # ...and the worst plan is severalfold slower (paper: 7.1x).
    assert 4.0 <= outcome.runtime_spread <= 10.0
    # Runtimes grow broadly with cost rank (endpoints strictly ordered).
    assert runtimes[-1] > runtimes[0] * 3
    # Absolute simulated scale lands in the paper's minutes range.
    assert 250 < runtimes[0] < 550          # paper: 383 s
    assert 1800 < runtimes[-1] < 3600       # paper: 2706 s
