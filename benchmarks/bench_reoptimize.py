"""Re-optimization cost: dirty-spine re-costing + parallel plan costing.

Two claims of the incremental Memo subsystem, measured and parity-pinned:

1. **Dirty-spine re-costing.**  After a single-hint change on the Q7
   plan space (442 alternatives, ~1.4k distinct sub-plans), invalidating
   only the spine above the changed operator and re-optimizing over the
   surviving memo is several times faster than a full rebuild — while
   producing bit-identical estimates, costs, and rankings.  This is the
   per-round cost of the adaptive feedback loop.

2. **Parallel costing.**  ``Optimizer(jobs=N)`` shards costing across
   forked workers with per-worker memos merged back into the shared one.
   On a join-heavy stress plan space (7 chained joins x 2 pushable
   filters -> 6864 alternatives, ~15k entries) multi-core costing beats
   sequential wall-clock, again bit-identically.

Results are written to ``benchmarks/results/reoptimize.json``.
"""

import json
import os
import statistics
import time

from conftest import write_result

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    FieldMap,
    FieldSet,
    MapOp,
    MatchOp,
    Sink,
    Source,
    SourceStats,
    UdfProperties,
    binary_udf,
    map_udf,
    node,
    prefixed,
)
from repro.core.plan import Node, signature
from repro.optimizer import Hints, Optimizer
from repro.optimizer import parallel

REPS = 5


def assert_plans_identical(got, want):
    assert got.plan_count == want.plan_count
    for g, w in zip(got.ranked, want.ranked):
        assert g.rank == w.rank
        assert signature(g.body) == signature(w.body)
        assert g.cost == w.cost  # exact float equality
        assert g.physical.describe() == w.physical.describe()


# -- stress plan space for the scaling measurement ----------------------------


def _concat_udf(left, right, out):
    out.emit(left.concat(right))


def _passthrough(rec, out):
    out.emit(rec.copy())


def build_stress(joins=7, filters=2):
    """A chained-join starflake: joins cannot commute with each other
    (each keys on the previous dimension's output attribute), while the
    fact-side filters commute freely and push through the whole chain —
    a deep plan space whose per-entry costing is dominated by the
    binary branch-and-bound, i.e. compute-bound costing."""
    fact_attrs = prefixed("f", "k0", *[f"x{i}" for i in range(filters)])
    flow = node(Source("fact", fact_attrs))
    cur = fact_attrs
    catalog = Catalog()
    catalog.add_source("fact", SourceStats(row_count=2_000_000))
    hints = {}
    for j in range(filters):
        props = UdfProperties(
            reads=FieldSet.of((0, 1 + j)),
            branch_reads=FieldSet.of((0, 1 + j)),
            emit_bounds=EmitBounds.at_most_one(),
        )
        flow = node(
            MapOp(f"sigma_{j}", map_udf(_passthrough, props), FieldMap(cur)),
            flow,
        )
        hints[f"sigma_{j}"] = Hints(
            selectivity=0.1 + 0.2 * j, cpu_per_call=1.0 + 0.5 * j
        )
    key_pos = 0
    for i in range(joins):
        dim_attrs = prefixed(f"d{i}", "k", "next")
        catalog.add_source(f"dim{i}", SourceStats(row_count=10_000 * (i + 1)))
        props = UdfProperties(
            reads=FieldSet.of((0, key_pos), (1, 0)),
            emit_bounds=EmitBounds.at_most_one(),
        )
        join = MatchOp(
            f"join_{i}",
            binary_udf(_concat_udf, props),
            FieldMap(cur),
            FieldMap(dim_attrs),
            (key_pos,),
            (0,),
        )
        flow = node(join, flow, node(Source(f"dim{i}", dim_attrs)))
        cur = cur + dim_attrs
        key_pos = len(cur) - 1
        hints[f"join_{i}"] = Hints(
            cpu_per_call=1.0, distinct_keys=10_000 * (i + 1)
        )
    return Node(Sink("sink_stress"), (flow,)), catalog, hints


# -- measurements -------------------------------------------------------------


def measure_reoptimize(workload):
    """Single-hint re-optimization: dirty spine vs full rebuild (Q7)."""
    changes = {
        "gamma_revenue": Hints(distinct_keys=64, cpu_per_call=2.0),
        "sigma_nation_pair": Hints(selectivity=0.02, cpu_per_call=1.5),
    }
    report = {}
    for name, hint in changes.items():
        new_hints = {**workload.hints, name: hint}
        rebuilds, respines = [], []
        evicted = entries = 0
        for _ in range(REPS):
            optimizer = Optimizer(
                workload.catalog, workload.hints, AnnotationMode.SCA,
                workload.params,
            )
            memo = optimizer.new_memo()
            optimizer.optimize(workload.plan, memo=memo)
            entries = len(memo)
            optimizer.hints = new_hints
            # full rebuild: what a memo-less optimizer does per change
            t0 = time.perf_counter()
            full = Optimizer(
                workload.catalog, new_hints, AnnotationMode.SCA, workload.params
            ).optimize(workload.plan)
            rebuilds.append(time.perf_counter() - t0)
            # dirty spine: invalidate + re-cost over the surviving memo
            t0 = time.perf_counter()
            evicted = memo.invalidate({name})
            incremental = optimizer.optimize(workload.plan, memo=memo)
            respines.append(time.perf_counter() - t0)
            assert_plans_identical(incremental, full)
        rebuild = statistics.median(rebuilds)
        respine = statistics.median(respines)
        report[name] = {
            "memo_entries": entries,
            "entries_evicted": evicted,
            "full_rebuild_seconds": rebuild,
            "dirty_spine_seconds": respine,
            "speedup": rebuild / respine if respine else float("inf"),
        }
    return report


def measure_scaling(jobs=4):
    """Parallel costing wall-clock on the join-heavy stress space.

    Best-of-2 on both sides: the first parallel run pays one-time pool
    cold-start (worker imports, page faults) that a noisy CI host should
    not charge against steady-state scaling.
    """
    plan, catalog, hints = build_stress()
    sequential = None
    seq_costing = float("inf")
    for _ in range(2):
        candidate = Optimizer(catalog, hints, AnnotationMode.MANUAL).optimize(plan)
        seq_costing = min(seq_costing, candidate.physical_seconds)
        sequential = candidate
    result = {
        "alternatives": sequential.plan_count,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "fork_available": parallel.available(),
        "sequential_costing_seconds": seq_costing,
    }
    if not parallel.available():
        return result, None, None
    par_costing = float("inf")
    for _ in range(2):
        parallel_result = Optimizer(
            catalog, hints, AnnotationMode.MANUAL, jobs=jobs
        ).optimize(plan)
        par_costing = min(par_costing, parallel_result.physical_seconds)
        assert_plans_identical(parallel_result, sequential)
    result["parallel_costing_seconds"] = par_costing
    result["costing_scaling"] = seq_costing / par_costing
    return result, sequential, parallel_result


def run_bench(q7_workload):
    report = {
        "reoptimize_q7": measure_reoptimize(q7_workload),
        "parallel_stress": measure_scaling()[0],
    }
    return report


def test_reoptimize_and_parallel_costing(benchmark, q7_workload, results_dir):
    report = benchmark.pedantic(
        run_bench, args=(q7_workload,), rounds=1, iterations=1
    )
    write_result(
        results_dir,
        "reoptimize.json",
        json.dumps(report, indent=2, sort_keys=True),
    )

    spine = report["reoptimize_q7"]["gamma_revenue"]
    # The dirty spine above the changed reduce covers under half of the
    # memo; re-costing it must be several times cheaper than a rebuild
    # (measured ~6x on the dev box; gate conservatively for CI noise).
    assert spine["entries_evicted"] < spine["memo_entries"]
    assert spine["speedup"] > 3.0
    for stats in report["reoptimize_q7"].values():
        assert stats["dirty_spine_seconds"] < stats["full_rebuild_seconds"]

    scaling = report["parallel_stress"]
    if (
        scaling["fork_available"]
        and scaling["cpu_count"] is not None
        and scaling["cpu_count"] >= 4
    ):
        # Multi-core costing must beat sequential wall-clock on the
        # compute-bound stress space (~1.7x projected on 4 cores).
        assert scaling["costing_scaling"] > 1.0
