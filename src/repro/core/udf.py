"""User-defined function wrappers.

A :class:`Udf` bundles the executable first-order function with its
black-box properties.  Properties come from one of two places, mirroring the
paper's prototype (Section 7.1):

* **manual annotations** supplied by the flow author, or
* the **static code analyzer** (SCA), which derives them from the UDF's
  bytecode (Python bytecode here; Java bytecode via Soot in the paper).

The executable may be a plain Python callable (the normal case) or a parsed
three-address-code function from :mod:`repro.sca.tac` (useful for tests and
for reproducing the paper's Section 3 example verbatim).
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from .errors import UdfError
from .properties import UdfProperties, conservative_properties


class ParamKind(enum.Enum):
    """Kind of each record-bearing UDF parameter (before the collector)."""

    RECORD = "record"
    RECORD_LIST = "record_list"


class AnnotationMode(enum.Enum):
    """Where operator properties come from (Table 1 compares these)."""

    MANUAL = "manual"
    SCA = "sca"


class Udf:
    """A first-order function plus (possibly derived) properties."""

    def __init__(
        self,
        fn: Callable | Any,
        param_kinds: tuple[ParamKind, ...],
        annotations: UdfProperties | None = None,
        name: str | None = None,
    ) -> None:
        if not param_kinds:
            raise UdfError("a UDF needs at least one record parameter")
        self.fn = fn
        self.param_kinds = param_kinds
        self.annotations = annotations
        self.name = name or getattr(fn, "__name__", "udf")
        self._sca_cache: UdfProperties | None = None

    @property
    def arity(self) -> int:
        return len(self.param_kinds)

    def properties(self, mode: AnnotationMode) -> UdfProperties:
        """Resolve properties under the given annotation mode.

        MANUAL mode requires author annotations; SCA mode always runs the
        analyzer (falling back to conservative properties when the code
        cannot be modeled), which is the comparison Table 1 makes.
        """
        if mode is AnnotationMode.MANUAL:
            if self.annotations is None:
                raise UdfError(
                    f"UDF {self.name!r} has no manual annotations; "
                    "use AnnotationMode.SCA or annotate it"
                )
            return self.annotations
        if self._sca_cache is None:
            self._sca_cache = self._analyze()
        return self._sca_cache

    def _analyze(self) -> UdfProperties:
        from ..sca.api import analyze_udf  # local import to avoid a cycle

        try:
            return analyze_udf(self.fn, self.param_kinds)
        except Exception as exc:  # safety net: never fail, degrade instead
            return conservative_properties(f"analysis failed: {exc}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Udf({self.name})"


def map_udf(fn: Callable, annotations: UdfProperties | None = None) -> Udf:
    """A UDF for Map operators: ``fn(record, collector)``."""
    return Udf(fn, (ParamKind.RECORD,), annotations)


def reduce_udf(fn: Callable, annotations: UdfProperties | None = None) -> Udf:
    """A UDF for Reduce operators: ``fn(records, collector)``."""
    return Udf(fn, (ParamKind.RECORD_LIST,), annotations)


def binary_udf(fn: Callable, annotations: UdfProperties | None = None) -> Udf:
    """A UDF for Cross/Match operators: ``fn(left, right, collector)``."""
    return Udf(fn, (ParamKind.RECORD, ParamKind.RECORD), annotations)


def cogroup_udf(fn: Callable, annotations: UdfProperties | None = None) -> Udf:
    """A UDF for CoGroup operators: ``fn(left_records, right_records, collector)``."""
    return Udf(fn, (ParamKind.RECORD_LIST, ParamKind.RECORD_LIST), annotations)
