"""Reference evaluator: direct bag-semantics execution of logical plans.

This is the semantic oracle of the library — it executes a plan tree on
in-memory data with no parallelism, no physical strategies, and no cost
accounting.  The execution engine and all reordering tests are validated
against it.

The UDF invocation helpers here are also reused by the parallel engine so
both execution paths share one record-API implementation.
"""

from __future__ import annotations

from typing import Any

from .errors import ExecutionError
from .operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    UdfOperator,
)
from .plan import Node
from .record import Collector, InputRecord, RawRecord
from .schema import Attribute

SourceData = dict[str, list[RawRecord]]


def call_udf(op: UdfOperator, *record_args: Any) -> list[RawRecord]:
    """Invoke an operator's UDF with wrapped record arguments."""
    collector = Collector()
    fn = op.udf.fn
    if callable(fn):
        fn(*record_args, collector)
    else:
        from ..sca.interp import execute_tac_udf  # TAC-authored UDFs

        execute_tac_udf(fn, record_args, collector)
    return collector.records()


def _wrap(op: UdfOperator, input_index: int, row: RawRecord) -> InputRecord:
    return InputRecord(row, op.input_maps[input_index], op.resolver)


def _wrap_all(op: UdfOperator, input_index: int, rows: list[RawRecord]) -> list[InputRecord]:
    fmap = op.input_maps[input_index]
    resolver = op.resolver
    return [InputRecord(r, fmap, resolver) for r in rows]


def key_of(row: RawRecord, key_attrs: tuple[Attribute, ...]) -> tuple:
    try:
        return tuple(map(row.__getitem__, key_attrs))
    except KeyError as exc:
        raise ExecutionError(
            f"key attribute {exc.args[0]} missing from record at runtime"
        ) from None


def group_by(rows: list[RawRecord], key_attrs: tuple[Attribute, ...]) -> dict[tuple, list[RawRecord]]:
    groups: dict[tuple, list[RawRecord]] = {}
    for row in rows:
        groups.setdefault(key_of(row, key_attrs), []).append(row)
    return groups


# ---------------------------------------------------------------------------
# Operator application (shared with the engine)
# ---------------------------------------------------------------------------


def apply_map(op: MapOp, rows: list[RawRecord]) -> list[RawRecord]:
    fn = op.udf.fn
    if not callable(fn):
        out: list[RawRecord] = []
        for row in rows:
            out.extend(call_udf(op, _wrap(op, 0, row)))
        return out
    # hot path: hoist the wrapper components and share one collector —
    # emissions only ever concatenate, so per-call collectors are pure
    # overhead (the record API seen by the UDF is unchanged)
    fmap = op.input_maps[0]
    resolver = op.resolver
    collector = Collector()
    for row in rows:
        fn(InputRecord(row, fmap, resolver), collector)
    return collector._out


def apply_reduce(op: ReduceOp, rows: list[RawRecord]) -> list[RawRecord]:
    out: list[RawRecord] = []
    for _, group in group_by(rows, op.key_attr_tuple()).items():
        out.extend(call_udf(op, _wrap_all(op, 0, group)))
    return out


def apply_cross(op: CrossOp, left: list[RawRecord], right: list[RawRecord]) -> list[RawRecord]:
    fn = op.udf.fn
    if not callable(fn):
        out: list[RawRecord] = []
        for l_row in left:
            l_rec = _wrap(op, 0, l_row)
            for r_row in right:
                out.extend(call_udf(op, l_rec, _wrap(op, 1, r_row)))
        return out
    l_map, r_map = op.input_maps
    resolver = op.resolver
    collector = Collector()
    for l_row in left:
        l_rec = InputRecord(l_row, l_map, resolver)
        for r_row in right:
            fn(l_rec, InputRecord(r_row, r_map, resolver), collector)
    return collector._out


def apply_match(op: MatchOp, left: list[RawRecord], right: list[RawRecord]) -> list[RawRecord]:
    right_index = group_by(right, op.right_key_attrs())
    left_keys = op.left_key_attrs()
    fn = op.udf.fn
    if not callable(fn):
        out: list[RawRecord] = []
        for l_row in left:
            matches = right_index.get(key_of(l_row, left_keys))
            if not matches:
                continue
            l_rec = _wrap(op, 0, l_row)
            for r_row in matches:
                out.extend(call_udf(op, l_rec, _wrap(op, 1, r_row)))
        return out
    # hot path: hoist the wrapper components and share one collector
    l_map, r_map = op.input_maps
    resolver = op.resolver
    collector = Collector()
    for l_row in left:
        matches = right_index.get(key_of(l_row, left_keys))
        if not matches:
            continue
        l_rec = InputRecord(l_row, l_map, resolver)
        for r_row in matches:
            fn(l_rec, InputRecord(r_row, r_map, resolver), collector)
    return collector._out


def apply_cogroup(op: CoGroupOp, left: list[RawRecord], right: list[RawRecord]) -> list[RawRecord]:
    left_groups = group_by(left, op.left_key_attrs())
    right_groups = group_by(right, op.right_key_attrs())
    out: list[RawRecord] = []
    all_keys = list(left_groups)
    all_keys.extend(k for k in right_groups if k not in left_groups)
    for key in all_keys:
        l_rows = left_groups.get(key, [])
        r_rows = right_groups.get(key, [])
        out.extend(
            call_udf(op, _wrap_all(op, 0, l_rows), _wrap_all(op, 1, r_rows))
        )
    return out


def apply_operator(op: UdfOperator, inputs: list[list[RawRecord]]) -> list[RawRecord]:
    """Apply any UDF operator to already-evaluated inputs."""
    if isinstance(op, MapOp):
        return apply_map(op, inputs[0])
    if isinstance(op, ReduceOp):
        return apply_reduce(op, inputs[0])
    if isinstance(op, MatchOp):
        return apply_match(op, inputs[0], inputs[1])
    if isinstance(op, CrossOp):
        return apply_cross(op, inputs[0], inputs[1])
    if isinstance(op, CoGroupOp):
        return apply_cogroup(op, inputs[0], inputs[1])
    raise ExecutionError(f"cannot apply operator {op!r}")


# ---------------------------------------------------------------------------
# Whole-plan evaluation
# ---------------------------------------------------------------------------


def evaluate(root: Node, data: SourceData) -> list[RawRecord]:
    """Evaluate a plan tree and return its output records.

    Internally records flow by reference (emitting an input record shares
    the underlying dict); the returned records are copies, so callers may
    mutate them without corrupting the source data.
    """
    return [dict(r) for r in _evaluate(root, data)]


def _evaluate(root: Node, data: SourceData) -> list[RawRecord]:
    op = root.op
    if isinstance(op, Source):
        try:
            return list(data[op.name])
        except KeyError:
            raise ExecutionError(f"no data bound for source {op.name!r}") from None
    if isinstance(op, Sink):
        return _evaluate(root.only_child, data)
    if isinstance(op, UdfOperator):
        inputs = [_evaluate(child, data) for child in root.children]
        return apply_operator(op, inputs)
    raise ExecutionError(f"cannot evaluate operator {op!r}")


def sink_projection(root: Node) -> tuple[Attribute, ...] | None:
    """The attributes the plan's sink asks for, if a sink with a projection
    is present."""
    if isinstance(root.op, Sink):
        return root.op.wanted
    return None
