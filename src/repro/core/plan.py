"""Data flow plans as immutable, hash-consed operator trees.

A plan is a tree of :class:`Node` objects whose leaves are sources and whose
root is usually a sink.  Nodes are *interned*: constructing a node that is
structurally equal to an existing one (same operator object, same child
nodes) returns the existing object, so structural equality is object
identity, ``hash`` is O(1), and every cache keyed on nodes (enumeration
seen-sets, cardinality estimates, physical-plan memo tables) becomes an
identity lookup.  The structural :func:`signature` of a node is computed
once at construction from the already-cached child signatures — no
recursive re-walk per lookup.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterator

from .errors import PlanError
from .operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    MaterializedSource,
    Operator,
    ReduceOp,
    Sink,
    Source,
    UdfOperator,
)


class Node:
    """One operator application over child sub-flows (hash-consed).

    Operators compare by identity, so the intern table keys on
    ``(op, children)`` where the children are themselves interned nodes;
    tuple equality over the key is then pure identity comparison.  The
    table holds weak references to the nodes so dropped plans are
    reclaimed; a parent's key tuple keeps its children alive exactly as
    long as the parent itself is.
    """

    __slots__ = ("op", "children", "signature", "_hash", "__weakref__")

    _intern: "weakref.WeakValueDictionary[tuple, Node]" = (
        weakref.WeakValueDictionary()
    )

    op: Operator
    children: tuple["Node", ...]
    signature: tuple
    _hash: int

    def __new__(cls, op: Operator, children: tuple["Node", ...] = ()) -> "Node":
        children = tuple(children)
        key = (op, children)
        existing = cls._intern.get(key)
        if existing is not None:
            return existing
        if len(children) != op.arity:
            raise PlanError(
                f"operator {op.name!r} has arity {op.arity} but got "
                f"{len(children)} children"
            )
        self = super().__new__(cls)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "children", children)
        object.__setattr__(
            self,
            "signature",
            (op.name,) + tuple(c.signature for c in children),
        )
        # Identity hash is sound: interning makes structural equality
        # coincide with object identity (and parents' intern keys hash
        # children through this, so equal keys still collide correctly).
        object.__setattr__(self, "_hash", object.__hash__(self))
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Node is immutable")

    def __hash__(self) -> int:
        return self._hash

    def with_children(self, children: tuple["Node", ...]) -> "Node":
        return Node(self.op, children)

    @property
    def only_child(self) -> "Node":
        if len(self.children) != 1:
            raise PlanError(f"operator {self.op.name!r} is not unary")
        return self.children[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({render_inline(self)})"


def node(op: Operator, *children: Node) -> Node:
    """Convenience constructor."""
    return Node(op, tuple(children))


def chain(source: Operator, *ops: Operator) -> Node:
    """Build a linear flow ``source -> ops[0] -> ops[1] -> ...``."""
    current = Node(source, ())
    for op in ops:
        current = Node(op, (current,))
    return current


def iter_nodes(root: Node) -> Iterator[Node]:
    """Pre-order traversal."""
    stack = [root]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children))


def operators_of(root: Node) -> list[Operator]:
    return [n.op for n in iter_nodes(root)]


def signature(root: Node) -> tuple:
    """Structural identity of a plan (operator names + shape).

    Cached on the node at construction time; this accessor is O(1).
    """
    return root.signature


def signature_key(root: Node) -> str:
    """Stable, human-readable string form of a plan signature.

    Operator names cannot contain ``(``/``)``/``,`` (enforced at
    :class:`~repro.core.operators.Operator` construction), so the
    rendering is injective on signatures.  Used as the persistence key of
    runtime observations: two
    plans — across processes and across physically different executions —
    share a key exactly when their logical signatures are equal.
    """
    return _encode_signature(root.signature)


def _encode_signature(sig: tuple) -> str:
    name = sig[0]
    if len(sig) == 1:
        return name
    return f"{name}({','.join(_encode_signature(c) for c in sig[1:])})"


def resolved_signature(root: Node) -> tuple:
    """Structural signature with materialized boundaries substituted back.

    A :class:`~repro.core.operators.MaterializedSource` leaf stands for an
    already-executed subtree; substituting its ``origin_signature`` yields
    the signature the *equivalent ordinary plan* would have.  For plans
    without materialized leaves this equals :func:`signature` exactly.
    """
    op = root.op
    if isinstance(op, MaterializedSource):
        return op.origin_signature
    if not root.children:
        return root.signature
    return (op.name,) + tuple(resolved_signature(c) for c in root.children)


def resolved_signature_key(root: Node) -> str:
    """:func:`signature_key` over :func:`resolved_signature`.

    This is the key under which runtime observations are stored and looked
    up: a suffix node planned over a materialized stage boundary shares its
    key with the same logical sub-flow in an ordinary plan, so statistics
    learned mid-query transfer to future full-plan optimizations (and vice
    versa).  Identical to :func:`signature_key` on ordinary plans.
    """
    return _encode_signature(resolved_signature(root))


def replace_subtree(root: Node, old: Node, new: Node) -> Node:
    """Return a copy of ``root`` with the subtree ``old`` replaced by ``new``.

    Matching is structural; the first match in pre-order is replaced.
    """
    if root == old:
        return new
    replaced = False
    new_children = []
    for child in root.children:
        if not replaced:
            candidate = replace_subtree(child, old, new)
            if candidate is not child and candidate != child:
                replaced = True
                new_children.append(candidate)
                continue
            if child == old:
                replaced = True
                new_children.append(new)
                continue
        new_children.append(child)
    if not replaced and root != old:
        return root
    return Node(root.op, tuple(new_children))


def validate(root: Node) -> None:
    """Structural validation: unique operator names, single sink at root."""
    names: set[str] = set()
    for n in iter_nodes(root):
        if n.op.name in names:
            raise PlanError(f"duplicate operator name {n.op.name!r} in plan")
        names.add(n.op.name)
        if isinstance(n.op, Sink) and n is not root:
            raise PlanError("sink operators may only appear at the plan root")
        if isinstance(n.op, Source) and n.children:
            raise PlanError("source operators are leaves")


def body(root: Node) -> Node:
    """Strip a sink root, if present (enumeration works below the sink)."""
    if isinstance(root.op, Sink):
        return root.only_child
    return root


def resinked(original_root: Node, new_body: Node) -> Node:
    """Re-attach the sink of ``original_root`` (if any) on top of a new body."""
    if isinstance(original_root.op, Sink):
        return Node(original_root.op, (new_body,))
    return new_body


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_KIND_LABEL: dict[type, str] = {
    Source: "Source",
    Sink: "Sink",
    MapOp: "Map",
    ReduceOp: "Reduce",
    CrossOp: "Cross",
    MatchOp: "Match",
    CoGroupOp: "CoGroup",
}


def kind_label(op: Operator) -> str:
    return _KIND_LABEL.get(type(op), type(op).__name__)


def render_inline(root: Node) -> str:
    """Compact one-line rendering, e.g. ``Map:f(Source:I)``."""
    label = f"{kind_label(root.op)}:{root.op.name}"
    if not root.children:
        return label
    inner = ", ".join(render_inline(c) for c in root.children)
    return f"{label}({inner})"


def render_tree(root: Node) -> str:
    """Multi-line ASCII rendering of a plan tree."""
    lines: list[str] = []

    def walk(n: Node, prefix: str, is_last: bool) -> None:
        connector = "" if not prefix else ("`-- " if is_last else "|-- ")
        lines.append(f"{prefix}{connector}{kind_label(n.op)} {n.op.name}")
        child_prefix = prefix + ("    " if is_last or not prefix else "|   ")
        for i, child in enumerate(n.children):
            walk(child, child_prefix, i == len(n.children) - 1)

    walk(root, "", True)
    return "\n".join(lines)


def linearize(root: Node) -> tuple[str, ...]:
    """Bottom-up order of UDF operator names along the main spine.

    Useful in tests for chains: sources and sinks are skipped.
    """
    order: list[str] = []

    def walk(n: Node) -> None:
        for child in n.children:
            walk(child)
        if isinstance(n.op, UdfOperator):
            order.append(n.op.name)

    walk(root)
    return tuple(order)


def map_nodes(root: Node, fn: Callable[[Node], Node | None]) -> Node:
    """Bottom-up rebuild; ``fn`` may return a replacement for each node."""
    new_children = tuple(map_nodes(c, fn) for c in root.children)
    candidate = Node(root.op, new_children)
    replacement = fn(candidate)
    return replacement if replacement is not None else candidate
