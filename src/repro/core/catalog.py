"""Catalog: data statistics and integrity metadata.

The optimizer needs three kinds of knowledge beyond UDF properties:

* **statistics** (row counts, distinct values, record widths) for cost and
  cardinality estimation — the paper's optimizer hints such as "Number of
  Distinct Values per Key-Set" (Section 7.1);
* **unique keys**, to decide when a join preserves key groups;
* **referential constraints** ("F is a foreign key to K", Section 4.3.2),
  which enable the invariant grouping transformation and totality-aware
  key-group preservation for joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SchemaError
from .schema import Attribute


@dataclass(slots=True)
class SourceStats:
    """Statistics for one data source instance."""

    row_count: int
    distinct: dict[Attribute, int] = field(default_factory=dict)
    attr_bytes: dict[Attribute, float] = field(default_factory=dict)

    def distinct_of(self, attribute: Attribute) -> int:
        return self.distinct.get(attribute, max(1, self.row_count))


@dataclass(frozen=True, slots=True)
class RefConstraint:
    """Referential constraint: every ``from_attrs`` value appears in
    ``to_attrs`` (when ``total``), and ``to_attrs`` is a key of its source."""

    from_attrs: frozenset[Attribute]
    to_attrs: frozenset[Attribute]
    total: bool = True


class Catalog:
    """Registry of source statistics and integrity constraints."""

    def __init__(self) -> None:
        self._sources: dict[str, SourceStats] = {}
        self._unique_keys: set[frozenset[Attribute]] = set()
        self._refs: list[RefConstraint] = []

    # -- registration -----------------------------------------------------

    def add_source(self, name: str, stats: SourceStats) -> None:
        if name in self._sources:
            raise SchemaError(f"source {name!r} already registered")
        self._sources[name] = stats

    def remove_source(self, name: str) -> None:
        """Drop a registered source (unknown names are a no-op).

        Used by mid-query re-optimization to retire the synthetic
        boundary sources of a finished staged execution."""
        self._sources.pop(name, None)

    def declare_unique(self, *attributes: Attribute) -> None:
        """Declare that rows are unique on the given attribute set."""
        if not attributes:
            raise SchemaError("a unique key needs at least one attribute")
        self._unique_keys.add(frozenset(attributes))

    def declare_reference(
        self,
        from_attrs: tuple[Attribute, ...],
        to_attrs: tuple[Attribute, ...],
        total: bool = True,
    ) -> None:
        """Declare ``from_attrs`` references ``to_attrs`` (FK -> PK)."""
        self._refs.append(
            RefConstraint(frozenset(from_attrs), frozenset(to_attrs), total)
        )

    def clone(self) -> "Catalog":
        """Shallow copy: independent registries, shared stats objects.

        Mid-query re-optimization overlays synthetic boundary sources on a
        workload's catalog without mutating the original; constraints and
        per-source stats are immutable in practice, so sharing them is safe.
        """
        out = Catalog()
        out._sources = dict(self._sources)
        out._unique_keys = set(self._unique_keys)
        out._refs = list(self._refs)
        return out

    # -- lookups ------------------------------------------------------------

    def stats(self, source_name: str) -> SourceStats:
        try:
            return self._sources[source_name]
        except KeyError:
            raise SchemaError(f"unknown source {source_name!r}") from None

    def has_source(self, source_name: str) -> bool:
        return source_name in self._sources

    def source_unique_keys(
        self, schema: frozenset[Attribute]
    ) -> set[frozenset[Attribute]]:
        """Declared unique keys fully contained in the given schema."""
        return {k for k in self._unique_keys if k <= schema}

    def is_unique(self, attrs: frozenset[Attribute]) -> bool:
        """True if the attribute set contains a declared unique key."""
        return any(key <= attrs for key in self._unique_keys)

    def reference_between(
        self, from_attrs: frozenset[Attribute], to_attrs: frozenset[Attribute]
    ) -> RefConstraint | None:
        """Constraint whose endpoints match the given attribute sets."""
        for ref in self._refs:
            if ref.from_attrs == from_attrs and ref.to_attrs == to_attrs:
                return ref
        return None

    def distinct_of(self, attribute: Attribute) -> int | None:
        for stats in self._sources.values():
            if attribute in stats.distinct:
                return stats.distinct[attribute]
        return None

    def attr_width(self, attribute: Attribute, default: float = 8.0) -> float:
        for stats in self._sources.values():
            if attribute in stats.attr_bytes:
                return stats.attr_bytes[attribute]
        return default
