"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """Raised for invalid attribute/schema usage (bad positions, duplicates)."""


class PlanError(ReproError):
    """Raised for structurally invalid data flow plans."""


class UdfError(ReproError):
    """Raised for invalid UDF definitions or runtime misuse of the record API."""


class AnalysisError(ReproError):
    """Raised by the static code analyzer for malformed TAC programs."""


class UnsupportedBytecode(AnalysisError):
    """Raised when the CPython bytecode front-end meets code it cannot model.

    Callers catch this and fall back to conservative (read-all / write-all)
    properties, preserving safety exactly as described in Section 5 of the
    paper.
    """


class OptimizationError(ReproError):
    """Raised when the optimizer is misconfigured or cannot produce a plan."""


class OptimizationConfigError(OptimizationError, ValueError):
    """Raised for invalid optimizer configuration values (non-positive job
    counts, unknown search modes, bad sampling limits).

    Also a :class:`ValueError`, so callers validating user input can catch
    it without importing the library hierarchy.
    """


class ExecutionError(ReproError):
    """Raised by the execution engine for runtime failures."""


class ExecutionConfigError(ExecutionError, ValueError):
    """Raised for invalid engine configuration values (non-positive worker
    counts).  Also a :class:`ValueError`; see
    :class:`OptimizationConfigError`.
    """


class FeedbackError(ReproError):
    """Raised by the adaptive feedback subsystem (corrupt statistics
    stores, invalid round configurations)."""
