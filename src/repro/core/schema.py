"""Attributes, schemas, and the *global record* abstraction.

The paper (Definition 1) names every base and intermediate attribute of a
data flow uniquely; the *global record* is the collection of all such
attributes, and a redirection map ``alpha(D, n)`` maps the n-th field of a
data set to its global attribute.

In this implementation:

* :class:`Attribute` objects are the global names.  Two scans of the same
  base table use *distinct* attribute objects (the paper prefixes attributes
  with the data set they belong to).
* Each operator carries a :class:`FieldMap` per input — the redirection map
  alpha fixed when the flow was authored.  Reordering never changes these
  maps, which is exactly how the paper preserves positional UDF access under
  reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SchemaError


@dataclass(frozen=True, slots=True)
class Attribute:
    """A uniquely named member of the global record.

    Attributes compare by name; creating two ``Attribute`` objects with the
    same name yields equal attributes (convenient for tests), but library
    code always threads the same objects through.

    The hash is precomputed: runtime records are dictionaries keyed by
    attributes, so attribute hashing sits on the engine's innermost loops.
    """

    name: str
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.name))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attr({self.name})"


def attrs(*names: str) -> tuple[Attribute, ...]:
    """Convenience constructor: ``attrs('a', 'b')`` -> tuple of Attributes."""
    return tuple(Attribute(n) for n in names)


def prefixed(prefix: str, *names: str) -> tuple[Attribute, ...]:
    """Create attributes named ``prefix.name`` — one scan instance's schema."""
    return tuple(Attribute(f"{prefix}.{n}") for n in names)


@dataclass(frozen=True, slots=True)
class FieldMap:
    """Positional field-index -> global-attribute mapping (the map alpha).

    A ``FieldMap`` is fixed per operator input when the data flow is written
    and never changes under reordering.
    """

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        seen: set[Attribute] = set()
        for a in self.attributes:
            if a in seen:
                raise SchemaError(f"duplicate attribute in field map: {a.name}")
            seen.add(a)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def attr_at(self, position: int) -> Attribute:
        if position < 0 or position >= len(self.attributes):
            raise SchemaError(
                f"field position {position} out of range (width {len(self.attributes)})"
            )
        return self.attributes[position]

    def position_of(self, attribute: Attribute) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(f"attribute {attribute.name} not in field map") from None

    def as_set(self) -> frozenset[Attribute]:
        return frozenset(self.attributes)


class NewAttributeFactory:
    """Deterministic factory for attributes an operator *creates*.

    The paper adds an attribute to the global record when a UDF sets a field
    at a position beyond the width of its input (Section 5).  The factory
    guarantees that analysis time and execution time agree on the attribute
    object for a given output position of a given operator.
    """

    def __init__(self, owner_name: str) -> None:
        self._owner_name = owner_name
        self._created: dict[int, Attribute] = {}

    def attr_for(self, output_position: int) -> Attribute:
        if output_position not in self._created:
            self._created[output_position] = Attribute(
                f"{self._owner_name}.f{output_position}"
            )
        return self._created[output_position]

    def created(self) -> dict[int, Attribute]:
        return dict(self._created)


@dataclass(frozen=True, slots=True)
class GlobalRecord:
    """The set of all base and intermediate attributes of a plan."""

    attributes: frozenset[Attribute] = field(default_factory=frozenset)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

    def union(self, more: frozenset[Attribute]) -> "GlobalRecord":
        return GlobalRecord(self.attributes | more)
