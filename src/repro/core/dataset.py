"""Data sets with bag (unordered multiset) semantics.

The paper defines a data set as an unordered list of records and data set
equality as the existence of a record-level bijection (Section 2.2).  We
provide canonicalization helpers used throughout the tests and the engine
to compare the outputs of reordered plans.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable

from .record import RawRecord
from .schema import Attribute


def _canonical_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical_value(v)) for k, v in value.items()))
    return value


def canonical_record(record: RawRecord) -> tuple:
    """Hashable canonical form of a record (sorted by attribute name)."""
    return tuple(
        sorted(((a.name, _canonical_value(v)) for a, v in record.items()))
    )


def bag_of(records: Iterable[RawRecord]) -> Counter:
    """Multiset view of a record collection."""
    return Counter(canonical_record(r) for r in records)


def datasets_equal(left: Iterable[RawRecord], right: Iterable[RawRecord]) -> bool:
    """Bag equality as defined in Section 2.2 of the paper."""
    return bag_of(left) == bag_of(right)


def project(records: Iterable[RawRecord], wanted: Iterable[Attribute]) -> list[RawRecord]:
    """Project records onto a set of attributes (missing attributes skipped)."""
    wanted = tuple(wanted)
    out: list[RawRecord] = []
    for r in records:
        out.append({a: r[a] for a in wanted if a in r})
    return out


def projected_equal(
    left: Iterable[RawRecord],
    right: Iterable[RawRecord],
    wanted: Iterable[Attribute],
) -> bool:
    """Bag equality after projecting both sides onto ``wanted``.

    Reordered plans may differ in which *pass-through* attributes survive to
    the sink; equivalence is judged on the attributes the sink asks for,
    which corresponds to the paper judging equivalence on the original
    plan's output schema.
    """
    wanted = tuple(wanted)
    return datasets_equal(project(left, wanted), project(right, wanted))


def _rounded(record: RawRecord, digits: int) -> RawRecord:
    out: RawRecord = {}
    for a, v in record.items():
        if isinstance(v, float):
            out[a] = round(v, digits)
        else:
            out[a] = v
    return out


def datasets_approx_equal(
    left: Iterable[RawRecord],
    right: Iterable[RawRecord],
    digits: int = 6,
) -> bool:
    """Bag equality with floats rounded to ``digits`` decimal places.

    Plan reorderings change float summation order; results equal up to
    floating-point non-associativity are considered equivalent.
    """
    return datasets_equal(
        (_rounded(r, digits) for r in left), (_rounded(r, digits) for r in right)
    )


def projected_approx_equal(
    left: Iterable[RawRecord],
    right: Iterable[RawRecord],
    wanted: Iterable[Attribute],
    digits: int = 6,
) -> bool:
    """Projection onto ``wanted`` plus float-tolerant bag equality."""
    wanted = tuple(wanted)
    return datasets_approx_equal(
        project(left, wanted), project(right, wanted), digits
    )
