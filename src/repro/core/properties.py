"""Operator properties: read/write sets, emit bounds, KAT group behavior.

These are the "handful of properties" (Sections 4 and 5 of the paper) that
replace full algebraic knowledge of an operator:

* the **read set** — fields that may influence the UDF's output,
* the **write set** — fields whose value may change (modifications,
  projections, and newly created fields),
* **emit cardinality bounds** — how many records one UDF call may emit,
* **branch reads** — the fields that decide *whether* records are emitted
  (used for the key group preservation condition, Definition 5),
* a **KAT group behavior** describing how Reduce/CoGroup UDFs treat their
  key groups.

Field sets support a *cofinite* representation (``ALL`` minus a finite set)
so the conservative fallback of the static analyzer ("when in doubt, add
the attribute", Section 5) is expressible without knowing input widths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

# ---------------------------------------------------------------------------
# FieldSet: finite or cofinite sets of field identifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FieldSet:
    """A finite or cofinite set of field identifiers.

    ``cofinite=False``: the set is exactly ``items``.
    ``cofinite=True``: the set is *everything except* ``items``.

    Identifiers are ``(input_index, position)`` pairs for reads and plain
    output positions (ints) for writes; the algebra is generic.
    """

    items: frozenset = frozenset()
    cofinite: bool = False

    @staticmethod
    def of(*items: Any) -> "FieldSet":
        return FieldSet(frozenset(items), cofinite=False)

    @staticmethod
    def empty() -> "FieldSet":
        return FieldSet(frozenset(), cofinite=False)

    @staticmethod
    def all() -> "FieldSet":
        return FieldSet(frozenset(), cofinite=True)

    @staticmethod
    def all_except(*items: Any) -> "FieldSet":
        return FieldSet(frozenset(items), cofinite=True)

    def is_empty(self) -> bool:
        return not self.cofinite and not self.items

    def is_all(self) -> bool:
        return self.cofinite and not self.items

    def __contains__(self, item: Any) -> bool:
        if self.cofinite:
            return item not in self.items
        return item in self.items

    def add(self, item: Any) -> "FieldSet":
        if self.cofinite:
            return FieldSet(self.items - {item}, cofinite=True)
        return FieldSet(self.items | {item}, cofinite=False)

    def union(self, other: "FieldSet") -> "FieldSet":
        if not self.cofinite and not other.cofinite:
            return FieldSet(self.items | other.items, False)
        if self.cofinite and other.cofinite:
            return FieldSet(self.items & other.items, True)
        fin, cof = (self, other) if not self.cofinite else (other, self)
        return FieldSet(cof.items - fin.items, True)

    def intersection(self, other: "FieldSet") -> "FieldSet":
        if not self.cofinite and not other.cofinite:
            return FieldSet(self.items & other.items, False)
        if self.cofinite and other.cofinite:
            return FieldSet(self.items | other.items, True)
        fin, cof = (self, other) if not self.cofinite else (other, self)
        return FieldSet(fin.items - cof.items, False)

    def is_disjoint(self, other: "FieldSet") -> bool:
        inter = self.intersection(other)
        return inter.is_empty()

    def resolve(self, universe: Iterable[Any]) -> frozenset:
        """Materialize against a finite universe of identifiers."""
        universe = frozenset(universe)
        if self.cofinite:
            return universe - self.items
        return self.items & universe

    def finite_items(self) -> frozenset:
        """The finite items (only meaningful when not cofinite)."""
        return self.items


# ---------------------------------------------------------------------------
# Emit cardinality bounds
# ---------------------------------------------------------------------------

UNBOUNDED = None


@dataclass(frozen=True, slots=True)
class EmitBounds:
    """Bounds on the number of records emitted per UDF call.

    ``hi is None`` means unbounded (an emit inside a loop).  For RAT
    operators a call is one record (or record pair); for KAT operators a
    call is one key group.
    """

    lo: int = 0
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError("lower emit bound must be >= 0")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError("upper emit bound below lower bound")

    @staticmethod
    def exactly(n: int) -> "EmitBounds":
        return EmitBounds(n, n)

    @staticmethod
    def at_most_one() -> "EmitBounds":
        return EmitBounds(0, 1)

    @staticmethod
    def unbounded() -> "EmitBounds":
        return EmitBounds(0, None)

    @property
    def exactly_one(self) -> bool:
        return self.lo == 1 and self.hi == 1

    @property
    def filter_like(self) -> bool:
        return self.hi is not None and self.hi <= 1

    def times(self, other: "EmitBounds") -> "EmitBounds":
        """Bounds of composing two emission steps (e.g. join fan-out x UDF)."""
        hi = None if self.hi is None or other.hi is None else self.hi * other.hi
        return EmitBounds(self.lo * other.lo, hi)

    def contains(self, n: int) -> bool:
        return n >= self.lo and (self.hi is None or n <= self.hi)


# ---------------------------------------------------------------------------
# KAT group behavior
# ---------------------------------------------------------------------------


class KatBehavior(enum.Enum):
    """How a key-at-a-time UDF (Reduce/CoGroup) treats its key groups.

    ALL_OR_NONE   -- emits every record of the group (as a copy, possibly
                     with write-set fields modified) or none of them; the
                     keep/drop decision depends only on the branch-read
                     fields.  This is the extended KGP shape of Definition 5.
    ONE_PER_GROUP -- emits exactly one record per group (aggregation).
    ARBITRARY     -- anything else; blocks all KGP-dependent reorderings.
    NOT_KAT       -- the UDF is record-at-a-time.
    """

    ALL_OR_NONE = "all_or_none"
    ONE_PER_GROUP = "one_per_group"
    ARBITRARY = "arbitrary"
    NOT_KAT = "not_kat"


# ---------------------------------------------------------------------------
# UdfProperties
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UdfProperties:
    """The black-box properties of one UDF, before binding to attributes.

    Field identifiers are positional: reads use ``(input_index, position)``
    pairs; writes use *output* positions (resolved against the concatenated
    input widths when the owning operator binds them to attributes).
    """

    reads: FieldSet = field(default_factory=FieldSet.empty)
    branch_reads: FieldSet = field(default_factory=FieldSet.empty)
    writes_modified: FieldSet = field(default_factory=FieldSet.empty)
    writes_projected: FieldSet = field(default_factory=FieldSet.empty)
    copies: frozenset = frozenset()  # (output_pos, input_index, input_pos)
    emit_bounds: EmitBounds = field(default_factory=EmitBounds.unbounded)
    kat_behavior: KatBehavior = KatBehavior.NOT_KAT
    origin: str = "manual"
    notes: tuple[str, ...] = ()

    def is_conservative(self) -> bool:
        return self.origin == "conservative"


def conservative_properties(reason: str = "") -> UdfProperties:
    """The safe fallback: reads everything, may modify everything.

    Projection is *not* claimed (claiming it would shrink the schema, and
    the originally authored plan must always remain valid); instead every
    existing field is treated as possibly modified, which conflicts with
    every other operator and therefore blocks all reorderings involving
    this UDF — safety through conservatism (Section 5).
    """
    notes = (f"conservative fallback: {reason}",) if reason else ()
    return UdfProperties(
        reads=FieldSet.all(),
        branch_reads=FieldSet.all(),
        writes_modified=FieldSet.all(),
        writes_projected=FieldSet.empty(),
        emit_bounds=EmitBounds.unbounded(),
        kat_behavior=KatBehavior.ARBITRARY,
        origin="conservative",
        notes=notes,
    )
