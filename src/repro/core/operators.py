"""Logical PACT operators: Source, Sink, Map, Reduce, Cross, Match, CoGroup.

Each operator couples a second-order function (the operator type) with a
first-order :class:`~repro.core.udf.Udf` and the positional field maps (the
redirection map alpha) fixed when the flow was authored.  Binding a UDF's
positional properties against those maps yields attribute-level read/write
sets — the inputs to the reordering conditions of Section 4.

Operators compare by identity: the same operator object appears in every
enumerated alternative of a plan, which keeps attribute naming stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import PlanError, SchemaError
from .properties import EmitBounds, KatBehavior, UdfProperties
from .record import OutputPositionResolver
from .schema import Attribute, FieldMap, NewAttributeFactory
from .udf import AnnotationMode, ParamKind, Udf


@dataclass(frozen=True, slots=True)
class BoundProps:
    """Attribute-level properties of one operator (read/write sets etc.).

    ``writes`` is the full write set of Definition 2: modified attributes,
    projected attributes, and newly created attributes.  ``reads`` includes
    key attributes (the paper adds Match/Reduce keys to the read set).
    """

    reads: frozenset[Attribute]
    branch_reads: frozenset[Attribute]
    modified: frozenset[Attribute]
    projected: frozenset[Attribute]
    new_attrs: frozenset[Attribute]
    emit_bounds: EmitBounds
    kat_behavior: KatBehavior
    conservative: bool
    # Derived unions, precomputed once: the reordering conditions consult
    # these on every legality check of the enumeration.
    writes: frozenset[Attribute] = field(init=False)
    accessed: frozenset[Attribute] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "writes", self.modified | self.projected | self.new_attrs
        )
        object.__setattr__(self, "accessed", self.reads | self.writes)


class Operator:
    """Base class for all logical operators."""

    arity: int = 1
    is_kat: bool = False

    #: Characters reserved by the plan-signature rendering
    #: (:func:`repro.core.plan.signature_key`); banning them from names
    #: keeps that rendering injective on plan structures.
    _RESERVED_NAME_CHARS = frozenset("(),")

    def __init__(self, name: str) -> None:
        if not name or self._RESERVED_NAME_CHARS & set(name):
            raise SchemaError(
                f"invalid operator name {name!r}: must be non-empty and "
                "free of '(', ')' and ','"
            )
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class Source(Operator):
    """A data source with a fixed schema (one scan instance)."""

    arity = 0

    def __init__(self, name: str, schema: tuple[Attribute, ...]) -> None:
        super().__init__(name)
        if not schema:
            raise SchemaError(f"source {name!r} needs a non-empty schema")
        self.schema = FieldMap(tuple(schema))

    def output_attrs(self) -> frozenset[Attribute]:
        return self.schema.as_set()


class MaterializedSource(Source):
    """A pipeline-stage boundary's materialized output, pinned as a source.

    Mid-query re-optimization replaces every *executed* stage of a running
    plan with one of these: the stage's buffered output partitions become a
    scan-like leaf with **exact** cardinality, so suffix re-planning costs
    the unexecuted remainder against ground truth instead of estimates.

    The operator carries everything downstream layers need to stay sound
    and exact without re-deriving it from the (no longer visible) executed
    subtree:

    * ``partitions`` — the engine hands these back verbatim: the handoff is
      an in-memory checkpoint, charged zero scan time (the work that built
      it was already charged when the stage ran);
    * ``partitioning`` — the physical hash-partitioning the executed plan
      established, seeded into the optimizer so a re-planned suffix can
      forward into a compatible Reduce/Match instead of reshuffling;
    * ``origin_signature`` — the logical signature of the replaced subtree,
      so observations made on (and estimates looked up for) suffix nodes
      transfer to the equivalent nodes of ordinary plans;
    * ``unique_keys`` / ``preserves_rows`` / ``written_attrs`` — plan facts
      *derived through* the executed subtree.  Catalog-declared constraints
      describe base sources only; claiming them for an intermediate (which
      may have dropped rows, fanned out, or overwritten attributes) could
      legalize unsound reorderings, so the true derived facts travel with
      the boundary instead.
    """

    def __init__(
        self,
        name: str,
        schema: tuple[Attribute, ...],
        partitions: list,
        origin_signature: tuple,
        partitioning: frozenset = frozenset(),
        unique_keys: frozenset = frozenset(),
        preserves_rows: bool = False,
        written_attrs: frozenset[Attribute] = frozenset(),
    ) -> None:
        super().__init__(name, schema)
        self.partitions = partitions
        self.origin_signature = origin_signature
        self.partitioning = partitioning
        self.unique_keys = unique_keys
        self.preserves_rows = preserves_rows
        self.written_attrs = written_attrs

    @property
    def row_count(self) -> int:
        return sum(len(p) for p in self.partitions)


class Sink(Operator):
    """A data sink; ``wanted`` is the projection used for output comparison."""

    arity = 1

    def __init__(self, name: str, wanted: tuple[Attribute, ...] | None = None) -> None:
        super().__init__(name)
        self.wanted = tuple(wanted) if wanted is not None else None


class UdfOperator(Operator):
    """Shared machinery for the five PACT operator types."""

    def __init__(self, name: str, udf: Udf, input_maps: tuple[FieldMap, ...]) -> None:
        super().__init__(name)
        expected = tuple(
            ParamKind.RECORD_LIST if self.is_kat else ParamKind.RECORD
            for _ in input_maps
        )
        if udf.param_kinds != expected:
            raise PlanError(
                f"operator {name!r}: UDF parameter kinds {udf.param_kinds} do "
                f"not match the operator type (expected {expected})"
            )
        self.udf = udf
        self.input_maps = input_maps
        self.new_attr_factory = NewAttributeFactory(name)
        self.resolver = OutputPositionResolver(input_maps, self.new_attr_factory)
        self._bound_cache: dict[AnnotationMode, BoundProps] = {}

    # -- property binding ----------------------------------------------------

    def key_attrs(self) -> frozenset[Attribute]:
        """Key attributes (empty for Map/Cross); overridden by keyed ops."""
        return frozenset()

    def bound_props(self, mode: AnnotationMode) -> BoundProps:
        if mode not in self._bound_cache:
            self._bound_cache[mode] = self._bind(self.udf.properties(mode))
        return self._bound_cache[mode]

    def _bind(self, props: UdfProperties) -> BoundProps:
        read_universe = {
            (i, p)
            for i, fmap in enumerate(self.input_maps)
            for p in range(len(fmap))
        }
        width = self.resolver.total_width
        write_universe = set(range(width))

        def read_attrs(fs) -> frozenset[Attribute]:
            resolved = fs.resolve(read_universe)
            return frozenset(
                self.input_maps[i].attr_at(p) for (i, p) in resolved
            )

        reads = read_attrs(props.reads) | self.key_attrs()
        branch_reads = read_attrs(props.branch_reads)

        modified_pos = props.writes_modified.resolve(write_universe)
        modified = frozenset(self.resolver.attr_for(p) for p in modified_pos)
        projected_pos = props.writes_projected.resolve(write_universe)
        projected = frozenset(self.resolver.attr_for(p) for p in projected_pos)

        new_attrs: frozenset[Attribute] = frozenset()
        if not props.writes_modified.cofinite:
            new_attrs = frozenset(
                self.resolver.attr_for(p)
                for p in props.writes_modified.finite_items()
                if isinstance(p, int) and p >= width
            )

        # Pure field-to-field copies: a copy to the *same* attribute is
        # neither a read nor a write (the value cannot change anything);
        # a copy to a *different* attribute reads the source and writes the
        # destination (Definition 2/3).
        extra_reads: set[Attribute] = set()
        extra_modified: set[Attribute] = set()
        extra_new: set[Attribute] = set()
        for out_pos, in_idx, in_pos in props.copies:
            src_attr = self.input_maps[in_idx].attr_at(in_pos)
            dst_attr = self.resolver.attr_for(out_pos)
            if dst_attr == src_attr:
                continue
            extra_reads.add(src_attr)
            if out_pos >= width:
                extra_new.add(dst_attr)
            else:
                extra_modified.add(dst_attr)
        reads = reads | frozenset(extra_reads)
        modified = modified | frozenset(extra_modified)
        new_attrs = new_attrs | frozenset(extra_new)

        return BoundProps(
            reads=reads,
            branch_reads=branch_reads,
            modified=modified,
            projected=projected,
            new_attrs=new_attrs,
            emit_bounds=props.emit_bounds,
            kat_behavior=props.kat_behavior,
            conservative=props.is_conservative(),
        )

    def positional_attrs(self) -> frozenset[Attribute]:
        return self.resolver.positional_attrs()

    def output_attrs_from(
        self, mode: AnnotationMode, *child_attrs: frozenset[Attribute]
    ) -> frozenset[Attribute]:
        """Schema propagation: inputs minus projected plus created."""
        props = self.bound_props(mode)
        combined: set[Attribute] = set()
        for attrs in child_attrs:
            combined |= attrs
        return frozenset((combined - props.projected) | props.new_attrs)


class MapOp(UdfOperator):
    """Record-at-a-time unary operator."""

    arity = 1
    is_kat = False

    def __init__(self, name: str, udf: Udf, input_map: FieldMap) -> None:
        super().__init__(name, udf, (input_map,))

    @property
    def input_map(self) -> FieldMap:
        return self.input_maps[0]


class ReduceOp(UdfOperator):
    """Key-at-a-time unary operator; the UDF receives whole key groups."""

    arity = 1
    is_kat = True

    def __init__(
        self, name: str, udf: Udf, input_map: FieldMap, key_positions: tuple[int, ...]
    ) -> None:
        super().__init__(name, udf, (input_map,))
        if not key_positions:
            raise PlanError(f"Reduce {name!r} needs at least one key position")
        self.key_positions = tuple(key_positions)
        self._key_tuple = tuple(input_map.attr_at(p) for p in self.key_positions)
        self._key_attrs = frozenset(self._key_tuple)

    @property
    def input_map(self) -> FieldMap:
        return self.input_maps[0]

    def key_attrs(self) -> frozenset[Attribute]:
        return self._key_attrs

    def key_attr_tuple(self) -> tuple[Attribute, ...]:
        return self._key_tuple


class CrossOp(UdfOperator):
    """Record-at-a-time binary operator over the Cartesian product."""

    arity = 2
    is_kat = False

    def __init__(
        self, name: str, udf: Udf, left_map: FieldMap, right_map: FieldMap
    ) -> None:
        super().__init__(name, udf, (left_map, right_map))

    @property
    def left_map(self) -> FieldMap:
        return self.input_maps[0]

    @property
    def right_map(self) -> FieldMap:
        return self.input_maps[1]


class MatchOp(UdfOperator):
    """Equi-join style binary operator: UDF runs per matching record pair."""

    arity = 2
    is_kat = False

    def __init__(
        self,
        name: str,
        udf: Udf,
        left_map: FieldMap,
        right_map: FieldMap,
        left_key_positions: tuple[int, ...],
        right_key_positions: tuple[int, ...],
    ) -> None:
        super().__init__(name, udf, (left_map, right_map))
        if len(left_key_positions) != len(right_key_positions) or not left_key_positions:
            raise PlanError(f"Match {name!r}: malformed key positions")
        self.left_key_positions = tuple(left_key_positions)
        self.right_key_positions = tuple(right_key_positions)
        self._left_key_tuple = tuple(
            left_map.attr_at(p) for p in self.left_key_positions
        )
        self._right_key_tuple = tuple(
            right_map.attr_at(p) for p in self.right_key_positions
        )
        self._key_attrs = frozenset(self._left_key_tuple) | frozenset(
            self._right_key_tuple
        )

    @property
    def left_map(self) -> FieldMap:
        return self.input_maps[0]

    @property
    def right_map(self) -> FieldMap:
        return self.input_maps[1]

    def left_key_attrs(self) -> tuple[Attribute, ...]:
        return self._left_key_tuple

    def right_key_attrs(self) -> tuple[Attribute, ...]:
        return self._right_key_tuple

    def side_key_attrs(self, side: int) -> tuple[Attribute, ...]:
        return self._left_key_tuple if side == 0 else self._right_key_tuple

    def key_attrs(self) -> frozenset[Attribute]:
        # The conceptual transformation of Section 4.3.1 adds the keys to the
        # read set of the Match UDF (f').
        return self._key_attrs


class CoGroupOp(UdfOperator):
    """Key-at-a-time binary operator: UDF runs per key with both groups."""

    arity = 2
    is_kat = True

    def __init__(
        self,
        name: str,
        udf: Udf,
        left_map: FieldMap,
        right_map: FieldMap,
        left_key_positions: tuple[int, ...],
        right_key_positions: tuple[int, ...],
    ) -> None:
        super().__init__(name, udf, (left_map, right_map))
        if len(left_key_positions) != len(right_key_positions) or not left_key_positions:
            raise PlanError(f"CoGroup {name!r}: malformed key positions")
        self.left_key_positions = tuple(left_key_positions)
        self.right_key_positions = tuple(right_key_positions)
        self._left_key_tuple = tuple(
            left_map.attr_at(p) for p in self.left_key_positions
        )
        self._right_key_tuple = tuple(
            right_map.attr_at(p) for p in self.right_key_positions
        )
        self._key_attrs = frozenset(self._left_key_tuple) | frozenset(
            self._right_key_tuple
        )

    @property
    def left_map(self) -> FieldMap:
        return self.input_maps[0]

    @property
    def right_map(self) -> FieldMap:
        return self.input_maps[1]

    def left_key_attrs(self) -> tuple[Attribute, ...]:
        return self._left_key_tuple

    def right_key_attrs(self) -> tuple[Attribute, ...]:
        return self._right_key_tuple

    def side_key_attrs(self, side: int) -> tuple[Attribute, ...]:
        return self._left_key_tuple if side == 0 else self._right_key_tuple

    def key_attrs(self) -> frozenset[Attribute]:
        return self._key_attrs
