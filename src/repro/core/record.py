"""Runtime records and the record API exposed to user-defined functions.

The paper's UDFs access record fields positionally through a small record
API (``getField``, ``setField``, copy/default/concat constructors, ``emit``;
Section 5).  We mirror that API:

* :class:`InputRecord` — read-only positional view of a record; ``copy()``
  is the *implicit copy* constructor, ``new_record()`` the *implicit
  projection* constructor, and ``concat(other)`` the binary concatenation
  constructor.
* :class:`OutputRecord` — write handle with ``set_field``.
* :class:`Collector` — receives emitted records.

Runtime records are dictionaries keyed by global :class:`Attribute`.  This
is what makes reordering sound: an operator only manipulates attributes in
its own positional space (its field maps); every other attribute passes
through untouched, which is exactly the pi_W-complement preservation the
paper's proofs rely on.
"""

from __future__ import annotations

from typing import Any, Iterable

from .errors import UdfError
from .schema import Attribute, FieldMap, NewAttributeFactory

RawRecord = dict[Attribute, Any]


# Exact-type fast path: sizing runs once per value per ship/spill, so it
# sits on the engine's hot path.  Subclasses fall through to the
# isinstance chain, preserving the original semantics (bool before int).
_SCALAR_BYTES: dict[type, int] = {
    type(None): 1,
    bool: 1,
    int: 8,
    float: 8,
}


def value_bytes(value: Any) -> int:
    """Estimated serialized size of a single value, in bytes."""
    kind = type(value)
    size = _SCALAR_BYTES.get(kind)
    if size is not None:
        return size
    if kind is str:
        return 4 + len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, (tuple, list)):
        return 4 + sum(value_bytes(v) for v in value)
    return 16


def record_bytes(record: RawRecord) -> int:
    """Estimated serialized size of a record (values plus per-field header)."""
    total = 2 * len(record)
    scalar = _SCALAR_BYTES
    for value in record.values():
        size = scalar.get(type(value))
        if size is not None:
            total += size
        elif type(value) is str:
            total += 4 + len(value)
        else:
            total += value_bytes(value)
    return total


class OutputPositionResolver:
    """Resolves UDF *output* positions to global attributes.

    For a unary operator with input width ``w``, output positions ``0..w-1``
    address the input attributes and positions ``>= w`` create new
    attributes.  For a binary operator the concatenated widths are used, as
    with the paper's two-input record constructor.
    """

    def __init__(
        self, input_maps: tuple[FieldMap, ...], factory: NewAttributeFactory
    ) -> None:
        self._maps = input_maps
        self._factory = factory
        self._widths = [len(m) for m in input_maps]
        self._total_width = sum(self._widths)

    @property
    def total_width(self) -> int:
        return self._total_width

    def attr_for(self, output_position: int) -> Attribute:
        if output_position < 0:
            raise UdfError(f"negative field position {output_position}")
        offset = output_position
        for m in self._maps:
            if offset < len(m):
                return m.attr_at(offset)
            offset -= len(m)
        return self._factory.attr_for(output_position)

    def positional_attrs(self) -> frozenset[Attribute]:
        """All attributes inside this operator's positional space."""
        out: set[Attribute] = set()
        for m in self._maps:
            out.update(m.attributes)
        return frozenset(out)


class InputRecord:
    """Read-only positional view handed to UDFs."""

    __slots__ = ("_values", "_field_map", "_resolver")

    def __init__(
        self,
        values: RawRecord,
        field_map: FieldMap,
        resolver: OutputPositionResolver,
    ) -> None:
        self._values = values
        self._field_map = field_map
        self._resolver = resolver

    def get_field(self, position: int) -> Any:
        try:
            # fast path: in-range position, attribute present
            if position >= 0:
                return self._values[self._field_map.attributes[position]]
        except KeyError:
            attr = self._field_map.attr_at(position)
            raise UdfError(
                f"attribute {attr.name} absent at runtime; the plan projects "
                "it away before this operator"
            ) from None
        except IndexError:
            pass
        return self._values[self._field_map.attr_at(position)]  # raises

    def copy(self) -> "OutputRecord":
        """Implicit-copy constructor: output starts as a full copy."""
        return OutputRecord(dict(self._values), self._resolver)

    def new_record(self) -> "OutputRecord":
        """Implicit-projection constructor.

        Attributes inside the operator's own positional space are dropped;
        attributes the operator does not know about pass through (global
        record semantics).
        """
        positional = self._resolver.positional_attrs()
        passthrough = {a: v for a, v in self._values.items() if a not in positional}
        return OutputRecord(passthrough, self._resolver)

    def concat(self, other: "InputRecord") -> "OutputRecord":
        """Binary concatenation constructor (implicit copy of both inputs)."""
        if not isinstance(other, InputRecord):
            raise UdfError("concat expects another input record")
        merged = dict(self._values)
        merged.update(other._values)
        return OutputRecord(merged, self._resolver)

    def raw(self) -> RawRecord:
        """The underlying attribute-keyed values (library internal)."""
        return self._values


class OutputRecord:
    """Mutable record under construction by a UDF."""

    __slots__ = ("_values", "_resolver")

    def __init__(self, values: RawRecord, resolver: OutputPositionResolver) -> None:
        self._values = values
        self._resolver = resolver

    def set_field(self, position: int, value: Any) -> None:
        """Set an output field.

        Following the paper's record API, setting a field to ``None`` is an
        *explicit projection* (the attribute is removed).
        """
        attr = self._resolver.attr_for(position)
        if value is None:
            self._values.pop(attr, None)
        else:
            self._values[attr] = value

    def get_field(self, position: int) -> Any:
        """Read back a field previously present on the output record."""
        attr = self._resolver.attr_for(position)
        try:
            return self._values[attr]
        except KeyError:
            raise UdfError(f"output field {position} ({attr.name}) not set") from None

    def raw(self) -> RawRecord:
        return self._values


class Collector:
    """Receives records emitted by a UDF invocation."""

    __slots__ = ("_out",)

    def __init__(self) -> None:
        self._out: list[RawRecord] = []

    def emit(self, record: InputRecord | OutputRecord) -> None:
        if isinstance(record, OutputRecord):
            # The UDF may keep mutating the output record after emitting
            # it, so the emitted snapshot must be a copy.
            self._out.append(dict(record.raw()))
        elif isinstance(record, InputRecord):
            # Emitting an input record is an implicit full copy; the view
            # is read-only and records are never mutated once emitted, so
            # the underlying dict can be shared instead of copied.
            self._out.append(record.raw())
        else:
            raise UdfError(f"emit() expects a record, got {type(record).__name__}")

    def records(self) -> list[RawRecord]:
        return self._out


def wrap_inputs(
    rows: Iterable[RawRecord],
    field_map: FieldMap,
    resolver: OutputPositionResolver,
) -> list[InputRecord]:
    """Wrap raw rows into :class:`InputRecord` views for one operator input."""
    return [InputRecord(r, field_map, resolver) for r in rows]
