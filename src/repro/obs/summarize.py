"""Self-time breakdown of a trace file (`repro trace summarize`).

Loads either exporter format (JSONL span log or Chrome trace-event
JSON — sniffed from the content, not the extension) and aggregates
spans two ways:

* per **subsystem** (the span category: optimizer / engine / feedback),
* per **span name** within each subsystem,

reporting count, total wall time, and *self* wall time — a span's
duration minus the duration of its direct children, so time spent in a
nested region is charged once, to the innermost span.  Sorting by self
time answers the practitioner question the paper's "black box" framing
poses about our own system: where does the time actually go?
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, slots=True)
class TraceSpan:
    """One span as read back from a trace file."""

    span_id: int | None
    parent_id: int | None
    name: str
    category: str
    start: float  # seconds from trace start
    duration: float  # seconds
    tid: int


def load_trace(path: str | Path) -> list[TraceSpan]:
    """Read spans from a JSONL span log or a Chrome trace-event file."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _load_chrome(json.loads(text))
    return _load_jsonl(text)


def _load_jsonl(text: str) -> list[TraceSpan]:
    spans = []
    for line in text.splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        spans.append(
            TraceSpan(
                span_id=row.get("id"),
                parent_id=row.get("parent"),
                name=row["name"],
                category=row.get("cat", ""),
                start=float(row["ts"]),
                duration=float(row["dur"]),
                tid=int(row.get("tid", 0)),
            )
        )
    return spans


def _load_chrome(payload: dict) -> list[TraceSpan]:
    spans = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        spans.append(
            TraceSpan(
                span_id=args.get("span"),
                parent_id=args.get("parent"),
                name=event["name"],
                category=event.get("cat", ""),
                start=float(event.get("ts", 0.0)) / 1e6,
                duration=float(event.get("dur", 0.0)) / 1e6,
                tid=int(event.get("tid", 0)),
            )
        )
    return spans


@dataclass(slots=True)
class SpanAggregate:
    """Count/total/self rollup of one span name (or one category)."""

    key: str
    category: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0


def self_times(spans: list[TraceSpan]) -> dict[int | None, float]:
    """Per-span self time: duration minus direct children's durations.

    Spans without ids (foreign traces) contribute their full duration.
    Negative self time (overlapping worker children shipped onto a
    parent stage span) clamps to zero — the children genuinely ran
    concurrently, so the parent has no exclusive share left.
    """
    child_sum: dict[int | None, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_sum[span.parent_id] = (
                child_sum.get(span.parent_id, 0.0) + span.duration
            )
    out: dict[int | None, float] = {}
    for span in spans:
        own = span.duration - child_sum.get(span.span_id, 0.0)
        out[span.span_id] = max(0.0, own) if span.span_id is not None else 0.0
    return out


def summarize(spans: list[TraceSpan]) -> tuple[list[SpanAggregate], list[SpanAggregate]]:
    """Aggregate spans by (category) and by (category, name).

    Returns ``(per_category, per_name)``, both sorted by descending self
    time.
    """
    selfs = self_times(spans)
    by_cat: dict[str, SpanAggregate] = {}
    by_name: dict[tuple[str, str], SpanAggregate] = {}
    for span in spans:
        own = (
            selfs.get(span.span_id, span.duration)
            if span.span_id is not None
            else span.duration
        )
        cat = span.category or "(uncategorized)"
        agg = by_cat.get(cat)
        if agg is None:
            agg = by_cat[cat] = SpanAggregate(key=cat, category=cat)
        agg.count += 1
        agg.total_seconds += span.duration
        agg.self_seconds += own
        key = (cat, span.name)
        agg = by_name.get(key)
        if agg is None:
            agg = by_name[key] = SpanAggregate(key=span.name, category=cat)
        agg.count += 1
        agg.total_seconds += span.duration
        agg.self_seconds += own
    ranked_cat = sorted(by_cat.values(), key=lambda a: -a.self_seconds)
    ranked_name = sorted(by_name.values(), key=lambda a: -a.self_seconds)
    return ranked_cat, ranked_name


def render_summary(spans: list[TraceSpan], top: int = 20) -> str:
    """The `repro trace summarize` report text."""
    if not spans:
        return "empty trace: no spans"
    per_cat, per_name = summarize(spans)
    wall = max(s.start + s.duration for s in spans) - min(
        s.start for s in spans
    )
    total_self = sum(a.self_seconds for a in per_cat) or 1.0
    tids = {s.tid for s in spans}
    lines = [
        f"{len(spans)} spans over {wall * 1e3:.1f} ms wall "
        f"({len(tids)} timeline lane(s))",
        "",
        "self time by subsystem",
        f"  {'subsystem':<16} {'spans':>7} {'total':>10} {'self':>10} {'share':>7}",
    ]
    for agg in per_cat:
        lines.append(
            f"  {agg.key:<16} {agg.count:>7} "
            f"{agg.total_seconds * 1e3:>8.1f}ms {agg.self_seconds * 1e3:>8.1f}ms "
            f"{agg.self_seconds / total_self:>6.1%}"
        )
    lines.append("")
    lines.append(f"top spans by self time (showing {min(top, len(per_name))})")
    lines.append(
        f"  {'span':<28} {'subsystem':<12} {'count':>7} {'total':>10} {'self':>10}"
    )
    for agg in per_name[:top]:
        lines.append(
            f"  {agg.key:<28} {agg.category:<12} {agg.count:>7} "
            f"{agg.total_seconds * 1e3:>8.1f}ms {agg.self_seconds * 1e3:>8.1f}ms"
        )
    return "\n".join(lines)
