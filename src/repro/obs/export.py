"""Trace and metrics exporters.

Three formats, all derived from one finished :class:`~.tracer.Tracer`:

* **JSONL span log** (:func:`write_jsonl`) — one JSON object per span,
  sorted by start time, seconds-based; the stable machine-readable form
  (`repro trace summarize` reads it back).
* **Chrome trace-event JSON** (:func:`write_chrome`) — complete
  ``traceEvents`` duration events (microsecond timestamps) loadable in
  Perfetto / ``chrome://tracing``.  The main process renders as one
  named thread lane; fork workers' shipped-back partition spans render
  as their own ``worker-<pid>`` lanes.
* **Prometheus-style text snapshot** (:func:`render_prometheus` /
  :func:`write_prometheus`) — the deterministic counters and gauges in
  the exposition text format (``# TYPE``-annotated, sanitized names).

Timestamps are re-based to the trace's earliest span start, so traces
begin at t=0 regardless of process uptime; worker spans share the
parent's monotonic clock, so re-basing preserves cross-process
alignment.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import MetricsRegistry, Span, Tracer


def _clean(value):
    """Attribute values must survive JSON; anything exotic becomes str."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _sorted_spans(tracer: Tracer) -> list[Span]:
    return sorted(tracer.spans, key=lambda s: (s.start, s.span_id))


def _base_time(spans: list[Span]) -> float:
    return min((s.start for s in spans), default=0.0)


def span_rows(tracer: Tracer) -> list[dict]:
    """Spans as plain dicts (seconds, re-based to trace start)."""
    spans = _sorted_spans(tracer)
    base = _base_time(spans)
    return [
        {
            "id": s.span_id,
            "parent": s.parent_id,
            "name": s.name,
            "cat": s.category,
            "ts": s.start - base,
            "dur": s.duration,
            "tid": s.tid,
            "args": {k: _clean(v) for k, v in s.attrs.items()},
        }
        for s in spans
    ]


def write_jsonl(tracer: Tracer, path: str | Path) -> int:
    """Write the JSONL span log; returns the number of spans written."""
    rows = span_rows(tracer)
    text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    Path(path).write_text(text)
    return len(rows)


def chrome_events(tracer: Tracer) -> list[dict]:
    """Chrome trace-event list: thread metadata plus duration events."""
    spans = _sorted_spans(tracer)
    base = _base_time(spans)
    pid = tracer.pid
    # tid 0 is the tracing process's own lane; shipped worker spans carry
    # the worker's real pid as their tid and get a lane each.
    tids = {s.tid for s in spans}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for tid in sorted(tids):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid if tid else pid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
            }
        )
    for s in spans:
        args = {k: _clean(v) for k, v in s.attrs.items()}
        # Chrome duration events carry no parent link; embed the span
        # ids so `repro trace summarize` can rebuild exact nesting.
        args["span"] = s.span_id
        if s.parent_id is not None:
            args["parent"] = s.parent_id
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.category or "repro",
                "ts": (s.start - base) * 1e6,
                "dur": s.duration * 1e6,
                "pid": pid,
                "tid": s.tid if s.tid else pid,
                "args": args,
            }
        )
    return events


def write_chrome(tracer: Tracer, path: str | Path) -> int:
    """Write a Perfetto-loadable Chrome trace; returns the span count."""
    events = chrome_events(tracer)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e["ph"] == "X")


_FORMATS = ("jsonl", "chrome")


def write_trace(tracer: Tracer, path: str | Path, fmt: str | None = None) -> int:
    """Write ``tracer`` to ``path``; ``fmt=None`` sniffs the extension.

    ``.jsonl`` writes the span log, anything else the Chrome trace.
    """
    if fmt is None:
        fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
    if fmt not in _FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (use jsonl|chrome)")
    writer = write_jsonl if fmt == "jsonl" else write_chrome
    return writer(tracer, path)


def _metric_name(name: str) -> str:
    """Prometheus metric names: ``repro_`` prefix, [a-zA-Z0-9_:] only."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus exposition text (counters then gauges)."""
    lines: list[str] = []
    for name, value in registry.counters.items():
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in registry.gauges.items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(tracer: Tracer, path: str | Path) -> None:
    Path(path).write_text(render_prometheus(tracer.metrics))
