"""The span-based tracer and deterministic metrics registry.

Two strictly separated measurement axes run through the system:

* **Modeled time** — the deterministic simulated seconds the cost model
  and engine compute.  The tracer never touches it: records, per-op
  :class:`~repro.engine.metrics.OpMetrics`, and modeled seconds are
  bit-identical whether tracing is on or off (pinned by
  ``tests/obs/test_tracing_parity.py``).
* **Wall clock** — where planning and execution time *actually* goes on
  this machine.  Spans read :data:`clock` (the monotonic
  ``time.perf_counter``) and nothing else.

This module is the only place in ``src/repro`` allowed to call
``time.perf_counter`` directly (enforced by
``tests/obs/test_timing_discipline.py``); every other wall-clock reading
goes through :data:`clock` or through spans, so all timing shares one
monotonic clock — which, being ``CLOCK_MONOTONIC`` on Linux, is also
valid *across* forked worker processes: workers can time their partition
work locally and ship raw ``(start, end)`` pairs back as primitives for
the parent to register (:meth:`Tracer.add_span`) on the worker's own
timeline lane.

The default everywhere is the shared :data:`NOOP_TRACER`: every call is
a constant-time no-op on preallocated objects, so instrumented code pays
only an attribute lookup and a dict-free method call per span site (the
hot sites are per stage / per operator / per partition — never per
record).
"""

from __future__ import annotations

import os
import time

#: The one wall clock of the system (monotonic, cross-fork comparable on
#: Linux).  Code outside ``repro.obs`` that needs a raw reading — the
#: engine's wall-seconds fields, the optimizer's phase timings — imports
#: this instead of calling ``time.perf_counter`` itself.
clock = time.perf_counter


class MetricsRegistry:
    """Deterministic named counters and gauges.

    Values are driven by structural facts (stages run, plans costed,
    conflicts retried) — never by wall time — so two runs of the same
    work produce identical snapshots.  Insertion-ordered, like every
    other deterministic table in the system.
    """

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}


class Span:
    """One timed region: a context manager that records itself on exit.

    Nesting is tracked per tracer (the engine and optimizer are
    single-threaded within one process): entering pushes the span on the
    tracer's stack, so spans opened inside it become its children.
    Structured attributes arrive via keyword arguments at creation or
    :meth:`set` at any point — including after exit, for facts only known
    once the region's output exists (row counts, modeled seconds).
    """

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "category",
        "start",
        "end",
        "tid",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        category: str,
        tid: int,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id: int | None = None
        self.name = name
        self.category = category
        self.tid = tid
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start = self.tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self.tracer._clock()
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit, keep best effort
            try:
                stack.remove(self)
            except ValueError:
                pass
        self.tracer.spans.append(self)
        return False


class Tracer:
    """Collects spans and metrics for one traced run.

    * :meth:`span` opens a nested, attributed wall-clock span (use as a
      context manager);
    * :meth:`add_span` registers an already-measured region — how fork
      workers' partition timings, shipped back as primitives, enter the
      trace on their own ``tid`` lane;
    * :meth:`count` / :meth:`gauge` feed the deterministic
      :class:`MetricsRegistry`.

    ``_clock`` is injectable for tests (a fake monotonic clock makes
    span arithmetic exactly assertable).
    """

    __slots__ = ("spans", "metrics", "pid", "_clock", "_stack", "_next_id")

    enabled = True

    def __init__(self, _clock=clock) -> None:
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self.pid = os.getpid()
        self._clock = _clock
        self._stack: list[Span] = []
        self._next_id = 0

    def span(self, name: str, category: str = "", **attrs) -> Span:
        self._next_id += 1
        return Span(self, self._next_id, name, category, tid=0, attrs=attrs)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        tid: int = 0,
        attrs: dict | None = None,
        parent_id: int | str | None = "current",
    ) -> Span:
        """Register a completed region measured elsewhere (e.g. a worker).

        ``parent_id="current"`` (the default) parents the span under
        whatever span is open right now — for worker partition spans
        that is the stage being executed when the pool returned.
        """
        self._next_id += 1
        span = Span(self, self._next_id, name, category, tid, attrs or {})
        if parent_id == "current":
            span.parent_id = self._stack[-1].span_id if self._stack else None
        else:
            span.parent_id = parent_id
        span.start = start
        span.end = end
        self.spans.append(span)
        return span

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set(name, value)

    def absorb(self, other: "Tracer") -> None:
        """Merge another tracer's finished spans and metrics into this one.

        The serving layer traces each request on its own short-lived
        tracer (so concurrent requests never interleave on one span
        stack) and folds the result into a long-lived sink tracer
        afterwards.  Span ids are re-based past this tracer's highest id,
        parent links included, so exporters and ``repro trace summarize``
        rebuild exact per-request nesting from the merged log.  ``other``
        must be finished (no open spans) and is consumed: its span
        objects are adopted, not copied.
        """
        if other.spans:
            base = self._next_id
            top = 0
            for span in other.spans:
                span.span_id += base
                if span.parent_id is not None:
                    span.parent_id += base
                if span.span_id > top:
                    top = span.span_id
            self.spans.extend(other.spans)
            self._next_id = top
        for name, value in other.metrics.counters.items():
            self.metrics.inc(name, value)
        for name, value in other.metrics.gauges.items():
            self.metrics.set(name, value)


class _NoopSpan:
    """Shared inert span: enter/exit/set all do nothing."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The default tracer: every operation is a constant-time no-op.

    Stateless and shared (:data:`NOOP_TRACER`), so ``Engine()`` /
    ``Optimizer()`` construction allocates nothing.  Hot code may guard
    optional extra work on ``tracer.enabled``.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, category: str = "", **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def add_span(self, *args, **kwargs) -> None:
        return None

    def absorb(self, other) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


#: The process-wide shared no-op tracer every component defaults to.
NOOP_TRACER = NoopTracer()
