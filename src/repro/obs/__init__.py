"""Unified observability: wall-clock spans + deterministic metrics.

The paper opens operator black boxes; this package opens *ours*.  A
:class:`Tracer` threads through the optimizer (enumeration,
per-alternative costing, memo invalidation, parallel chunk dispatch),
the engine (per-stage and per-partition execution, fork workers shipping
span primitives back on their own timeline lanes), and the feedback loop
(ingest/sync/conflict-retry, mid-query boundary decisions).  The default
is the shared :data:`NOOP_TRACER` with near-zero overhead, and tracing
reads wall clock only — modeled records/metrics/seconds are bit-identical
on or off.

Exporters: JSONL span log, Chrome trace-event JSON (Perfetto-loadable),
Prometheus-style metrics text.  ``repro trace summarize`` renders the
self-time breakdown.
"""

from .export import (
    chrome_events,
    render_prometheus,
    span_rows,
    write_chrome,
    write_jsonl,
    write_prometheus,
    write_trace,
)
from .summarize import (
    SpanAggregate,
    TraceSpan,
    load_trace,
    render_summary,
    self_times,
    summarize,
)
from .tracer import NOOP_TRACER, MetricsRegistry, NoopTracer, Span, Tracer, clock

__all__ = [
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanAggregate",
    "TraceSpan",
    "Tracer",
    "chrome_events",
    "clock",
    "load_trace",
    "render_prometheus",
    "render_summary",
    "self_times",
    "span_rows",
    "summarize",
    "write_chrome",
    "write_jsonl",
    "write_prometheus",
    "write_trace",
]
