"""Shared workload plumbing.

A :class:`Workload` bundles everything one evaluation task needs: the
implemented PACT plan, the catalog (statistics + integrity metadata), the
bound source data, optimizer hints, and the *true* per-call UDF costs the
simulated engine charges (hints and truth differ slightly, as they would
with profiling-based hints on a real cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean

from ..core.catalog import Catalog, SourceStats
from ..core.plan import Node
from ..core.record import RawRecord, value_bytes
from ..core.schema import Attribute
from ..optimizer.cardinality import Hints
from ..optimizer.cost import CostParams


@dataclass(slots=True)
class Workload:
    name: str
    plan: Node  # implemented flow, sink at the root
    catalog: Catalog
    data: dict[str, list[RawRecord]]
    hints: dict[str, Hints] = field(default_factory=dict)
    true_costs: dict[str, float] = field(default_factory=dict)
    sink_attrs: tuple[Attribute, ...] = ()
    description: str = ""
    # Cluster model used for this workload's experiments; tuned so the
    # simulated absolute runtimes land on the paper's minute scale.
    params: CostParams = field(default_factory=CostParams)


def resolve_scale(scale, default, scale_factor: float):
    """The builders' shared ``scale_factor`` knob: multiply the datagen
    scale (given or default) via its ``scaled()`` method."""
    scale = scale if scale is not None else default
    if scale_factor != 1.0:
        scale = scale.scaled(scale_factor)
    return scale


def bind_rows(
    rows: list[dict], columns: dict[str, Attribute]
) -> list[RawRecord]:
    """Convert generator rows (column-name keyed) to attribute-keyed records."""
    return [{attr: row[col] for col, attr in columns.items()} for row in rows]


def source_stats(
    rows: list[RawRecord],
    distinct_attrs: tuple[Attribute, ...] = (),
) -> SourceStats:
    """Measure row count, per-attribute widths, and requested distinct counts."""
    stats = SourceStats(row_count=len(rows))
    if not rows:
        return stats
    sample = rows[: min(len(rows), 500)]
    for attr in sample[0]:
        stats.attr_bytes[attr] = fmean(value_bytes(r[attr]) for r in sample)
    for attr in distinct_attrs:
        stats.distinct[attr] = len({r[attr] for r in rows})
    return stats


def register_source(
    catalog: Catalog,
    name: str,
    rows: list[RawRecord],
    distinct_attrs: tuple[Attribute, ...] = (),
) -> None:
    catalog.add_source(name, source_stats(rows, distinct_attrs))
