"""The four evaluation workloads of Section 7.2."""

from .base import Workload, bind_rows, register_source, source_stats
from .clickstream import build_clickstream
from .textmining import build_textmining
from .tpch_q15 import build_q15
from .tpch_q7 import build_q7

ALL_WORKLOADS = {
    "tpch_q7": build_q7,
    "tpch_q15": build_q15,
    "clickstream": build_clickstream,
    "textmining": build_textmining,
}

__all__ = [
    "ALL_WORKLOADS",
    "Workload",
    "bind_rows",
    "build_clickstream",
    "build_q15",
    "build_q7",
    "build_textmining",
    "register_source",
    "source_stats",
]
