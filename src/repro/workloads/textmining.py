"""The biomedical text-mining task (Section 7.2).

A pipeline of Map operators that detects gene-drug relationships in
abstracts.  Each annotator calls a "third-party" NLP helper on *field
values* (never on records), so the static analyzer derives precise
properties — mirroring how the paper's Soot-based analyzer treats opaque
library calls inside analyzable UDF shells.

Dependencies (via read/write sets):

    tokenize < pos_tag < {gene_ner, drug_ner, mesh_tagger, species_ner} <
    relation_extract

The four annotators between POS tagging and relation extraction are
pairwise reorderable, giving 4! = 24 valid operator orders — the paper
reports exactly 24 enumerated orders for this task.  Every annotator also
filters (documents without a mention are dropped), so operator order
changes runtime by roughly an order of magnitude.
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.operators import MapOp, Sink, Source
from ..core.plan import node
from ..core.properties import EmitBounds, FieldSet, UdfProperties
from ..core.schema import FieldMap, prefixed
from ..core.udf import map_udf
from ..datagen.textcorpus import (
    CorpusScale,
    extract_relations,
    find_drugs,
    find_genes,
    find_mesh_terms,
    find_species,
    generate_corpus,
    pos_tag,
    tokenize,
)
from ..optimizer.cardinality import Hints
from ..optimizer.cost import CostParams
from .base import Workload, bind_rows, register_source, resolve_scale

# doc fields: doc_id(0), text(1); derived: tokens(2), pos_tags(3),
# genes(4), drugs(5), mesh(6), species(7), relations(8)


def tokenize_doc(rec, out):
    tokens = tokenize(rec.get_field(1))
    r = rec.copy()
    r.set_field(2, tokens)
    out.emit(r)


def pos_tag_doc(rec, out):
    tags = pos_tag(rec.get_field(2))
    r = rec.copy()
    r.set_field(3, tags)
    out.emit(r)


def gene_ner(rec, out):
    genes = find_genes(rec.get_field(2))
    tags = rec.get_field(3)
    if len(genes) == 0:
        return
    if len(tags) == 0:
        return
    r = rec.copy()
    r.set_field(4, genes)
    out.emit(r)


def drug_ner(rec, out):
    drugs = find_drugs(rec.get_field(2))
    tags = rec.get_field(3)
    if len(drugs) == 0:
        return
    if len(tags) == 0:
        return
    r = rec.copy()
    r.set_field(5, drugs)
    out.emit(r)


def mesh_tagger(rec, out):
    terms = find_mesh_terms(rec.get_field(2))
    tags = rec.get_field(3)
    if len(terms) == 0:
        return
    if len(tags) == 0:
        return
    r = rec.copy()
    r.set_field(6, terms)
    out.emit(r)


def species_ner(rec, out):
    species = find_species(rec.get_field(2))
    tags = rec.get_field(3)
    if len(species) == 0:
        return
    if len(tags) == 0:
        return
    r = rec.copy()
    r.set_field(7, species)
    out.emit(r)


def relation_extract(rec, out):
    relations = extract_relations(rec.get_field(4), rec.get_field(5))
    context = rec.get_field(6)
    habitat = rec.get_field(7)
    if len(relations) == 0:
        return
    if len(context) == 0:
        return
    if len(habitat) == 0:
        return
    r = rec.copy()
    r.set_field(8, relations)
    out.emit(r)


def _annotator_props(read_pos: tuple[int, ...], write_pos: int) -> UdfProperties:
    return UdfProperties(
        reads=FieldSet.of(*(((0, p)) for p in read_pos)),
        branch_reads=FieldSet.of(*(((0, p)) for p in read_pos)),
        writes_modified=FieldSet.of(write_pos),
        emit_bounds=EmitBounds.at_most_one(),
    )


def _annotations() -> dict[str, UdfProperties]:
    return {
        "tokenize": UdfProperties(
            reads=FieldSet.of((0, 1)),
            writes_modified=FieldSet.of(2),
            emit_bounds=EmitBounds.exactly(1),
        ),
        "pos_tag": UdfProperties(
            reads=FieldSet.of((0, 2)),
            writes_modified=FieldSet.of(3),
            emit_bounds=EmitBounds.exactly(1),
        ),
        "gene_ner": _annotator_props((2, 3), 4),
        "drug_ner": _annotator_props((2, 3), 5),
        "mesh_tagger": _annotator_props((2, 3), 6),
        "species_ner": _annotator_props((2, 3), 7),
        "relation_extract": _annotator_props((4, 5, 6, 7), 8),
    }


def build_textmining(
    scale: CorpusScale | None = None, seed: int = 31, scale_factor: float = 1.0
) -> Workload:
    """Construct the text-mining workload; ``scale_factor`` multiplies rows."""
    scale = resolve_scale(scale, CorpusScale(), scale_factor)
    doc = prefixed("doc", "doc_id", "text")
    docs_src = Source("documents", doc)
    ann = _annotations()

    t_op = MapOp("tokenize", map_udf(tokenize_doc, ann["tokenize"]), FieldMap(doc))
    tokens = t_op.new_attr_factory.attr_for(2)
    chain1 = doc + (tokens,)
    p_op = MapOp("pos_tag", map_udf(pos_tag_doc, ann["pos_tag"]), FieldMap(chain1))
    tags = p_op.new_attr_factory.attr_for(3)
    chain2 = chain1 + (tags,)

    g_op = MapOp("gene_ner", map_udf(gene_ner, ann["gene_ner"]), FieldMap(chain2))
    genes = g_op.new_attr_factory.attr_for(4)
    chain3 = chain2 + (genes,)
    d_op = MapOp("drug_ner", map_udf(drug_ner, ann["drug_ner"]), FieldMap(chain3))
    drugs = d_op.new_attr_factory.attr_for(5)
    chain4 = chain3 + (drugs,)
    m_op = MapOp("mesh_tagger", map_udf(mesh_tagger, ann["mesh_tagger"]), FieldMap(chain4))
    mesh = m_op.new_attr_factory.attr_for(6)
    chain5 = chain4 + (mesh,)
    s_op = MapOp("species_ner", map_udf(species_ner, ann["species_ner"]), FieldMap(chain5))
    species = s_op.new_attr_factory.attr_for(7)
    chain6 = chain5 + (species,)
    r_op = MapOp(
        "relation_extract",
        map_udf(relation_extract, ann["relation_extract"]),
        FieldMap(chain6),
    )
    relations = r_op.new_attr_factory.attr_for(8)

    flow = node(docs_src)
    for op in (t_op, p_op, g_op, d_op, m_op, s_op, r_op):
        flow = node(op, flow)
    sink_attrs = (doc[0], genes, drugs, relations)
    plan = node(Sink("relations_out", sink_attrs), flow)

    raw = generate_corpus(scale, seed)
    doc_cols = dict(zip(("doc_id", "text"), doc))
    data = {"documents": bind_rows(raw.documents, doc_cols)}

    catalog = Catalog()
    register_source(catalog, "documents", data["documents"], (doc[0],))
    catalog.declare_unique(doc[0])

    # Hinted selectivities/costs approximate profiling measurements; the
    # NER components are the expensive, machine-learning-backed stages.
    hints = {
        "tokenize": Hints(selectivity=1.0, cpu_per_call=2.0),
        "pos_tag": Hints(selectivity=1.0, cpu_per_call=8.0),
        "gene_ner": Hints(selectivity=0.30, cpu_per_call=780.0),
        "drug_ner": Hints(selectivity=0.25, cpu_per_call=45.0),
        "mesh_tagger": Hints(selectivity=0.50, cpu_per_call=4.0),
        "species_ner": Hints(selectivity=0.40, cpu_per_call=165.0),
        "relation_extract": Hints(selectivity=0.60, cpu_per_call=70.0),
    }
    true_costs = {
        "tokenize": 2.0,
        "pos_tag": 8.0,
        "gene_ner": 850.0,
        "drug_ner": 40.0,
        "mesh_tagger": 3.0,
        "species_ner": 180.0,
        "relation_extract": 60.0,
    }
    params = CostParams(degree=32, cpu_rate=7.0, record_overhead=0.02)
    return Workload(
        name="textmining",
        plan=plan,
        catalog=catalog,
        data=data,
        hints=hints,
        true_costs=true_costs,
        sink_attrs=sink_attrs,
        description="Biomedical text mining: NLP annotator pipeline with 24 valid orders",
        params=params,
    )
