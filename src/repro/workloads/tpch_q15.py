"""TPC-H query 15 as a hand-crafted PACT data flow (Figure 3a).

The paper's variant removes the total-revenue filter: a local predicate on
lineitem (a 3-month shipdate window), grouping/summing revenue per
supplier, and the join with the supplier relation:

    supplier  M(s.suppkey = l.suppkey)  gamma(l.suppkey; sum revenue)
                                         sigma_shipdate(lineitem)

Reordering Match with Reduce here is the invariant grouping / aggregation
push-up rewrite: it is legal because the join is PK-FK (s.suppkey unique)
and the Reduce groups on the match key (Section 4.3.2 and the Q15
discussion in Section 7.3).
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.operators import MapOp, MatchOp, ReduceOp, Sink, Source
from ..core.plan import node
from ..core.properties import EmitBounds, FieldSet, KatBehavior, UdfProperties
from ..core.schema import FieldMap, prefixed
from ..core.udf import binary_udf, map_udf, reduce_udf
from ..datagen.tpch import TpchScale, generate_tpch
from ..optimizer.cardinality import Hints
from ..optimizer.cost import CostParams
from .base import Workload, bind_rows, register_source, resolve_scale

# Three-month shipdate window (paper: [DATE, DATE + 3 months]).
Q15_DATE_A = 1460
Q15_DATE_B = 1551


def select_shipdate_q15(rec, out):
    """Filter lineitems on the window; derive revenue (position 5)."""
    d = rec.get_field(4)
    if d < Q15_DATE_A:
        return
    if d > Q15_DATE_B:
        return
    r = rec.copy()
    r.set_field(5, rec.get_field(2) * (100 - rec.get_field(3)))
    out.emit(r)


def sum_revenue(records, out):
    """Group lineitems by suppkey and total the revenue (position 6)."""
    total = 0
    for r in records:
        total = total + r.get_field(5)
    first = records[0]
    o = first.new_record()
    o.set_field(1, first.get_field(1))
    o.set_field(6, total)
    out.emit(o)


def join_supplier(sup, rev, out):
    out.emit(sup.concat(rev))


def _annotations() -> dict[str, UdfProperties]:
    return {
        "sigma_shipdate_q15": UdfProperties(
            reads=FieldSet.of((0, 2), (0, 3), (0, 4)),
            branch_reads=FieldSet.of((0, 4)),
            writes_modified=FieldSet.of(5),
            emit_bounds=EmitBounds.at_most_one(),
        ),
        "gamma_supplier_revenue": UdfProperties(
            reads=FieldSet.of((0, 5)),
            writes_modified=FieldSet.of(6),
            writes_projected=FieldSet.all_except(1, 6),
            copies=frozenset({(1, 0, 1)}),
            emit_bounds=EmitBounds.exactly(1),
            kat_behavior=KatBehavior.ONE_PER_GROUP,
        ),
        "join_s_rev": UdfProperties(emit_bounds=EmitBounds.exactly(1)),
    }


def build_q15(
    scale: TpchScale | None = None, seed: int = 43, scale_factor: float = 1.0
) -> Workload:
    """Construct the Q15 workload; ``scale_factor`` multiplies row counts."""
    scale = resolve_scale(scale, TpchScale(), scale_factor)
    li = prefixed("l", "orderkey", "suppkey", "extendedprice", "discount", "shipdate")
    s = prefixed("s", "suppkey", "name", "nationkey")

    lineitem = Source("lineitem", li)
    supplier = Source("supplier", s)
    ann = _annotations()

    sigma = MapOp(
        "sigma_shipdate_q15",
        map_udf(select_shipdate_q15, ann["sigma_shipdate_q15"]),
        FieldMap(li),
    )
    revenue_attr = sigma.new_attr_factory.attr_for(5)
    chain1 = li + (revenue_attr,)

    gamma = ReduceOp(
        "gamma_supplier_revenue",
        reduce_udf(sum_revenue, ann["gamma_supplier_revenue"]),
        FieldMap(chain1),
        key_positions=(1,),
    )
    total_revenue = gamma.new_attr_factory.attr_for(6)
    chain2 = chain1 + (total_revenue,)

    match = MatchOp(
        "join_s_rev",
        binary_udf(join_supplier, ann["join_s_rev"]),
        FieldMap(s),
        FieldMap(chain2),
        (0,),
        (1,),
    )

    flow = node(
        match,
        node(supplier),
        node(gamma, node(sigma, node(lineitem))),
    )
    sink_attrs = (s[0], s[1], total_revenue)
    plan = node(Sink("q15_out", sink_attrs), flow)

    raw = generate_tpch(scale, seed)
    li_cols = dict(zip(("orderkey", "suppkey", "extendedprice", "discount", "shipdate"), li))
    s_cols = dict(zip(("suppkey", "name", "nationkey"), s))
    data = {
        "lineitem": bind_rows(raw.lineitem, li_cols),
        "supplier": bind_rows(raw.supplier, s_cols),
    }

    catalog = Catalog()
    register_source(catalog, "lineitem", data["lineitem"], (li[1], li[4]))
    register_source(catalog, "supplier", data["supplier"], (s[0],))
    catalog.declare_unique(s[0])
    catalog.declare_reference((li[1],), (s[0],), total=True)

    hints = {
        "sigma_shipdate_q15": Hints(selectivity=0.05, cpu_per_call=2.0),
        "gamma_supplier_revenue": Hints(distinct_keys=100, cpu_per_call=2.0),
        "join_s_rev": Hints(cpu_per_call=1.0),
    }
    true_costs = {
        "sigma_shipdate_q15": 2.0,
        "gamma_supplier_revenue": 2.5,
        "join_s_rev": 1.2,
    }
    params = CostParams(
        degree=32,
        cpu_rate=100.0,
        net_bandwidth=1e3,
        disk_bandwidth=2e4,
        record_overhead=0.05,
    )
    return Workload(
        name="tpch_q15",
        plan=plan,
        catalog=catalog,
        data=data,
        hints=hints,
        true_costs=true_costs,
        sink_attrs=sink_attrs,
        description="TPC-H Q15 variant (Figure 3a): filter + per-supplier aggregation + PK-FK join",
        params=params,
    )
