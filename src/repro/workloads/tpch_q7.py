"""TPC-H query 7 as a hand-crafted PACT data flow (Figure 2a).

The paper's variant reduces the selectivity of the shipdate filter and
drops the final sort.  The flow chains five Match operators (all joins are
Matches), a filtering Map for the shipdate predicate (which also derives
``volume`` and ``year``), a filtering Map for the disjunctive nation
predicate, and a grouping/summing Reduce:

    lineitem -> sigma_shipdate -> M(l.suppkey=s.suppkey, supplier)
             -> M(l.orderkey=o.orderkey, orders)
             -> M(o.custkey=c.custkey, customer)
             -> M(c.nationkey=n1.nationkey, nation1)
             -> M(s.nationkey=n2.nationkey, nation2)
             -> sigma_nation_pair -> gamma(n1, n2, year; sum volume)

All UDFs stay inside the analyzable record-API subset, so the static code
analyzer recovers the same read/write sets as the manual annotations —
Table 1 reports 100% for Q7.
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.operators import MapOp, MatchOp, ReduceOp, Sink, Source
from ..core.plan import node
from ..core.properties import EmitBounds, FieldSet, KatBehavior, UdfProperties
from ..core.schema import FieldMap, prefixed
from ..core.udf import binary_udf, map_udf, reduce_udf
from ..datagen.tpch import TpchScale, generate_tpch
from ..optimizer.cardinality import Hints
from ..optimizer.cost import CostParams
from .base import Workload, bind_rows, register_source, resolve_scale

# Shipdate window (integer days; ~6 months of 7 years -> ~7% true selectivity;
# the paper reduces the filter's selectivity relative to stock TPC-H Q7).
DATE_A = 1096
DATE_B = 1277
NATION_X = "FRANCE"
NATION_Y = "GERMANY"


# -- UDFs (module level so the bytecode front-end resolves the constants) ----


def select_shipdate(rec, out):
    """Filter on shipdate and derive volume (position 5) and year (6)."""
    d = rec.get_field(4)
    if d < DATE_A:
        return
    if d > DATE_B:
        return
    r = rec.copy()
    r.set_field(5, rec.get_field(2) * (100 - rec.get_field(3)))
    r.set_field(6, 1992 + d * 4 // 1461)
    out.emit(r)


def concat_pair(left, right, out):
    out.emit(left.concat(right))


def select_nation_pair(rec, out):
    """The disjunctive nation predicate, implemented as a filtering Map."""
    n1 = rec.get_field(17)
    n2 = rec.get_field(19)
    if n1 == NATION_X and n2 == NATION_Y:
        out.emit(rec.copy())
        return
    if n1 == NATION_Y and n2 == NATION_X:
        out.emit(rec.copy())


def sum_volume(records, out):
    """Group by (supp nation, cust nation, year); sum the volume."""
    total = 0
    for r in records:
        total = total + r.get_field(5)
    first = records[0]
    o = first.new_record()
    o.set_field(17, first.get_field(17))
    o.set_field(19, first.get_field(19))
    o.set_field(6, first.get_field(6))
    o.set_field(20, total)
    out.emit(o)


# -- manual annotations (the Table 1 "manual" column) --------------------------


def _annotations() -> dict[str, UdfProperties]:
    concat = UdfProperties(emit_bounds=EmitBounds.exactly(1))
    return {
        "sigma_shipdate": UdfProperties(
            reads=FieldSet.of((0, 2), (0, 3), (0, 4)),
            branch_reads=FieldSet.of((0, 4)),
            writes_modified=FieldSet.of(5, 6),
            emit_bounds=EmitBounds.at_most_one(),
        ),
        "join_l_s": concat,
        "join_l_o": concat,
        "join_o_c": concat,
        "join_c_n1": concat,
        "join_s_n2": concat,
        "sigma_nation_pair": UdfProperties(
            reads=FieldSet.of((0, 17), (0, 19)),
            branch_reads=FieldSet.of((0, 17), (0, 19)),
            emit_bounds=EmitBounds.at_most_one(),
        ),
        "gamma_revenue": UdfProperties(
            reads=FieldSet.of((0, 5)),
            writes_modified=FieldSet.of(20),
            writes_projected=FieldSet.all_except(17, 19, 6, 20),
            copies=frozenset({(17, 0, 17), (19, 0, 19), (6, 0, 6)}),
            emit_bounds=EmitBounds.exactly(1),
            kat_behavior=KatBehavior.ONE_PER_GROUP,
        ),
    }


def build_q7(
    scale: TpchScale | None = None, seed: int = 42, scale_factor: float = 1.0
) -> Workload:
    """Construct the Q7 workload: plan, catalog, data, hints, true costs.

    ``scale_factor`` multiplies the datagen row counts (of ``scale`` or the
    defaults), so the streaming engine can be driven at ~10x inputs.
    """
    scale = resolve_scale(scale, TpchScale(), scale_factor)
    li = prefixed("l", "orderkey", "suppkey", "extendedprice", "discount", "shipdate")
    s = prefixed("s", "suppkey", "name", "nationkey")
    o = prefixed("o", "orderkey", "custkey", "orderdate")
    c = prefixed("c", "custkey", "name", "nationkey")
    n1 = prefixed("n1", "nationkey", "name")
    n2 = prefixed("n2", "nationkey", "name")

    lineitem = Source("lineitem", li)
    supplier = Source("supplier", s)
    orders = Source("orders", o)
    customer = Source("customer", c)
    nation1 = Source("nation1", n1)
    nation2 = Source("nation2", n2)

    ann = _annotations()

    sigma_ship = MapOp(
        "sigma_shipdate",
        map_udf(select_shipdate, ann["sigma_shipdate"]),
        FieldMap(li),
    )
    volume = sigma_ship.new_attr_factory.attr_for(5)
    year = sigma_ship.new_attr_factory.attr_for(6)

    chain1 = li + (volume, year)
    j_ls = MatchOp(
        "join_l_s", binary_udf(concat_pair, ann["join_l_s"]),
        FieldMap(chain1), FieldMap(s), (1,), (0,),
    )
    chain2 = chain1 + s
    j_lo = MatchOp(
        "join_l_o", binary_udf(concat_pair, ann["join_l_o"]),
        FieldMap(chain2), FieldMap(o), (0,), (0,),
    )
    chain3 = chain2 + o
    j_oc = MatchOp(
        "join_o_c", binary_udf(concat_pair, ann["join_o_c"]),
        FieldMap(chain3), FieldMap(c), (chain3.index(o[1]),), (0,),
    )
    chain4 = chain3 + c
    j_cn1 = MatchOp(
        "join_c_n1", binary_udf(concat_pair, ann["join_c_n1"]),
        FieldMap(chain4), FieldMap(n1), (chain4.index(c[2]),), (0,),
    )
    chain5 = chain4 + n1
    j_sn2 = MatchOp(
        "join_s_n2", binary_udf(concat_pair, ann["join_s_n2"]),
        FieldMap(chain5), FieldMap(n2), (chain5.index(s[2]),), (0,),
    )
    chain6 = chain5 + n2  # 20 attributes; n1.name at 17, n2.name at 19

    sigma_pair = MapOp(
        "sigma_nation_pair",
        map_udf(select_nation_pair, ann["sigma_nation_pair"]),
        FieldMap(chain6),
    )
    gamma = ReduceOp(
        "gamma_revenue",
        reduce_udf(sum_volume, ann["gamma_revenue"]),
        FieldMap(chain6),
        key_positions=(17, 19, 6),
    )
    revenue = gamma.new_attr_factory.attr_for(20)

    flow = node(sigma_ship, node(lineitem))
    flow = node(j_ls, flow, node(supplier))
    flow = node(j_lo, flow, node(orders))
    flow = node(j_oc, flow, node(customer))
    flow = node(j_cn1, flow, node(nation1))
    flow = node(j_sn2, flow, node(nation2))
    flow = node(sigma_pair, flow)
    flow = node(gamma, flow)
    sink_attrs = (n1[1], n2[1], year, revenue)
    plan = node(Sink("q7_out", sink_attrs), flow)

    # -- data + catalog -----------------------------------------------------
    raw = generate_tpch(scale, seed)
    li_cols = dict(zip(("orderkey", "suppkey", "extendedprice", "discount", "shipdate"), li))
    s_cols = dict(zip(("suppkey", "name", "nationkey"), s))
    o_cols = dict(zip(("orderkey", "custkey", "orderdate"), o))
    c_cols = dict(zip(("custkey", "name", "nationkey"), c))
    n1_cols = dict(zip(("nationkey", "name"), n1))
    n2_cols = dict(zip(("nationkey", "name"), n2))
    data = {
        "lineitem": bind_rows(raw.lineitem, li_cols),
        "supplier": bind_rows(raw.supplier, s_cols),
        "orders": bind_rows(raw.orders, o_cols),
        "customer": bind_rows(raw.customer, c_cols),
        "nation1": bind_rows(raw.nation, n1_cols),
        "nation2": bind_rows(raw.nation, n2_cols),
    }

    catalog = Catalog()
    register_source(catalog, "lineitem", data["lineitem"], (li[0], li[1], li[4]))
    register_source(catalog, "supplier", data["supplier"], (s[0], s[2]))
    register_source(catalog, "orders", data["orders"], (o[0], o[1]))
    register_source(catalog, "customer", data["customer"], (c[0], c[2]))
    register_source(catalog, "nation1", data["nation1"], (n1[0], n1[1]))
    register_source(catalog, "nation2", data["nation2"], (n2[0], n2[1]))
    catalog.declare_unique(s[0])
    catalog.declare_unique(o[0])
    catalog.declare_unique(c[0])
    catalog.declare_unique(n1[0])
    catalog.declare_unique(n2[0])
    catalog.declare_reference((li[1],), (s[0],), total=True)
    catalog.declare_reference((li[0],), (o[0],), total=True)
    catalog.declare_reference((o[1],), (c[0],), total=True)
    catalog.declare_reference((c[2],), (n1[0],), total=True)
    catalog.declare_reference((s[2],), (n2[0],), total=True)

    # Hints are deliberately close-but-not-equal to the truth (profiling
    # error), so estimated costs track but do not perfectly predict runtimes.
    hints = {
        "sigma_shipdate": Hints(selectivity=0.06, cpu_per_call=2.0),
        "join_l_s": Hints(cpu_per_call=1.0),
        "join_l_o": Hints(cpu_per_call=1.0),
        "join_o_c": Hints(cpu_per_call=1.0),
        "join_c_n1": Hints(cpu_per_call=1.0),
        "join_s_n2": Hints(cpu_per_call=1.0),
        "sigma_nation_pair": Hints(selectivity=0.005, cpu_per_call=1.5),
        "gamma_revenue": Hints(distinct_keys=16, cpu_per_call=2.0),
    }
    true_costs = {
        "sigma_shipdate": 2.0,
        "join_l_s": 1.2,
        "join_l_o": 1.2,
        "join_o_c": 1.2,
        "join_c_n1": 1.0,
        "join_s_n2": 1.0,
        "sigma_nation_pair": 1.5,
        "gamma_revenue": 2.5,
    }
    params = CostParams(
        degree=32,
        cpu_rate=88.0,
        net_bandwidth=6.5e2,
        disk_bandwidth=1.8e4,
        record_overhead=0.05,
    )
    return Workload(
        name="tpch_q7",
        plan=plan,
        catalog=catalog,
        data=data,
        hints=hints,
        true_costs=true_costs,
        sink_attrs=sink_attrs,
        description="TPC-H Q7 variant (Figure 2a): 6-way join + 2 filters + aggregation",
        params=params,
    )
