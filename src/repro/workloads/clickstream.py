"""The clickstream-processing task (Figure 4a).

Extracts click sessions that led to a buy action and augments them with
user details:

    clicks -> Reduce "filter buy sessions"  (session key; all-or-nothing)
           -> Reduce "condense sessions"    (session key; one record/group)
           -> Match  "filter logged-in"     (session id = login.session id)
           -> Match  "append user info"     (user id = users.user id)

Both Reduce operators are non-relational UDFs.  The login join is
*selective* (not every session is logged in), which is what makes pushing
it below both Reduces profitable — the paper's headline non-relational
optimization.

For Table 1, ``filter_buy_sessions`` deliberately passes its record group
to a helper predicate, so the *static analyzer* must fall back to
conservative properties and loses the reorderings across that operator;
the *manual annotations* describe it precisely.
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.operators import MatchOp, ReduceOp, Sink, Source
from ..core.plan import node
from ..core.properties import EmitBounds, FieldSet, KatBehavior, UdfProperties
from ..core.schema import FieldMap, prefixed
from ..core.udf import binary_udf, reduce_udf
from ..datagen.clickstream import ClickScale, generate_clickstream
from ..optimizer.cardinality import Hints
from ..optimizer.cost import CostParams
from .base import Workload, bind_rows, register_source, resolve_scale

# click fields: session_id(0), ip(1), ts(2), url(3), action(4)


def _session_has_buy(records) -> bool:
    """Helper predicate; receiving the record *group* makes the caller
    unanalyzable (the records escape into an opaque call)."""
    for r in records:
        if r.get_field(4) == "buy":
            return True
    return False


def filter_buy_sessions(records, out):
    """Forward all clicks of sessions containing a buy action, or none."""
    if _session_has_buy(records):
        for r in records:
            out.emit(r.copy())


def condense_session(records, out):
    """Merge a session's clicks into one record: click count (position 5),
    first/last timestamp (6, 7)."""
    count = 0
    first_ts = -1
    last_ts = -1
    for r in records:
        t = r.get_field(2)
        count = count + 1
        if first_ts < 0:
            first_ts = t
        if t < first_ts:
            first_ts = t
        if t > last_ts:
            last_ts = t
    head = records[0]
    o = head.new_record()
    o.set_field(0, head.get_field(0))
    o.set_field(5, count)
    o.set_field(6, first_ts)
    o.set_field(7, last_ts)
    out.emit(o)


def join_login(session, login, out):
    out.emit(session.concat(login))


def join_user_info(session, user, out):
    out.emit(session.concat(user))


def _annotations() -> dict[str, UdfProperties]:
    return {
        "filter_buy_sessions": UdfProperties(
            reads=FieldSet.of((0, 4)),
            branch_reads=FieldSet.of((0, 4)),
            emit_bounds=EmitBounds.unbounded(),
            kat_behavior=KatBehavior.ALL_OR_NONE,
        ),
        "condense_sessions": UdfProperties(
            reads=FieldSet.of((0, 2)),
            writes_modified=FieldSet.of(5, 6, 7),
            writes_projected=FieldSet.all_except(0, 5, 6, 7),
            copies=frozenset({(0, 0, 0)}),
            emit_bounds=EmitBounds.exactly(1),
            kat_behavior=KatBehavior.ONE_PER_GROUP,
        ),
        "filter_logged_in": UdfProperties(emit_bounds=EmitBounds.exactly(1)),
        "append_user_info": UdfProperties(emit_bounds=EmitBounds.exactly(1)),
    }


def build_clickstream(
    scale: ClickScale | None = None, seed: int = 17, scale_factor: float = 1.0
) -> Workload:
    """Construct the clickstream workload; ``scale_factor`` multiplies rows."""
    scale = resolve_scale(scale, ClickScale(), scale_factor)
    click = prefixed("click", "session_id", "ip", "ts", "url", "action")
    login = prefixed("login", "session_id", "user_id")
    user = prefixed("user", "user_id", "name", "country", "signup_day")

    clicks_src = Source("clicks", click)
    logins_src = Source("logins", login)
    users_src = Source("users", user)
    ann = _annotations()

    r_buy = ReduceOp(
        "filter_buy_sessions",
        reduce_udf(filter_buy_sessions, ann["filter_buy_sessions"]),
        FieldMap(click),
        key_positions=(0,),
    )
    r_condense = ReduceOp(
        "condense_sessions",
        reduce_udf(condense_session, ann["condense_sessions"]),
        FieldMap(click),
        key_positions=(0,),
    )
    click_count = r_condense.new_attr_factory.attr_for(5)
    first_ts = r_condense.new_attr_factory.attr_for(6)
    last_ts = r_condense.new_attr_factory.attr_for(7)

    condensed = (click[0], click_count, first_ts, last_ts)
    m_login = MatchOp(
        "filter_logged_in",
        binary_udf(join_login, ann["filter_logged_in"]),
        FieldMap(condensed),
        FieldMap(login),
        (0,),
        (0,),
    )
    with_login = condensed + login
    m_user = MatchOp(
        "append_user_info",
        binary_udf(join_user_info, ann["append_user_info"]),
        FieldMap(with_login),
        FieldMap(user),
        (with_login.index(login[1]),),
        (0,),
    )

    flow = node(r_buy, node(clicks_src))
    flow = node(r_condense, flow)
    flow = node(m_login, flow, node(logins_src))
    flow = node(m_user, flow, node(users_src))
    sink_attrs = (click[0], click_count, first_ts, last_ts, user[1], user[2])
    plan = node(Sink("sessions_out", sink_attrs), flow)

    raw = generate_clickstream(scale, seed)
    click_cols = dict(zip(("session_id", "ip", "ts", "url", "action"), click))
    login_cols = dict(zip(("session_id", "user_id"), login))
    user_cols = dict(zip(("user_id", "name", "country", "signup_day"), user))
    data = {
        "clicks": bind_rows(raw.clicks, click_cols),
        "logins": bind_rows(raw.logins, login_cols),
        "users": bind_rows(raw.users, user_cols),
    }

    catalog = Catalog()
    register_source(catalog, "clicks", data["clicks"], (click[0],))
    register_source(catalog, "logins", data["logins"], (login[0], login[1]))
    register_source(catalog, "users", data["users"], (user[0],))
    catalog.declare_unique(login[0])
    catalog.declare_unique(user[0])
    # Both references are deliberately non-total: not every session is
    # logged in, not every user has an info record.
    catalog.declare_reference((click[0],), (login[0],), total=False)
    catalog.declare_reference((login[1],), (user[0],), total=False)

    n_sessions = len({r[click[0]] for r in data["clicks"]})
    hints = {
        "filter_buy_sessions": Hints(
            selectivity=2.5, cpu_per_call=3.0, distinct_keys=n_sessions
        ),
        "condense_sessions": Hints(
            selectivity=1.0, cpu_per_call=4.0, distinct_keys=int(n_sessions * 0.4)
        ),
        "filter_logged_in": Hints(selectivity=1.0, cpu_per_call=1.0),
        "append_user_info": Hints(selectivity=1.0, cpu_per_call=1.0),
    }
    true_costs = {
        "filter_buy_sessions": 3.0,
        "condense_sessions": 4.5,
        "filter_logged_in": 1.0,
        "append_user_info": 1.0,
    }
    params = CostParams(
        degree=32,
        cpu_rate=2.0,
        net_bandwidth=9e2,
        disk_bandwidth=2e4,
        record_overhead=0.08,
    )
    return Workload(
        name="clickstream",
        plan=plan,
        catalog=catalog,
        data=data,
        hints=hints,
        true_costs=true_costs,
        sink_attrs=sink_attrs,
        description="Clickstream session extraction (Figure 4a): 2 non-relational Reduces + 2 selective Matches",
        params=params,
    )
