"""The reordering conditions: ROC (Definition 4) and KGP (Definition 5).

ROC — *read-only conflict* — demands that neither UDF touches attributes
the other updates:  R1 with W2, W1 with R2, and W1 with W2 must all be
disjoint.  Write sets include modified, projected, and newly created
attributes (Definition 2).

KGP — *key group preservation* — demands that an operator either forwards
every record exactly once, or makes its emit decision only from attributes
inside the key ``K`` whose groups must survive.  For key-at-a-time UDFs the
extended definition applies: the UDF must forward whole groups (or drop
them) and its own key must refine ``K``.
"""

from __future__ import annotations

from ..core.operators import BoundProps, MapOp, MatchOp, ReduceOp, UdfOperator
from ..core.plan import Node
from ..core.properties import KatBehavior
from ..core.schema import Attribute
from .context import PlanContext


def roc(p1: BoundProps, p2: BoundProps) -> bool:
    """Definition 4: the read-only conflict condition."""
    if p1.reads & p2.writes:
        return False
    if p1.writes & p2.reads:
        return False
    if p1.writes & p2.writes:
        return False
    return True


def kgp_map(props: BoundProps, key: frozenset[Attribute]) -> bool:
    """Definition 5 for a record-at-a-time UDF against key set ``K``.

    Either every record yields exactly one output, or the UDF is a filter
    (at most one output) whose decision depends only on attributes in K.
    """
    bounds = props.emit_bounds
    if bounds.exactly_one:
        return True
    if bounds.filter_like and props.branch_reads <= key:
        return True
    return False


def kgp_kat(op: ReduceOp, props: BoundProps, key: frozenset[Attribute]) -> bool:
    """Extended KGP for a key-at-a-time UDF (Definition 5's extension).

    The UDF must forward or drop whole groups (ALL_OR_NONE), and its own
    key must refine ``K`` so that every K-group lies inside a single group
    of the UDF — then whole K-groups are kept or dropped together.
    """
    if props.kat_behavior is not KatBehavior.ALL_OR_NONE:
        return False
    return op.key_attrs() <= key


def kgp_match_side(
    ctx: PlanContext,
    op: MatchOp,
    side: int,
    other_node: Node,
    key: frozenset[Attribute],
) -> bool:
    """KGP of a Match operator seen as a per-record mapper of one side.

    Per record of ``side`` the Match emits (fan-out x per-pair) records.
    The decision attributes are the side's join key (which other-side rows
    match is a function of the key only) plus the UDF's own branch reads
    on this side; other-side branch reads are harmless when the other
    side's key is unique, because the key value then determines the
    matched row entirely.
    """
    bounds = ctx.match_record_bounds(op, side, other_node)
    if bounds.hi is None or bounds.hi > 1:
        return False
    other_attrs = ctx.out_attrs(other_node)
    decision = frozenset(op.side_key_attrs(side))
    decision |= ctx.props(op).branch_reads - other_attrs
    other_branch = ctx.props(op).branch_reads & other_attrs
    if other_branch and not ctx.key_unique_in(op, 1 - side, other_node):
        return False
    if bounds.exactly_one:
        return True
    return decision <= key


def accessed(props: BoundProps) -> frozenset[Attribute]:
    return props.accessed


def op_props(ctx: PlanContext, op: UdfOperator) -> BoundProps:
    return ctx.props(op)


def is_filter_map(ctx: PlanContext, op: MapOp) -> bool:
    """Convenience used by examples/benchmarks: a Map that only drops rows."""
    props = ctx.props(op)
    return props.emit_bounds.filter_like and not props.writes
