"""The incremental Memo: a first-class, invalidatable Volcano store.

PR 1 buried the Volcano memo — the interned-sub-plan -> pruned-physical-
options table — inside :class:`~repro.optimizer.physical.PhysicalOptimizer`,
which made it impossible to selectively invalidate, shard across workers,
or carry across feedback rounds.  This module extracts it into a
standalone subsystem with three responsibilities:

**Ownership.**  A :class:`Memo` owns every piece of per-plan-space derived
state the optimizer computes: the physical options table, the cardinality
estimator's per-node estimate cache and per-attribute-set width cache
(bound into the estimator via :meth:`Memo.bind`, so invalidation reaches
them), and the enumerated closure of each optimized flow (plan legality is
hint-independent, so the closure never needs invalidating).

**Dirty-spine invalidation.**  Alongside the table the memo maintains a
reverse dependency index: operator name -> the memo entries whose logical
subtree contains that operator.  When feedback (or a user) changes the
hints, observations, or source statistics of some operators,
:meth:`Memo.invalidate` evicts exactly the entries on the spine *above*
the changed operators — both physical options and cached estimates —
so the next :meth:`Optimizer.optimize(memo=...)
<repro.optimizer.optimizer.Optimizer.optimize>` call re-costs the dirty
spine and reuses everything else verbatim.  Because an estimate (and
hence a cost) depends only on the operators inside its node's subtree —
their hints, per-signature observations, and source statistics — an entry
containing no changed operator is bit-identical under the new estimator,
which is what makes the reuse exact (pinned by the invalidation parity
tests).

**Worker merge.**  Parallel costing (:mod:`repro.optimizer.parallel`)
costs shards of the alternative list in forked worker processes, each
against its own fork-inherited copy of the shared memo; the new entries
each worker produced are merged back through :meth:`Memo.adopt` /
:meth:`Memo.merge` (first writer wins — entries are deterministic per
node, so collisions are structurally identical).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..core.plan import Node
from .cardinality import CardinalityEstimator, EstStats

if TYPE_CHECKING:  # pragma: no cover - import cycle (physical imports memo)
    from .physical import BoundEntry, PhysNode


class _RegisteringDict(dict):
    """Node-keyed cache that registers every new key in the memo's index.

    The cardinality estimator writes ``cache[node] = value`` on its own;
    routing those writes through the memo's dependency index keeps
    :meth:`Memo.invalidate` authoritative over the cache without the
    writer knowing the memo exists.
    """

    __slots__ = ("_memo",)

    def __init__(self, memo: "Memo") -> None:
        super().__init__()
        self._memo = memo

    def __setitem__(self, key: Node, value) -> None:
        self._memo._register(key)
        super().__setitem__(key, value)


class Memo:
    """Invalidatable store of the Volcano search's derived state.

    ``op_names`` maps a plan node to the frozenset of operator names in
    its subtree; pass a context-level memoized one
    (:meth:`~repro.optimizer.context.PlanContext.op_names`) to share the
    name cache across memos and feedback rounds — a standalone memo
    falls back to an internal memoized walk.
    """

    def __init__(
        self,
        op_names: Callable[[Node], frozenset[str]] | None = None,
    ) -> None:
        #: Interned logical sub-plan -> pruned physical options.
        self.table: dict[Node, tuple["PhysNode", ...]] = {}
        #: Interned logical sub-plan -> cached cardinality estimate.
        self.est_cache: dict[Node, EstStats] = _RegisteringDict(self)
        #: Output attribute set -> record width (catalog-derived, hence
        #: hint-independent: never invalidated).
        self.width_cache: dict[frozenset, float] = {}
        #: Optimized flow -> its enumerated closure.  Swap legality does
        #: not depend on hints, so re-optimization reuses the closure.
        self.closures: dict[Node, tuple[Node, ...]] = {}
        #: Interned node -> its legal single-swap neighbors.  These are the
        #: partial-closure entries of the guided search: legality is
        #: hint-independent, so they survive :meth:`invalidate` and make
        #: re-search after a statistics change expand for free.
        self.neighbors: dict[Node, tuple[Node, ...]] = {}
        #: (flow, limit, seed) -> sampled alternative subset, drawn during
        #: expansion (reservoir).  Sampling is hint-independent, so cached
        #: samples survive :meth:`invalidate` and keep ``reoptimize``
        #: deterministic under ``max_alternatives``.
        self.samples: dict[tuple[Node, int, int], tuple[Node, ...]] = {}
        #: Interned logical sub-plan -> admissible lower-bound summary
        #: (:class:`~repro.optimizer.physical.BoundEntry`).  A bound
        #: depends on the subtree's statistics and hints exactly like an
        #: estimate does, so :meth:`invalidate` evicts it along the same
        #: dirty spine.  Writers (:class:`~repro.optimizer.physical.
        #: PlanLowerBound`) register keys lazily through ``_pending`` —
        #: the adopt() pattern — keeping the per-entry hot path free of
        #: the dependency-index walk.
        self.bounds: dict[Node, "BoundEntry"] = {}
        self._op_names = op_names if op_names is not None else self._names_of
        self._names: dict[Node, frozenset[str]] = {}
        # Reverse dependency index: operator name -> every node ever
        # registered whose subtree contains that operator.  "Contains" is
        # a stable property of an interned node, so eviction never needs
        # to unregister: the index may name evicted nodes (their pops
        # no-op on the next invalidation) and re-stored nodes re-register
        # with a single set lookup.
        self._registered: set[Node] = set()
        self._by_name: dict[str, set[Node]] = {}
        # Entries adopted from workers register lazily: the index is only
        # consulted by invalidate()/dependents_of(), so bulk merges defer
        # the per-name bookkeeping out of the costing critical path.
        self._pending: list[Node] = []

    # -- table access ------------------------------------------------------

    def options(self, node: Node) -> tuple["PhysNode", ...] | None:
        return self.table.get(node)

    def store(self, node: Node, options: tuple["PhysNode", ...]) -> None:
        self._register(node)
        self.table[node] = options

    def __len__(self) -> int:
        return len(self.table)

    def size(self) -> int:
        """Total live derived-state entries (options, estimates, bounds).

        The planning server's memory accounting: closures/neighbors/
        samples are shared, hint-independent structure and comparatively
        small, so the three invalidatable tables are the figure that
        tracks a tenant's warm-state footprint.
        """
        return len(self.table) + len(self.est_cache) + len(self.bounds)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.table)

    def __contains__(self, node: object) -> bool:
        return node in self.table

    # -- estimator binding -------------------------------------------------

    def bind(self, estimator: CardinalityEstimator) -> None:
        """Make ``estimator`` read and write this memo's caches.

        Estimates become memo-scoped: they survive across optimize calls
        and feedback rounds exactly as long as the options that were
        costed from them, and :meth:`invalidate` evicts both together.
        """
        estimator.use_caches(self.est_cache, self.width_cache)

    # -- dependency index --------------------------------------------------

    def _register(self, node: Node) -> None:
        if node in self._registered:
            return
        self._registered.add(node)
        for name in self._op_names(node):
            self._by_name.setdefault(name, set()).add(node)

    def _names_of(self, node: Node) -> frozenset[str]:
        """Fallback subtree-name derivation (memoized per interned node)."""
        got = self._names.get(node)
        if got is None:
            if node.children:
                got = frozenset({node.op.name}).union(
                    *(self._names_of(c) for c in node.children)
                )
            else:
                got = frozenset({node.op.name})
            self._names[node] = got
        return got

    def _drain_pending(self) -> None:
        if self._pending:
            for node in self._pending:
                self._register(node)
            self._pending.clear()

    def dependents_of(self, op_name: str) -> frozenset[Node]:
        """Every registered node whose subtree contains ``op_name``.

        Registration is permanent (containment is a stable property of an
        interned node), so the result may include currently-evicted nodes.
        """
        self._drain_pending()
        return frozenset(self._by_name.get(op_name, ()))

    # -- invalidation ------------------------------------------------------

    def invalidate(self, changed_ops: Iterable[str]) -> int:
        """Evict every entry whose subtree contains a changed operator.

        This is the dirty-spine walk: a changed operator invalidates its
        own entry and every entry *above* it (any node whose subtree
        contains it), while sibling subtrees — typically the overwhelming
        majority of a plan space's distinct sub-plans — stay cached.
        The physical options table, the estimate cache, and the guided
        search's bound cache are evicted; widths, closures, neighbors and
        samples are hint-independent and survive.  Returns the number of
        entries evicted.
        """
        self._drain_pending()
        victims: set[Node] = set()
        for name in changed_ops:
            nodes = self._by_name.get(name)
            if nodes:
                victims |= nodes
        evicted = 0
        table_pop = self.table.pop
        est_pop = self.est_cache.pop  # plain dict.pop: eviction, not a write
        bound_pop = self.bounds.pop
        for node in victims:
            hit = table_pop(node, None) is not None
            hit = (est_pop(node, None) is not None) or hit
            hit = (bound_pop(node, None) is not None) or hit
            if hit:
                evicted += 1
        return evicted

    # -- worker merge ------------------------------------------------------

    def adopt(
        self,
        table_items: Iterable[tuple[Node, tuple["PhysNode", ...]]],
        est_items: Iterable[tuple[Node, EstStats]] = (),
        width_items: Iterable[tuple[frozenset, float]] = (),
    ) -> int:
        """Merge worker-produced entries; existing entries win.

        Per-node entries are deterministic (computed bottom-up from the
        child entries, independent of which alternative triggered them),
        so when two workers both produced an entry the copies are
        structurally identical and keeping the first is exact.  Returns
        the number of options-table entries adopted.
        """
        adopted = 0
        table = self.table
        pending = self._pending
        for node, options in table_items:
            if node not in table:
                table[node] = options
                pending.append(node)
                adopted += 1
        est_cache = self.est_cache
        for node, est in est_items:
            if node not in est_cache:
                # Plain dict write: registration is deferred to _pending.
                dict.__setitem__(est_cache, node, est)
                pending.append(node)
        for key, width in width_items:
            self.width_cache.setdefault(key, width)
        return adopted

    def merge(self, other: "Memo") -> int:
        """Merge another memo's entries into this one (existing win)."""
        count = self.adopt(
            other.table.items(), other.est_cache.items(), other.width_cache.items()
        )
        for flow, closure in other.closures.items():
            self.closures.setdefault(flow, closure)
        for node, neighbors in other.neighbors.items():
            self.neighbors.setdefault(node, neighbors)
        for key, sample in other.samples.items():
            self.samples.setdefault(key, sample)
        return count
