"""Plan-level derivation context: schemas, uniqueness, totality.

The reordering conditions of Section 4 need more than per-operator
read/write sets: they need the attribute sets of sub-flows (for the
side-disjointness conditions of Theorems 3/4 and Lemma 1), propagated
unique keys (invariant grouping needs the dimension side's join key to be
a key), and totality of references (for key-group preservation of joins).
This module computes and caches those per plan node.
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.errors import PlanError
from ..core.operators import (
    BoundProps,
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    MaterializedSource,
    Operator,
    ReduceOp,
    Sink,
    Source,
    UdfOperator,
)
from ..core.plan import Node
from ..core.properties import EmitBounds
from ..core.schema import Attribute
from ..core.udf import AnnotationMode


class PlanContext:
    """Caches bound properties and derived plan facts for one annotation
    mode over one catalog."""

    def __init__(self, catalog: Catalog, mode: AnnotationMode = AnnotationMode.SCA) -> None:
        self.catalog = catalog
        self.mode = mode
        self._attrs_cache: dict[Node, frozenset[Attribute]] = {}
        self._unique_cache: dict[Node, frozenset[frozenset[Attribute]]] = {}
        self._preserve_cache: dict[Node, bool] = {}
        self._props_cache: dict[Operator, BoundProps] = {}
        self._op_names_cache: dict[Node, frozenset[str]] = {}
        # Memoized outcomes of the pairwise swap-legality checks; keys mix
        # operators and interned plan nodes, both O(1) to hash.
        self.rule_cache: dict[tuple, bool] = {}

    # -- operator properties -----------------------------------------------------

    def props(self, op: Operator) -> BoundProps:
        cached = self._props_cache.get(op)
        if cached is not None:
            return cached
        if not isinstance(op, UdfOperator):
            raise PlanError(f"operator {op.name!r} has no UDF properties")
        result = op.bound_props(self.mode)
        self._props_cache[op] = result
        return result

    # -- subtree operator names -----------------------------------------------

    def op_names(self, node: Node) -> frozenset[str]:
        """Names of every operator in ``node``'s subtree (memoized).

        The :class:`~repro.optimizer.memo.Memo` keys its reverse
        dependency index on these; sharing one cache per context keeps
        the derivation O(1) amortized across memos and feedback rounds.
        """
        cached = self._op_names_cache.get(node)
        if cached is None:
            if node.children:
                cached = frozenset({node.op.name}).union(
                    *(self.op_names(c) for c in node.children)
                )
            else:
                cached = frozenset({node.op.name})
            self._op_names_cache[node] = cached
        return cached

    # -- output attribute sets ------------------------------------------------

    def out_attrs(self, node: Node) -> frozenset[Attribute]:
        cached = self._attrs_cache.get(node)
        if cached is not None:
            return cached
        op = node.op
        if isinstance(op, Source):
            result = op.output_attrs()
        elif isinstance(op, Sink):
            result = self.out_attrs(node.only_child)
        elif isinstance(op, UdfOperator):
            result = op.output_attrs_from(
                self.mode, *(self.out_attrs(c) for c in node.children)
            )
        else:  # pragma: no cover - defensive
            raise PlanError(f"cannot derive attributes of {op!r}")
        self._attrs_cache[node] = result
        return result

    # -- unique key propagation --------------------------------------------------

    def unique_keys(self, node: Node) -> frozenset[frozenset[Attribute]]:
        cached = self._unique_cache.get(node)
        if cached is not None:
            return cached
        result = self._derive_unique(node)
        self._unique_cache[node] = result
        return result

    def _derive_unique(self, node: Node) -> frozenset[frozenset[Attribute]]:
        op = node.op
        if isinstance(op, MaterializedSource):
            # An executed stage boundary: catalog-declared keys describe
            # base sources, not intermediates — use the uniqueness that was
            # derived *through* the executed subtree instead.
            return frozenset(op.unique_keys)
        if isinstance(op, Source):
            return frozenset(self.catalog.source_unique_keys(op.output_attrs()))
        if isinstance(op, Sink):
            return self.unique_keys(node.only_child)
        if isinstance(op, MapOp):
            props = self.props(op)
            if props.emit_bounds.hi is None or props.emit_bounds.hi > 1:
                return frozenset()
            child_keys = self.unique_keys(node.only_child)
            return frozenset(
                k for k in child_keys if not (k & props.writes)
            )
        if isinstance(op, ReduceOp):
            props = self.props(op)
            if props.emit_bounds.hi == 1 and not (op.key_attrs() & props.writes):
                return frozenset({op.key_attrs()})
            return frozenset()
        if isinstance(op, MatchOp):
            props = self.props(op)
            if props.emit_bounds.hi is None or props.emit_bounds.hi > 1:
                return frozenset()
            left, right = node.children
            out: set[frozenset[Attribute]] = set()
            if self.side_key_unique(node, 1):
                # each left row appears at most once
                for k in self.unique_keys(left):
                    if not (k & props.writes):
                        out.add(k)
            if self.side_key_unique(node, 0):
                for k in self.unique_keys(right):
                    if not (k & props.writes):
                        out.add(k)
            return frozenset(out)
        if isinstance(op, CoGroupOp):
            props = self.props(op)
            if props.emit_bounds.hi == 1:
                key = frozenset(op.left_key_attrs()) | frozenset(op.right_key_attrs())
                if not (key & props.writes):
                    return frozenset({key})
            return frozenset()
        if isinstance(op, CrossOp):
            return frozenset()
        raise PlanError(f"cannot derive unique keys of {op!r}")  # pragma: no cover

    def is_unique(self, node: Node, attrs: frozenset[Attribute]) -> bool:
        """True if ``attrs`` contains a unique key of the sub-flow output."""
        return any(key <= attrs for key in self.unique_keys(node))

    def side_key_unique(self, match_node: Node, side: int) -> bool:
        op = match_node.op
        if not isinstance(op, (MatchOp, CoGroupOp)):
            raise PlanError("side_key_unique needs a keyed binary operator")
        return self.key_unique_in(op, side, match_node.children[side])

    def key_unique_in(self, op, side: int, side_node: Node) -> bool:
        """Is the ``side`` join key of ``op`` unique in ``side_node``'s output?

        Takes the sub-flow explicitly so swap rules can ask the question for
        a side subtree that is about to change (push-down vs. pull-up use
        the same condition)."""
        key = frozenset(op.side_key_attrs(side))
        return self.is_unique(side_node, key)

    # -- row preservation (totality propagation) -----------------------------------

    def row_preserving(self, node: Node) -> bool:
        """True if every logical source row survives to this point with its
        key attributes unmodified — the conservative requirement for using
        a *total* referential constraint."""
        cached = self._preserve_cache.get(node)
        if cached is not None:
            return cached
        op = node.op
        if isinstance(op, MaterializedSource):
            # Derived through the executed subtree, not assumed.
            result = op.preserves_rows
        elif isinstance(op, Source):
            result = True
        elif isinstance(op, Sink):
            result = self.row_preserving(node.only_child)
        elif isinstance(op, (MapOp, ReduceOp)):
            props = self.props(op)
            result = props.emit_bounds.lo >= 1 and self.row_preserving(
                node.only_child
            )
        else:
            result = False  # joins may drop rows; stay conservative
        self._preserve_cache[node] = result
        return result

    # -- join fan-out bounds --------------------------------------------------

    def match_record_bounds(
        self, op, side: int, other_node: Node
    ) -> EmitBounds:
        """Per-record emission bounds for one side of a Match: how many
        output records one record of ``side`` may produce (join fan-out
        times the UDF's per-pair bounds).

        ``other_node`` is the sub-flow feeding the *other* input; it is
        passed explicitly because swap rules evaluate the condition for
        plans in which the ``side`` subtree is about to change.
        """
        if not isinstance(op, MatchOp):
            raise PlanError("match_record_bounds needs a Match operator")
        other = 1 - side
        hi_matches: int | None = (
            1 if self.key_unique_in(op, other, other_node) else None
        )
        lo_matches = 0
        ref = self.catalog.reference_between(
            frozenset(op.side_key_attrs(side)), frozenset(op.side_key_attrs(other))
        )
        if (
            ref is not None
            and ref.total
            and self.row_preserving(other_node)
            and not self._key_modified_below(frozenset(op.side_key_attrs(other)), other_node)
        ):
            lo_matches = 1
        fanout = EmitBounds(lo_matches, hi_matches)
        return fanout.times(self.props(op).emit_bounds)

    def _key_modified_below(
        self, key: frozenset[Attribute], node: Node
    ) -> bool:
        """Do any operators in the sub-flow modify the given key attributes?"""
        if isinstance(node.op, MaterializedSource):
            # The executed subtree's write set travels with the boundary.
            return bool(node.op.written_attrs & key)
        if isinstance(node.op, UdfOperator):
            if self.props(node.op).writes & key:
                return True
        return any(self._key_modified_below(key, c) for c in node.children)
