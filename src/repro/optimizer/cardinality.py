"""Cardinality and result-size estimation.

The Stratosphere optimizer relies on hints such as "Average Number of
Records Emitted per UDF Call", "CPU Cost per UDF Call" and "Number of
Distinct Values per Key-Set" (Section 7.1), provided by the user, a
language compiler, or profiling.  :class:`Hints` carries exactly those
three quantities; the estimator propagates row counts and record widths
bottom-up through a plan tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import OptimizationError
from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    MaterializedSource,
    ReduceOp,
    Sink,
    Source,
    UdfOperator,
)
from ..core.plan import Node
from ..core.properties import EmitBounds
from ..core.schema import Attribute
from .context import PlanContext


@dataclass(frozen=True, slots=True)
class Hints:
    """Per-operator optimizer hints (Section 7.1)."""

    selectivity: float | None = None  # avg records emitted per UDF call
    cpu_per_call: float = 1.0  # cost units per UDF call
    distinct_keys: int | None = None  # distinct values of the key set


@dataclass(frozen=True, slots=True)
class EstStats:
    """Estimated output of one plan node."""

    rows: float
    width: float  # average record bytes
    calls: float  # UDF invocations performed by this node

    @property
    def bytes(self) -> float:
        return self.rows * self.width


def _default_selectivity(bounds: EmitBounds) -> float:
    if bounds.exactly_one:
        return 1.0
    if bounds.hi is not None and bounds.hi <= 1:
        return 0.5
    return 1.0


class CardinalityEstimator:
    """Bottom-up row/width estimation with hint support."""

    def __init__(
        self,
        ctx: PlanContext,
        hints: dict[str, Hints] | None = None,
    ) -> None:
        self.ctx = ctx
        self.catalog = ctx.catalog
        self.hints = hints or {}
        # Keyed on interned nodes: an identity lookup, shared across every
        # alternative that contains the same sub-plan.  A Memo can swap
        # these for its own dicts (:meth:`use_caches`) to make estimates
        # memo-scoped, so dirty-spine invalidation reaches them.
        self._cache: dict[Node, EstStats] = {}
        self._width_cache: dict[frozenset, float] = {}
        #: Number of estimates actually computed (estimate-cache misses)
        #: by this instance — the guided-search benchmarks' estimation-work
        #: metric.  Cache hits (memo-carried estimates included) are free
        #: and not counted.
        self.estimate_calls: int = 0

    def use_caches(
        self,
        cache: dict[Node, EstStats],
        width_cache: dict[frozenset, float],
    ) -> None:
        """Adopt externally owned caches (the Memo's).

        Entries already present are trusted verbatim: an estimate depends
        only on the operators inside its node's subtree, so a memo whose
        stale entries were invalidated hands back exactly the values this
        estimator would recompute (pinned by the invalidation parity
        tests).
        """
        self._cache = cache
        self._width_cache = width_cache

    #: Shared default returned for operators without registered hints —
    #: the paper-default behavior (selectivity from emit bounds, unit CPU
    #: cost, distinct keys from catalog statistics).
    DEFAULT_HINTS = Hints()

    def hints_for(self, op_name: str) -> Hints:
        """Hints for one operator; unknown names get :data:`DEFAULT_HINTS`.

        This lookup never raises: an operator the user did not hint falls
        back to the paper defaults rather than leaking a ``KeyError``.
        """
        return self.hints.get(op_name, self.DEFAULT_HINTS)

    def source_rows(self, op: Source) -> float:
        """Row count of a source scan; the feedback estimator overrides
        this with observed cardinalities."""
        if isinstance(op, MaterializedSource):
            # An executed stage boundary has an exact, counted cardinality.
            return float(op.row_count)
        return float(self.catalog.stats(op.name).row_count)

    def _width(self, node: Node) -> float:
        attrs = self.ctx.out_attrs(node)
        width = self._width_cache.get(attrs)
        if width is None:
            width = sum(self.catalog.attr_width(a) for a in attrs) + 2.0 * len(attrs)
            self._width_cache[attrs] = width
        return width

    def _distinct(self, attrs: tuple[Attribute, ...], upper: float) -> float:
        product = 1.0
        known = False
        for a in attrs:
            d = self.catalog.distinct_of(a)
            if d is not None:
                known = True
                product *= d
        if not known:
            product = max(1.0, math.sqrt(upper))
        return min(product, max(upper, 1.0))

    def estimate(self, node: Node) -> EstStats:
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        self.estimate_calls += 1
        result = self._estimate(node)
        self._cache[node] = result
        return result

    def _estimate(self, node: Node) -> EstStats:
        return self._model_stats(node, self.estimate)

    def bound_stats_via(self, node: Node, child_stats) -> EstStats:
        """Per-node stats for lower-bound costing.

        ``child_stats(child_node)`` supplies the (already bounded) stats of
        each child.  The default applies the exact estimation formulas, so
        the bound's cardinalities equal the true estimates — admissible
        because the physical relaxation alone under-counts cost.
        Subclasses that pin observed statistics (the feedback estimator)
        must override this so the bound sees the same pinned values the
        estimate will, keeping the bound a true lower bound under learned
        stats.
        """
        return self._model_stats(node, child_stats)

    def _model_stats(self, node: Node, stats_of) -> EstStats:
        """The per-operator estimation formulas (Section 7.1).

        Shared by :meth:`_estimate` (``stats_of = self.estimate``, cached
        and counted) and :meth:`bound_stats_via` (``stats_of`` reads the
        bound table) so the two can never drift apart.
        """
        op = node.op
        if isinstance(op, Source):
            rows = self.source_rows(op)
            return EstStats(rows, self._width(node), 0.0)
        if isinstance(op, Sink):
            child = stats_of(node.only_child)
            return EstStats(child.rows, child.width, 0.0)
        if not isinstance(op, UdfOperator):  # pragma: no cover - defensive
            raise OptimizationError(f"cannot estimate {op!r}")

        hint = self.hints_for(op.name)
        props = self.ctx.props(op)
        sel = (
            hint.selectivity
            if hint.selectivity is not None
            else _default_selectivity(props.emit_bounds)
        )

        if isinstance(op, MapOp):
            child = stats_of(node.only_child)
            calls = child.rows
            return EstStats(calls * sel, self._width(node), calls)
        if isinstance(op, ReduceOp):
            child = stats_of(node.only_child)
            groups = (
                float(hint.distinct_keys)
                if hint.distinct_keys is not None
                else self._distinct(op.key_attr_tuple(), child.rows)
            )
            groups = min(groups, max(child.rows, 1.0))
            # Per-group emission honors the UDF's emit bounds: exactly-one
            # aggregations emit one record per group, filter-like reduces
            # (hi <= 1, lo = 0) may drop groups, anything else defaults to
            # one record per group.
            per_group = (
                hint.selectivity
                if hint.selectivity is not None
                else _default_selectivity(props.emit_bounds)
            )
            return EstStats(groups * per_group, self._width(node), groups)
        if isinstance(op, MatchOp):
            left = stats_of(node.children[0])
            right = stats_of(node.children[1])
            if hint.distinct_keys is not None:
                denom = float(hint.distinct_keys)
            else:
                d_left = self._distinct(op.left_key_attrs(), left.rows)
                d_right = self._distinct(op.right_key_attrs(), right.rows)
                denom = max(d_left, d_right, 1.0)
            pairs = left.rows * right.rows / denom
            return EstStats(pairs * sel, self._width(node), pairs)
        if isinstance(op, CrossOp):
            left = stats_of(node.children[0])
            right = stats_of(node.children[1])
            pairs = left.rows * right.rows
            return EstStats(pairs * sel, self._width(node), pairs)
        if isinstance(op, CoGroupOp):
            left = stats_of(node.children[0])
            right = stats_of(node.children[1])
            if hint.distinct_keys is not None:
                keys = float(hint.distinct_keys)
            else:
                keys = max(
                    self._distinct(op.left_key_attrs(), left.rows),
                    self._distinct(op.right_key_attrs(), right.rows),
                )
            return EstStats(keys * sel, self._width(node), keys)
        raise OptimizationError(f"cannot estimate {op!r}")  # pragma: no cover
