"""The data flow optimizer: reordering conditions, enumeration, costing."""

from .cardinality import CardinalityEstimator, EstStats, Hints
from .conditions import kgp_kat, kgp_map, kgp_match_side, roc
from .context import PlanContext
from .cost import CostParams
from .enumeration import (
    count_alternatives,
    enum_alternatives_chain,
    enumerate_flows,
)
from .optimizer import OptimizationResult, Optimizer, RankedPlan, optimize
from .physical import (
    LocalStrategy,
    PhysNode,
    Ship,
    ShipKind,
    optimize_physical,
)
from .rules import (
    can_exchange_unary_binary,
    can_rotate,
    can_swap_unary_unary,
    neighbors,
)

__all__ = [
    "CardinalityEstimator",
    "CostParams",
    "EstStats",
    "Hints",
    "LocalStrategy",
    "OptimizationResult",
    "Optimizer",
    "PhysNode",
    "PlanContext",
    "RankedPlan",
    "Ship",
    "ShipKind",
    "can_exchange_unary_binary",
    "can_rotate",
    "can_swap_unary_unary",
    "count_alternatives",
    "enum_alternatives_chain",
    "enumerate_flows",
    "kgp_kat",
    "kgp_map",
    "kgp_match_side",
    "neighbors",
    "optimize",
    "optimize_physical",
    "roc",
]
