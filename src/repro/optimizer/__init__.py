"""The data flow optimizer: reordering conditions, enumeration, costing.

Memoization architecture
------------------------

The optimizer is built around *hash-consed* plans
(:class:`repro.core.plan.Node` interns structurally-equal nodes into the
same object), which turns every plan-keyed table into an O(1) identity
lookup.  Three layers exploit this:

* **Enumeration** (:mod:`.enumeration`): the BFS closure keys its
  seen-set on interned nodes, and per-subtree neighbor lists are
  memoized — a subtree shared by hundreds of alternatives has its swap
  legality checked once.  Rule outcomes themselves are cached in
  :class:`.context.PlanContext` (``rule_cache``).
* **Cardinality** (:mod:`.cardinality`): estimates are cached per
  interned node and record widths per output-attribute set, so the
  estimator does no repeated work across alternatives.
* **Physical optimization** (:mod:`.physical`): a
  :class:`.physical.PhysicalOptimizer` costs against a first-class
  Volcano :class:`.memo.Memo` (interned sub-plan -> pruned physical
  options, plus memo-scoped estimator caches and the enumerated
  closure).  :class:`.optimizer.Optimizer` constructs one per call and
  reuses it across every enumerated alternative, so shared subtrees are
  physically optimized exactly once; binary operators additionally prune
  dominated child combinations with an exact branch-and-bound cut.
  ``Optimizer(reuse_memo=False)`` re-plans each alternative from
  scratch; results are identical by construction (see
  ``tests/optimizer/test_memoization.py``).
* **Incremental re-costing** (:mod:`.memo`): an explicit memo passed to
  ``Optimizer.optimize(memo=...)`` survives across calls and feedback
  rounds; ``Memo.invalidate(changed_ops)`` evicts only the dirty spine
  above operators whose hints or learned statistics changed, and
  ``Optimizer.reoptimize`` re-ranks bit-identically to a full rebuild.
* **Parallel costing** (:mod:`.parallel`): ``Optimizer(jobs=N)`` shards
  the alternative list across forked workers with per-worker memos that
  are merged back into the shared one.
"""

from .cardinality import CardinalityEstimator, EstStats, Hints
from .conditions import kgp_kat, kgp_map, kgp_match_side, roc
from .context import PlanContext
from .cost import CostParams
from .enumeration import (
    count_alternatives,
    enum_alternatives_chain,
    enumerate_flows,
    iter_flows,
)
from .memo import Memo
from .optimizer import (
    OptimizationResult,
    Optimizer,
    RankedPlan,
    SearchStats,
    optimize,
)
from .physical import (
    BoundEntry,
    LocalStrategy,
    PhysicalOptimizer,
    PhysNode,
    PlanLowerBound,
    Ship,
    ShipKind,
    optimize_physical,
)
from .rules import (
    can_exchange_unary_binary,
    can_rotate,
    can_swap_unary_unary,
    neighbors,
)

__all__ = [
    "BoundEntry",
    "CardinalityEstimator",
    "CostParams",
    "EstStats",
    "Hints",
    "LocalStrategy",
    "Memo",
    "OptimizationResult",
    "Optimizer",
    "PhysNode",
    "PhysicalOptimizer",
    "PlanContext",
    "PlanLowerBound",
    "RankedPlan",
    "SearchStats",
    "Ship",
    "ShipKind",
    "can_exchange_unary_binary",
    "can_rotate",
    "can_swap_unary_unary",
    "count_alternatives",
    "enum_alternatives_chain",
    "enumerate_flows",
    "iter_flows",
    "kgp_kat",
    "kgp_map",
    "kgp_match_side",
    "neighbors",
    "optimize",
    "optimize_physical",
    "roc",
]
