"""The data flow optimizer: reordering conditions, enumeration, costing.

Memoization architecture
------------------------

The optimizer is built around *hash-consed* plans
(:class:`repro.core.plan.Node` interns structurally-equal nodes into the
same object), which turns every plan-keyed table into an O(1) identity
lookup.  Three layers exploit this:

* **Enumeration** (:mod:`.enumeration`): the BFS closure keys its
  seen-set on interned nodes, and per-subtree neighbor lists are
  memoized — a subtree shared by hundreds of alternatives has its swap
  legality checked once.  Rule outcomes themselves are cached in
  :class:`.context.PlanContext` (``rule_cache``).
* **Cardinality** (:mod:`.cardinality`): estimates are cached per
  interned node and record widths per output-attribute set, so the
  estimator does no repeated work across alternatives.
* **Physical optimization** (:mod:`.physical`): a
  :class:`.physical.PhysicalOptimizer` holds a Volcano-style memo table
  (interned sub-plan -> pruned physical options).
  :class:`.optimizer.Optimizer` constructs it once and reuses it across
  every enumerated alternative, so shared subtrees are physically
  optimized exactly once; binary operators additionally prune dominated
  child combinations with an exact branch-and-bound cut.
  ``Optimizer(reuse_memo=False)`` re-plans each alternative from
  scratch; results are identical by construction (see
  ``tests/optimizer/test_memoization.py``).
"""

from .cardinality import CardinalityEstimator, EstStats, Hints
from .conditions import kgp_kat, kgp_map, kgp_match_side, roc
from .context import PlanContext
from .cost import CostParams
from .enumeration import (
    count_alternatives,
    enum_alternatives_chain,
    enumerate_flows,
)
from .optimizer import OptimizationResult, Optimizer, RankedPlan, optimize
from .physical import (
    LocalStrategy,
    PhysicalOptimizer,
    PhysNode,
    Ship,
    ShipKind,
    optimize_physical,
)
from .rules import (
    can_exchange_unary_binary,
    can_rotate,
    can_swap_unary_unary,
    neighbors,
)

__all__ = [
    "CardinalityEstimator",
    "CostParams",
    "EstStats",
    "Hints",
    "LocalStrategy",
    "OptimizationResult",
    "Optimizer",
    "PhysNode",
    "PhysicalOptimizer",
    "PlanContext",
    "RankedPlan",
    "Ship",
    "ShipKind",
    "can_exchange_unary_binary",
    "can_rotate",
    "can_swap_unary_unary",
    "count_alternatives",
    "enum_alternatives_chain",
    "enumerate_flows",
    "kgp_kat",
    "kgp_map",
    "kgp_match_side",
    "neighbors",
    "optimize",
    "optimize_physical",
    "roc",
]
