"""Cost model parameters and primitive cost formulas.

The paper's cost model is "a combination of network IO, disk IO, and CPU
costs of UDF calls" (Section 7.1).  All costs here are expressed in
simulated seconds so that optimizer estimates and engine measurements are
directly comparable.  The same parameters drive both the estimator (with
*hinted* quantities) and the simulated engine (with *measured* quantities),
so estimate-vs-runtime discrepancies come from cardinality and cost-hint
errors — exactly as on the paper's cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostParams:
    """Cluster model: 4 nodes x 8 cores (the paper's DOP of 32)."""

    degree: int = 32  # parallel instances
    net_bandwidth: float = 120e6  # bytes/sec, cluster aggregate
    disk_bandwidth: float = 1.2e9  # bytes/sec, cluster aggregate
    cpu_rate: float = 8e6  # cost units/sec per instance
    memory_per_instance: float = 64e6  # bytes before sort/hash spills
    sort_unit: float = 1.0  # units per record-comparison level
    build_unit: float = 0.6  # units per hash-table insert
    probe_unit: float = 0.4  # units per hash probe
    cross_unit: float = 0.1  # units per nested-loop pair
    record_overhead: float = 0.25  # units per record pushed through a pipe

    def cpu_seconds(self, units: float) -> float:
        """Time for perfectly parallelized CPU work."""
        return units / (self.cpu_rate * self.degree)

    def cpu_seconds_single(self, units: float) -> float:
        """Time for CPU work on a single instance."""
        return units / self.cpu_rate

    def net_seconds(self, bytes_moved: float) -> float:
        return bytes_moved / self.net_bandwidth

    def disk_seconds(self, bytes_io: float) -> float:
        return bytes_io / self.disk_bandwidth

    def partition_bytes(self, total_bytes: float) -> float:
        """Bytes crossing the network for a hash repartition."""
        if self.degree <= 1:
            return 0.0
        return total_bytes * (self.degree - 1) / self.degree

    def broadcast_bytes(self, total_bytes: float) -> float:
        """Bytes crossing the network to replicate a data set everywhere."""
        if self.degree <= 1:
            return 0.0
        return total_bytes * (self.degree - 1)

    def sort_units(self, rows: float) -> float:
        per_instance = max(rows / self.degree, 2.0)
        return rows * math.log2(per_instance) * self.sort_unit

    def spill_bytes(self, total_bytes: float) -> float:
        """Extra disk IO if a blocking operator exceeds memory."""
        if total_bytes / self.degree > self.memory_per_instance:
            return 2.0 * total_bytes
        return 0.0
