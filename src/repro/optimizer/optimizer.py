"""End-to-end optimizer driver (Section 7.1's prototype pipeline).

The optimization process mirrors the paper's prototype: obtain UDF
properties (manual annotations or SCA), enumerate all valid reordered data
flows, call the cost-based physical optimizer on each alternative, and
rank the resulting execution plans by estimated cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.catalog import Catalog
from ..core.plan import Node, body as plan_body, signature
from ..core.udf import AnnotationMode
from .cardinality import CardinalityEstimator, Hints
from .context import PlanContext
from .cost import CostParams
from .enumeration import enumerate_flows
from .physical import PhysicalOptimizer, PhysNode


@dataclass(frozen=True, slots=True)
class RankedPlan:
    """One enumerated alternative with its physical plan and cost rank."""

    rank: int  # 1 = cheapest estimated plan
    body: Node
    physical: PhysNode

    @property
    def cost(self) -> float:
        return self.physical.cost_total


@dataclass(slots=True)
class OptimizationResult:
    """Everything the experiments need about one optimization run."""

    original_body: Node
    ranked: list[RankedPlan]  # ascending estimated cost
    enumeration_seconds: float
    physical_seconds: float
    _rank_index: dict[Node, int] | None = field(default=None, repr=False)

    @property
    def plan_count(self) -> int:
        return len(self.ranked)

    @property
    def best(self) -> RankedPlan:
        return self.ranked[0]

    def rank_of(self, body: Node) -> int:
        # Interned nodes make the common lookup an O(1) identity hit; keying
        # on the node (not its signature) keeps distinct plans distinct even
        # when operators share names across the ranked list.
        if self._rank_index is None:
            self._rank_index = {plan.body: plan.rank for plan in self.ranked}
        hit = self._rank_index.get(body)
        if hit is not None:
            return hit
        # Fallback for bodies built from different operator objects: first
        # structural (signature) match in rank order, the legacy behavior.
        wanted = signature(body)
        for plan in self.ranked:
            if signature(plan.body) == wanted:
                return plan.rank
        raise KeyError("plan not among the enumerated alternatives")

    def picks(self, count: int = 10) -> list[RankedPlan]:
        """Plans picked at regular rank intervals (the Figure 5/6 protocol)."""
        n = len(self.ranked)
        if count <= 0:
            return []
        if n <= count:
            return list(self.ranked)
        if count == 1:
            # A single pick has no interval to spread over: the rank-1 plan.
            return [self.ranked[0]]
        picks = []
        for i in range(count):
            rank_index = round(i * (n - 1) / (count - 1))
            picks.append(self.ranked[rank_index])
        return picks


class Optimizer:
    """Enumerate + physically optimize + rank.

    With ``reuse_memo`` (the default) a single :class:`PhysicalOptimizer`
    — and hence a single Volcano memo table of interned sub-plan ->
    physical options — is shared across every enumerated alternative, so
    a subtree occurring in hundreds of alternatives is planned once.
    ``reuse_memo=False`` re-plans each alternative from scratch (the
    reference path; results are identical, just slower).

    ``estimator_factory`` is the cardinality-estimation injection point:
    it is called once per :meth:`optimize` with ``(ctx, hints)`` and must
    return a :class:`CardinalityEstimator` (or subclass — the feedback
    subsystem injects a learned-statistics estimator here).  The default
    constructs a plain :class:`CardinalityEstimator`; with no factory the
    optimization pipeline is bit-identical to the feedback-free seed.
    """

    def __init__(
        self,
        catalog: Catalog,
        hints: dict[str, Hints] | None = None,
        mode: AnnotationMode = AnnotationMode.SCA,
        params: CostParams | None = None,
        reuse_memo: bool = True,
        estimator_factory: Callable[
            [PlanContext, dict[str, Hints]], CardinalityEstimator
        ]
        | None = None,
    ) -> None:
        self.catalog = catalog
        self.hints = hints or {}
        self.mode = mode
        self.params = params or CostParams()
        self.ctx = PlanContext(catalog, mode)
        self.reuse_memo = reuse_memo
        self.estimator_factory = estimator_factory or CardinalityEstimator
        #: Estimator used by the most recent :meth:`optimize` call — the
        #: feedback loop reads its cached estimates for q-error reporting.
        self.last_estimator: CardinalityEstimator | None = None

    def optimize(self, plan: Node) -> OptimizationResult:
        flow = plan_body(plan)
        t0 = time.perf_counter()
        alternatives = enumerate_flows(flow, self.ctx)
        t1 = time.perf_counter()
        estimator = self.estimator_factory(self.ctx, self.hints)
        self.last_estimator = estimator
        shared = (
            PhysicalOptimizer(self.ctx, estimator, self.params)
            if self.reuse_memo
            else None
        )
        scored: list[tuple[float, Node, PhysNode]] = []
        for alt in alternatives:
            physical_optimizer = shared or PhysicalOptimizer(
                self.ctx, estimator, self.params
            )
            phys = physical_optimizer.optimize(alt)
            scored.append((phys.cost_total, alt, phys))
        t2 = time.perf_counter()
        scored.sort(key=lambda item: item[0])
        ranked = [
            RankedPlan(rank=i + 1, body=alt, physical=phys)
            for i, (_, alt, phys) in enumerate(scored)
        ]
        return OptimizationResult(
            original_body=flow,
            ranked=ranked,
            enumeration_seconds=t1 - t0,
            physical_seconds=t2 - t1,
        )


def optimize(
    plan: Node,
    catalog: Catalog,
    hints: dict[str, Hints] | None = None,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`Optimizer`."""
    return Optimizer(catalog, hints, mode, params).optimize(plan)
