"""End-to-end optimizer driver (Section 7.1's prototype pipeline).

The optimization process mirrors the paper's prototype: obtain UDF
properties (manual annotations or SCA), enumerate all valid reordered data
flows, call the cost-based physical optimizer on each alternative, and
rank the resulting execution plans by estimated cost.

Two search strategies share that pipeline.  ``search="eager"`` (the
reference) costs every alternative and sorts.  ``search="guided"`` runs a
best-first search: alternatives stream out of the generator-based
enumerator straight into a priority frontier ordered by an admissible
lower bound (:class:`~repro.optimizer.physical.PlanLowerBound`), only the
frontier head is physically costed, and the search stops as soon as the
requested top-``k`` completed plans are provably cheaper — under the
eager tie-break — than every open node's bound.  The two strategies
return bit-identical plans for the guaranteed prefix; guided simply
refuses to cost the part of the closure that cannot matter.
"""

from __future__ import annotations

import heapq
import random
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..core.catalog import Catalog
from ..core.errors import OptimizationConfigError, OptimizationError
from ..core.plan import Node, body as plan_body, signature
from ..core.udf import AnnotationMode
from ..obs.tracer import NOOP_TRACER, clock
from .cardinality import CardinalityEstimator, Hints
from .context import PlanContext
from .cost import CostParams
from .enumeration import iter_flows
from .memo import Memo
from .physical import PhysicalOptimizer, PhysNode, PlanLowerBound


@dataclass(frozen=True, slots=True)
class SearchStats:
    """Work accounting for one :meth:`Optimizer.optimize` call.

    ``expanded`` counts logical alternatives generated into the search
    (the frontier for guided, the sampled closure for eager); ``costed``
    counts alternatives physically optimized; ``pruned`` is the open
    frontier the guided termination rule never had to cost;
    ``bounds_computed`` counts fresh lower-bound entries;
    ``estimate_calls`` counts cardinality-estimate cache misses spent.
    All five are exported as ``optimizer.search.*`` / ``optimizer.estimates``
    counters through :mod:`repro.obs`.
    """

    search: str
    expanded: int
    costed: int
    pruned: int
    bounds_computed: int
    estimate_calls: int


@dataclass(frozen=True, slots=True)
class RankedPlan:
    """One enumerated alternative with its physical plan and cost rank."""

    rank: int  # 1 = cheapest estimated plan
    body: Node
    physical: PhysNode

    @property
    def cost(self) -> float:
        return self.physical.cost_total


@dataclass(slots=True)
class OptimizationResult:
    """Everything the experiments need about one optimization run."""

    original_body: Node
    ranked: list[RankedPlan]  # ascending estimated cost
    enumeration_seconds: float
    physical_seconds: float
    #: Search-work accounting (expanded/costed/pruned/bounds/estimates).
    search_stats: SearchStats | None = None
    _rank_index: dict[Node, int] | None = field(default=None, repr=False)

    @property
    def plan_count(self) -> int:
        return len(self.ranked)

    @property
    def best(self) -> RankedPlan:
        return self.ranked[0]

    def rank_of(self, body: Node) -> int:
        # Interned nodes make the common lookup an O(1) identity hit; keying
        # on the node (not its signature) keeps distinct plans distinct even
        # when operators share names across the ranked list.
        if self._rank_index is None:
            self._rank_index = {plan.body: plan.rank for plan in self.ranked}
        hit = self._rank_index.get(body)
        if hit is not None:
            return hit
        # Fallback for bodies built from different operator objects: first
        # structural (signature) match in rank order, the legacy behavior.
        wanted = signature(body)
        for plan in self.ranked:
            if signature(plan.body) == wanted:
                return plan.rank
        raise KeyError("plan not among the enumerated alternatives")

    def picks(self, count: int = 10) -> list[RankedPlan]:
        """Plans picked at regular rank intervals (the Figure 5/6 protocol)."""
        n = len(self.ranked)
        if count <= 0:
            return []
        if n <= count:
            return list(self.ranked)
        if count == 1:
            # A single pick has no interval to spread over: the rank-1 plan.
            return [self.ranked[0]]
        picks = []
        for i in range(count):
            rank_index = round(i * (n - 1) / (count - 1))
            picks.append(self.ranked[rank_index])
        return picks


class Optimizer:
    """Enumerate + physically optimize + rank.

    With ``reuse_memo`` (the default) a single :class:`PhysicalOptimizer`
    — and hence a single Volcano :class:`~repro.optimizer.memo.Memo` of
    interned sub-plan -> physical options — is shared across every
    enumerated alternative, so a subtree occurring in hundreds of
    alternatives is planned once.  ``reuse_memo=False`` re-plans each
    alternative from scratch (the reference path; results are identical,
    just slower).

    **Incremental re-costing.**  :meth:`optimize` accepts an explicit
    ``memo`` (see :meth:`new_memo`) whose surviving entries — options,
    estimates, and the enumerated closure — are reused verbatim; after a
    hint or statistics change, call :meth:`reoptimize` (or
    :meth:`~repro.optimizer.memo.Memo.invalidate` yourself) so the dirty
    spine above the changed operators is evicted first.  By default every
    :meth:`optimize` call builds a fresh memo, so one ``Optimizer``
    instance is safely re-entrant across plans and repeated calls.

    **Parallel costing.**  With ``jobs > 1`` the alternative list is
    sharded across forked worker processes, each costing against its own
    copy of the shared memo; worker memos are merged back afterwards
    (:mod:`repro.optimizer.parallel`).  Results are bit-identical to
    sequential costing; on platforms without ``fork`` the setting is
    ignored.

    **Search strategies.**  ``search="eager"`` (the default and the
    parity reference) costs every candidate and sorts.  ``search="guided"``
    runs the best-first search of :meth:`_optimize_guided`: candidates
    stream into a frontier ordered by an admissible lower bound
    (:class:`~repro.optimizer.physical.PlanLowerBound`), only frontier
    heads are costed, and the search stops once the requested ``top_k``
    prefix is provably final — returning the bit-identical top-``k``
    eager would, at a small fraction of the costing (and estimation)
    work.  ``top_k`` trims eager's ranking the same way, so the two
    strategies stay interchangeable.

    **Plan-space sampling.**  ``max_alternatives=N`` ranks a deterministic
    sample of the closure — the implemented flow plus ``N - 1``
    alternatives reservoir-sampled without replacement by ``sample_seed``
    *during* expansion (the closure never materializes) — for flows
    whose closure explodes; the sampled alternatives are still costed
    through the shared memo, whose branch-and-bound cut keeps each
    costing cost-bounded.  ``None`` (the default) ranks the full closure.

    ``estimator_factory`` is the cardinality-estimation injection point:
    it is called once per :meth:`optimize` with ``(ctx, hints)`` and must
    return a :class:`CardinalityEstimator` (or subclass — the feedback
    subsystem injects a learned-statistics estimator here).  The default
    constructs a plain :class:`CardinalityEstimator`; with no factory the
    optimization pipeline is bit-identical to the feedback-free seed.
    """

    def __init__(
        self,
        catalog: Catalog,
        hints: dict[str, Hints] | None = None,
        mode: AnnotationMode = AnnotationMode.SCA,
        params: CostParams | None = None,
        reuse_memo: bool = True,
        estimator_factory: Callable[
            [PlanContext, dict[str, Hints]], CardinalityEstimator
        ]
        | None = None,
        jobs: int = 1,
        max_alternatives: int | None = None,
        sample_seed: int = 0,
        search: str = "eager",
        top_k: int | None = None,
        tracer=None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise OptimizationConfigError(
                f"jobs must be an integer >= 1, got {jobs!r}"
            )
        if jobs > 1 and not reuse_memo:
            raise OptimizationConfigError(
                "jobs > 1 requires reuse_memo=True: the reference path "
                "re-plans every alternative sequentially from scratch"
            )
        if max_alternatives is not None and max_alternatives < 1:
            raise OptimizationConfigError(
                f"max_alternatives must be None or >= 1, got {max_alternatives}"
            )
        if search not in ("eager", "guided"):
            raise OptimizationConfigError(
                f"search must be 'eager' or 'guided', got {search!r}"
            )
        if search == "guided" and not reuse_memo:
            raise OptimizationConfigError(
                "search='guided' requires reuse_memo=True: the bound table "
                "lives in the shared memo"
            )
        if top_k is not None and (
            not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1
        ):
            raise OptimizationConfigError(
                f"top_k must be None or an integer >= 1, got {top_k!r}"
            )
        self.catalog = catalog
        self.hints = hints or {}
        self.mode = mode
        self.params = params or CostParams()
        self.ctx = PlanContext(catalog, mode)
        self.reuse_memo = reuse_memo
        self.estimator_factory = estimator_factory or CardinalityEstimator
        self.jobs = jobs
        self.max_alternatives = max_alternatives
        self.sample_seed = sample_seed
        self.search = search
        #: Ranked-prefix length to guarantee.  ``None`` means "everything"
        #: for eager and "the rank-1 plan" for guided (a guided search
        #: asked for the full ranking would have to cost the whole
        #: closure, defeating it).
        self.top_k = top_k
        # Wall-clock observability (repro.obs); the tracer never touches
        # estimates, costs, or ranking — planning output is bit-identical
        # with tracing on or off.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Estimator used by the most recent :meth:`optimize` call — the
        #: feedback loop reads its cached estimates for q-error reporting.
        self.last_estimator: CardinalityEstimator | None = None

    def new_memo(self) -> Memo:
        """A fresh memo wired to this optimizer's context.

        Pass it to :meth:`optimize` to carry costed state across calls;
        invalidate it (:meth:`reoptimize`) whenever the hints or learned
        statistics of some operators change in between.
        """
        return Memo(op_names=self.ctx.op_names)

    def optimize(self, plan: Node, memo: Memo | None = None) -> OptimizationResult:
        """Enumerate, cost, and rank every alternative of ``plan``.

        With an explicit ``memo``, surviving entries (and the cached
        closure) are reused and new entries are left in the memo for the
        next call; the caller owns invalidation across hint changes.
        Without one, a fresh memo is used per call.
        """
        if memo is not None and not self.reuse_memo:
            raise OptimizationError(
                "an explicit memo requires reuse_memo=True (the reference "
                "path re-plans every alternative from scratch)"
            )
        flow = plan_body(plan)
        tracer = self.tracer
        root_span = tracer.span("optimizer.optimize", category="optimizer")
        with root_span:
            estimator = self.estimator_factory(self.ctx, self.hints)
            self.last_estimator = estimator
            if self.search == "guided":
                ranked, stats, enum_secs, phys_secs = self._optimize_guided(
                    flow, memo, estimator
                )
            else:
                ranked, stats, enum_secs, phys_secs = self._optimize_eager(
                    flow, memo, estimator
                )
        root_span.set(
            alternatives=stats.costed,
            best_cost=ranked[0].cost if ranked else 0.0,
        )
        tracer.count("optimizer.optimizations")
        tracer.count("optimizer.alternatives_costed", stats.costed)
        tracer.count("optimizer.search.expanded", stats.expanded)
        tracer.count("optimizer.search.costed", stats.costed)
        tracer.count("optimizer.search.pruned", stats.pruned)
        tracer.count("optimizer.search.bounds", stats.bounds_computed)
        tracer.count("optimizer.estimates", stats.estimate_calls)
        return OptimizationResult(
            original_body=flow,
            ranked=ranked,
            enumeration_seconds=enum_secs,
            physical_seconds=phys_secs,
            search_stats=stats,
        )

    def reoptimize(
        self, plan: Node, memo: Memo, changed_ops: Iterable[str]
    ) -> OptimizationResult:
        """Re-rank after a hint/statistics change to ``changed_ops``.

        Evicts the dirty spine above the changed operators from ``memo``
        and re-optimizes; entries whose subtrees contain no changed
        operator — and the enumerated closure — are reused verbatim.
        Bit-identical to a full rebuild with the same hints (pinned by
        the invalidation parity tests), at a fraction of the cost.
        """
        changed = tuple(changed_ops)
        with self.tracer.span(
            "optimizer.invalidate", category="optimizer", changed=len(changed)
        ) as span:
            evicted = memo.invalidate(changed)
        span.set(evicted=evicted)
        self.tracer.count("optimizer.invalidations")
        self.tracer.count("optimizer.memo_evictions", evicted)
        return self.optimize(plan, memo=memo)

    # -- internals ---------------------------------------------------------

    def _optimize_eager(
        self,
        flow: Node,
        memo: Memo | None,
        estimator: CardinalityEstimator,
    ) -> tuple[list[RankedPlan], SearchStats, float, float]:
        """The reference strategy: cost every candidate, sort, rank."""
        tracer = self.tracer
        t0 = clock()
        with tracer.span("optimizer.enumerate", category="optimizer") as enum_span:
            sampled = self._candidates(flow, memo)
        enum_span.set(sampled=len(sampled))
        t1 = clock()
        scored: list[tuple[float, Node, PhysNode]] = []
        cost_span = tracer.span(
            "optimizer.cost",
            category="optimizer",
            alternatives=len(sampled),
            jobs=self.jobs,
        )
        with cost_span:
            if self.reuse_memo:
                shared_memo = memo if memo is not None else self.new_memo()
                shared_memo.bind(estimator)
                for alt, phys in self._cost_all(sampled, estimator, shared_memo):
                    scored.append((phys.cost_total, alt, phys))
            else:
                for alt in sampled:
                    with tracer.span(
                        "optimizer.alternative", category="optimizer"
                    ):
                        physical_optimizer = PhysicalOptimizer(
                            self.ctx, estimator, self.params
                        )
                        phys = physical_optimizer.optimize(alt)
                    scored.append((phys.cost_total, alt, phys))
        t2 = clock()
        # Stable sort: equal-cost plans keep enumeration order, identical
        # between the sequential, memo-reusing, and parallel paths.
        scored.sort(key=lambda item: item[0])
        ranked = [
            RankedPlan(rank=i + 1, body=alt, physical=phys)
            for i, (_, alt, phys) in enumerate(scored)
        ]
        if self.top_k is not None:
            ranked = ranked[: self.top_k]
        stats = SearchStats(
            search="eager",
            expanded=len(sampled),
            costed=len(sampled),
            pruned=0,
            bounds_computed=0,
            estimate_calls=estimator.estimate_calls,
        )
        return ranked, stats, t1 - t0, t2 - t1

    def _optimize_guided(
        self,
        flow: Node,
        memo: Memo | None,
        estimator: CardinalityEstimator,
    ) -> tuple[list[RankedPlan], SearchStats, float, float]:
        """Best-first search: cost only what the bound cannot rule out.

        Every candidate streams out of the generator-based enumerator into
        a frontier heap keyed by ``(lower_bound, discovery_index)``; only
        the head is physically costed.  Because the eager reference ranks
        by a stable sort — i.e. by the lexicographic key ``(true_cost,
        discovery_index)`` — and ``true_cost >= lower_bound``, an open
        node whose heap key exceeds the k-th completed plan's key can
        never enter the true top-k, and the heap pops in ascending key
        order, so the first such head terminates the search with the
        bit-identical top-k prefix eager would produce.
        """
        tracer = self.tracer
        k = self.top_k if self.top_k is not None else 1
        shared_memo = memo if memo is not None else self.new_memo()
        shared_memo.bind(estimator)
        bounder = PlanLowerBound(self.ctx, estimator, self.params, shared_memo)
        bounds_before = len(shared_memo.bounds)
        t0 = clock()
        with tracer.span("optimizer.enumerate", category="optimizer") as enum_span:
            frontier: list[tuple[float, int, Node]] = [
                (bounder.bound(alt), idx, alt)
                for idx, alt in enumerate(self._expand(flow, shared_memo))
            ]
            heapq.heapify(frontier)
        expanded = len(frontier)
        enum_span.set(sampled=expanded)
        t1 = clock()
        # Completed plans, kept sorted by (cost, discovery index) — the
        # eager tie-break.  Indices are unique, so tuple comparison never
        # reaches the (incomparable) Node/PhysNode elements.
        completed: list[tuple[float, int, Node, PhysNode]] = []
        cost_span = tracer.span(
            "optimizer.cost",
            category="optimizer",
            alternatives=expanded,
            jobs=self.jobs,
        )
        with cost_span:
            use_parallel = False
            if self.jobs > 1 and expanded > 1:
                from . import parallel

                use_parallel = parallel.available()
            physical_optimizer = PhysicalOptimizer(
                self.ctx, estimator, self.params, memo=shared_memo
            )

            def settled() -> bool:
                return (
                    len(completed) >= k
                    and frontier[0][:2] > completed[k - 1][:2]
                )

            while frontier:
                if settled():
                    break
                if use_parallel:
                    # Pop a topological wave of frontier heads and cost it
                    # across the worker pool; the termination rule is
                    # re-checked between pops, so a wave may cost a few
                    # plans sequential search would have skipped — they
                    # are trimmed below, keeping results bit-identical.
                    wave = [heapq.heappop(frontier)]
                    cap = self.jobs * 4
                    while len(wave) < cap and frontier and not settled():
                        wave.append(heapq.heappop(frontier))
                    costed = parallel.cost_alternatives(
                        tuple(alt for _, _, alt in wave),
                        self.ctx,
                        estimator,
                        self.params,
                        shared_memo,
                        min(self.jobs, len(wave)),
                        tracer=tracer,
                    )
                    for (_, idx, alt), (_, phys) in zip(wave, costed):
                        insort(completed, (phys.cost_total, idx, alt, phys))
                else:
                    _, idx, alt = heapq.heappop(frontier)
                    with tracer.span(
                        "optimizer.alternative", category="optimizer"
                    ):
                        phys = physical_optimizer.optimize(alt)
                    insort(completed, (phys.cost_total, idx, alt, phys))
        t2 = clock()
        ranked = [
            RankedPlan(rank=i + 1, body=alt, physical=phys)
            for i, (_, _, alt, phys) in enumerate(completed[:k])
        ]
        stats = SearchStats(
            search="guided",
            expanded=expanded,
            costed=len(completed),
            pruned=len(frontier),
            bounds_computed=len(shared_memo.bounds) - bounds_before,
            estimate_calls=estimator.estimate_calls,
        )
        return ranked, stats, t1 - t0, t2 - t1

    def _expand(self, flow: Node, memo: Memo) -> Iterator[Node]:
        """Candidate stream for the guided search, in discovery order.

        Without sampling the closure is never materialized: candidates
        stream straight from :func:`iter_flows` (reusing — and growing —
        the memo's persistent neighbor cache), unless a prior eager call
        already cached the closure tuple.  With ``max_alternatives`` the
        deterministic reservoir sample is used, identical to eager's.
        """
        if self.max_alternatives is None:
            cached = memo.closures.get(flow)
            if cached is not None:
                return iter(cached)
            return iter_flows(flow, self.ctx, neighbor_memo=memo.neighbors)
        return iter(self._candidates(flow, memo))

    def _candidates(self, flow: Node, memo: Memo | None) -> tuple[Node, ...]:
        """The (possibly sampled) candidate tuple, cached in the memo.

        Swap legality and sampling depend on derived plan properties and
        the seed, never on hints, so memo-cached closures and samples
        stay valid across invalidations.
        """
        limit = self.max_alternatives
        neighbor_memo = memo.neighbors if memo is not None else None
        if limit is None:
            if memo is not None:
                cached = memo.closures.get(flow)
                if cached is not None:
                    return cached
            closure = tuple(
                iter_flows(flow, self.ctx, neighbor_memo=neighbor_memo)
            )
            if memo is not None:
                memo.closures[flow] = closure
            return closure
        key = (flow, limit, self.sample_seed)
        if memo is not None:
            cached_sample = memo.samples.get(key)
            if cached_sample is not None:
                return cached_sample
        sampled = self._reservoir(flow, limit, neighbor_memo)
        if memo is not None:
            memo.samples[key] = sampled
        return sampled

    def _reservoir(
        self,
        flow: Node,
        limit: int,
        neighbor_memo: dict[Node, tuple[Node, ...]] | None,
    ) -> tuple[Node, ...]:
        """Deterministic sample drawn *during* expansion (Algorithm R).

        The implemented flow is always kept; the remaining ``limit - 1``
        slots hold a uniform without-replacement sample of the rest of
        the closure, which therefore never materializes.  The result is
        ordered by discovery index, keeping equal-cost tie-breaks stable.
        """
        rng = random.Random(self.sample_seed)
        flows = iter_flows(flow, self.ctx, neighbor_memo=neighbor_memo)
        original = next(flows)
        keep = limit - 1
        reservoir: list[tuple[int, Node]] = []
        seen = 0
        for idx, alt in enumerate(flows, start=1):
            seen += 1
            if seen <= keep:
                reservoir.append((idx, alt))
                continue
            slot = rng.randrange(seen)
            if slot < keep:
                reservoir[slot] = (idx, alt)
        reservoir.sort()
        return (original, *(alt for _, alt in reservoir))

    def _cost_all(
        self,
        alternatives: tuple[Node, ...],
        estimator: CardinalityEstimator,
        memo: Memo,
    ) -> list[tuple[Node, PhysNode]]:
        """Cost alternatives against the shared memo, forking if asked."""
        if self.jobs > 1 and len(alternatives) > 1:
            from . import parallel

            if parallel.available():
                return parallel.cost_alternatives(
                    alternatives,
                    self.ctx,
                    estimator,
                    self.params,
                    memo,
                    min(self.jobs, len(alternatives)),
                    tracer=self.tracer,
                )
        physical_optimizer = PhysicalOptimizer(
            self.ctx, estimator, self.params, memo=memo
        )
        scored = []
        for alt in alternatives:
            with self.tracer.span("optimizer.alternative", category="optimizer"):
                scored.append((alt, physical_optimizer.optimize(alt)))
        return scored


def optimize(
    plan: Node,
    catalog: Catalog,
    hints: dict[str, Hints] | None = None,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`Optimizer`."""
    return Optimizer(catalog, hints, mode, params).optimize(plan)
