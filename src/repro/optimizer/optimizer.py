"""End-to-end optimizer driver (Section 7.1's prototype pipeline).

The optimization process mirrors the paper's prototype: obtain UDF
properties (manual annotations or SCA), enumerate all valid reordered data
flows, call the cost-based physical optimizer on each alternative, and
rank the resulting execution plans by estimated cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.catalog import Catalog
from ..core.errors import OptimizationError
from ..core.plan import Node, body as plan_body, signature
from ..core.udf import AnnotationMode
from ..obs.tracer import NOOP_TRACER, clock
from .cardinality import CardinalityEstimator, Hints
from .context import PlanContext
from .cost import CostParams
from .enumeration import enumerate_flows
from .memo import Memo
from .physical import PhysicalOptimizer, PhysNode


@dataclass(frozen=True, slots=True)
class RankedPlan:
    """One enumerated alternative with its physical plan and cost rank."""

    rank: int  # 1 = cheapest estimated plan
    body: Node
    physical: PhysNode

    @property
    def cost(self) -> float:
        return self.physical.cost_total


@dataclass(slots=True)
class OptimizationResult:
    """Everything the experiments need about one optimization run."""

    original_body: Node
    ranked: list[RankedPlan]  # ascending estimated cost
    enumeration_seconds: float
    physical_seconds: float
    _rank_index: dict[Node, int] | None = field(default=None, repr=False)

    @property
    def plan_count(self) -> int:
        return len(self.ranked)

    @property
    def best(self) -> RankedPlan:
        return self.ranked[0]

    def rank_of(self, body: Node) -> int:
        # Interned nodes make the common lookup an O(1) identity hit; keying
        # on the node (not its signature) keeps distinct plans distinct even
        # when operators share names across the ranked list.
        if self._rank_index is None:
            self._rank_index = {plan.body: plan.rank for plan in self.ranked}
        hit = self._rank_index.get(body)
        if hit is not None:
            return hit
        # Fallback for bodies built from different operator objects: first
        # structural (signature) match in rank order, the legacy behavior.
        wanted = signature(body)
        for plan in self.ranked:
            if signature(plan.body) == wanted:
                return plan.rank
        raise KeyError("plan not among the enumerated alternatives")

    def picks(self, count: int = 10) -> list[RankedPlan]:
        """Plans picked at regular rank intervals (the Figure 5/6 protocol)."""
        n = len(self.ranked)
        if count <= 0:
            return []
        if n <= count:
            return list(self.ranked)
        if count == 1:
            # A single pick has no interval to spread over: the rank-1 plan.
            return [self.ranked[0]]
        picks = []
        for i in range(count):
            rank_index = round(i * (n - 1) / (count - 1))
            picks.append(self.ranked[rank_index])
        return picks


class Optimizer:
    """Enumerate + physically optimize + rank.

    With ``reuse_memo`` (the default) a single :class:`PhysicalOptimizer`
    — and hence a single Volcano :class:`~repro.optimizer.memo.Memo` of
    interned sub-plan -> physical options — is shared across every
    enumerated alternative, so a subtree occurring in hundreds of
    alternatives is planned once.  ``reuse_memo=False`` re-plans each
    alternative from scratch (the reference path; results are identical,
    just slower).

    **Incremental re-costing.**  :meth:`optimize` accepts an explicit
    ``memo`` (see :meth:`new_memo`) whose surviving entries — options,
    estimates, and the enumerated closure — are reused verbatim; after a
    hint or statistics change, call :meth:`reoptimize` (or
    :meth:`~repro.optimizer.memo.Memo.invalidate` yourself) so the dirty
    spine above the changed operators is evicted first.  By default every
    :meth:`optimize` call builds a fresh memo, so one ``Optimizer``
    instance is safely re-entrant across plans and repeated calls.

    **Parallel costing.**  With ``jobs > 1`` the alternative list is
    sharded across forked worker processes, each costing against its own
    copy of the shared memo; worker memos are merged back afterwards
    (:mod:`repro.optimizer.parallel`).  Results are bit-identical to
    sequential costing; on platforms without ``fork`` the setting is
    ignored.

    **Plan-space sampling.**  ``max_alternatives=N`` ranks a deterministic
    sample of the closure — the implemented flow plus ``N - 1``
    alternatives drawn without replacement by ``sample_seed`` — for flows
    whose closure explodes; the sampled alternatives are still costed
    through the shared memo, whose branch-and-bound cut keeps each
    costing cost-bounded.  ``None`` (the default) ranks the full closure.

    ``estimator_factory`` is the cardinality-estimation injection point:
    it is called once per :meth:`optimize` with ``(ctx, hints)`` and must
    return a :class:`CardinalityEstimator` (or subclass — the feedback
    subsystem injects a learned-statistics estimator here).  The default
    constructs a plain :class:`CardinalityEstimator`; with no factory the
    optimization pipeline is bit-identical to the feedback-free seed.
    """

    def __init__(
        self,
        catalog: Catalog,
        hints: dict[str, Hints] | None = None,
        mode: AnnotationMode = AnnotationMode.SCA,
        params: CostParams | None = None,
        reuse_memo: bool = True,
        estimator_factory: Callable[
            [PlanContext, dict[str, Hints]], CardinalityEstimator
        ]
        | None = None,
        jobs: int = 1,
        max_alternatives: int | None = None,
        sample_seed: int = 0,
        tracer=None,
    ) -> None:
        if jobs < 1:
            raise OptimizationError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1 and not reuse_memo:
            raise OptimizationError(
                "jobs > 1 requires reuse_memo=True: the reference path "
                "re-plans every alternative sequentially from scratch"
            )
        if max_alternatives is not None and max_alternatives < 1:
            raise OptimizationError(
                f"max_alternatives must be None or >= 1, got {max_alternatives}"
            )
        self.catalog = catalog
        self.hints = hints or {}
        self.mode = mode
        self.params = params or CostParams()
        self.ctx = PlanContext(catalog, mode)
        self.reuse_memo = reuse_memo
        self.estimator_factory = estimator_factory or CardinalityEstimator
        self.jobs = jobs
        self.max_alternatives = max_alternatives
        self.sample_seed = sample_seed
        # Wall-clock observability (repro.obs); the tracer never touches
        # estimates, costs, or ranking — planning output is bit-identical
        # with tracing on or off.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Estimator used by the most recent :meth:`optimize` call — the
        #: feedback loop reads its cached estimates for q-error reporting.
        self.last_estimator: CardinalityEstimator | None = None

    def new_memo(self) -> Memo:
        """A fresh memo wired to this optimizer's context.

        Pass it to :meth:`optimize` to carry costed state across calls;
        invalidate it (:meth:`reoptimize`) whenever the hints or learned
        statistics of some operators change in between.
        """
        return Memo(op_names=self.ctx.op_names)

    def optimize(self, plan: Node, memo: Memo | None = None) -> OptimizationResult:
        """Enumerate, cost, and rank every alternative of ``plan``.

        With an explicit ``memo``, surviving entries (and the cached
        closure) are reused and new entries are left in the memo for the
        next call; the caller owns invalidation across hint changes.
        Without one, a fresh memo is used per call.
        """
        if memo is not None and not self.reuse_memo:
            raise OptimizationError(
                "an explicit memo requires reuse_memo=True (the reference "
                "path re-plans every alternative from scratch)"
            )
        flow = plan_body(plan)
        tracer = self.tracer
        root_span = tracer.span("optimizer.optimize", category="optimizer")
        with root_span:
            t0 = clock()
            with tracer.span("optimizer.enumerate", category="optimizer") as enum_span:
                alternatives = self._closure(flow, memo)
                sampled = self._sample(alternatives)
            enum_span.set(closure=len(alternatives), sampled=len(sampled))
            t1 = clock()
            estimator = self.estimator_factory(self.ctx, self.hints)
            self.last_estimator = estimator
            scored: list[tuple[float, Node, PhysNode]] = []
            cost_span = tracer.span(
                "optimizer.cost",
                category="optimizer",
                alternatives=len(sampled),
                jobs=self.jobs,
            )
            with cost_span:
                if self.reuse_memo:
                    shared_memo = memo if memo is not None else self.new_memo()
                    shared_memo.bind(estimator)
                    for alt, phys in self._cost_all(sampled, estimator, shared_memo):
                        scored.append((phys.cost_total, alt, phys))
                else:
                    for alt in sampled:
                        with tracer.span(
                            "optimizer.alternative", category="optimizer"
                        ):
                            physical_optimizer = PhysicalOptimizer(
                                self.ctx, estimator, self.params
                            )
                            phys = physical_optimizer.optimize(alt)
                        scored.append((phys.cost_total, alt, phys))
            t2 = clock()
            # Stable sort: equal-cost plans keep enumeration order, identical
            # between the sequential, memo-reusing, and parallel paths.
            scored.sort(key=lambda item: item[0])
            ranked = [
                RankedPlan(rank=i + 1, body=alt, physical=phys)
                for i, (_, alt, phys) in enumerate(scored)
            ]
        root_span.set(
            alternatives=len(sampled),
            best_cost=ranked[0].cost if ranked else 0.0,
        )
        tracer.count("optimizer.optimizations")
        tracer.count("optimizer.alternatives_costed", len(sampled))
        return OptimizationResult(
            original_body=flow,
            ranked=ranked,
            enumeration_seconds=t1 - t0,
            physical_seconds=t2 - t1,
        )

    def reoptimize(
        self, plan: Node, memo: Memo, changed_ops: Iterable[str]
    ) -> OptimizationResult:
        """Re-rank after a hint/statistics change to ``changed_ops``.

        Evicts the dirty spine above the changed operators from ``memo``
        and re-optimizes; entries whose subtrees contain no changed
        operator — and the enumerated closure — are reused verbatim.
        Bit-identical to a full rebuild with the same hints (pinned by
        the invalidation parity tests), at a fraction of the cost.
        """
        changed = tuple(changed_ops)
        with self.tracer.span(
            "optimizer.invalidate", category="optimizer", changed=len(changed)
        ) as span:
            evicted = memo.invalidate(changed)
        span.set(evicted=evicted)
        self.tracer.count("optimizer.invalidations")
        self.tracer.count("optimizer.memo_evictions", evicted)
        return self.optimize(plan, memo=memo)

    # -- internals ---------------------------------------------------------

    def _closure(self, flow: Node, memo: Memo | None) -> tuple[Node, ...]:
        """The flow's enumerated closure, cached in the memo if present.

        Swap legality depends on derived plan properties, never on hints,
        so a memo-cached closure stays valid across invalidations.
        """
        if memo is not None:
            cached = memo.closures.get(flow)
            if cached is not None:
                return cached
        alternatives = tuple(enumerate_flows(flow, self.ctx))
        if memo is not None:
            memo.closures[flow] = alternatives
        return alternatives

    def _sample(self, alternatives: tuple[Node, ...]) -> tuple[Node, ...]:
        """Deterministic closure sample: the original + N-1 seeded draws."""
        limit = self.max_alternatives
        if limit is None or len(alternatives) <= limit:
            return alternatives
        rng = random.Random(self.sample_seed)
        drawn = rng.sample(range(1, len(alternatives)), limit - 1)
        # Ascending enumeration order keeps equal-cost tie-breaks stable.
        return (alternatives[0], *(alternatives[i] for i in sorted(drawn)))

    def _cost_all(
        self,
        alternatives: tuple[Node, ...],
        estimator: CardinalityEstimator,
        memo: Memo,
    ) -> list[tuple[Node, PhysNode]]:
        """Cost alternatives against the shared memo, forking if asked."""
        if self.jobs > 1 and len(alternatives) > 1:
            from . import parallel

            if parallel.available():
                return parallel.cost_alternatives(
                    alternatives,
                    self.ctx,
                    estimator,
                    self.params,
                    memo,
                    min(self.jobs, len(alternatives)),
                    tracer=self.tracer,
                )
        physical_optimizer = PhysicalOptimizer(
            self.ctx, estimator, self.params, memo=memo
        )
        scored = []
        for alt in alternatives:
            with self.tracer.span("optimizer.alternative", category="optimizer"):
                scored.append((alt, physical_optimizer.optimize(alt)))
        return scored


def optimize(
    plan: Node,
    catalog: Catalog,
    hints: dict[str, Hints] | None = None,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`Optimizer`."""
    return Optimizer(catalog, hints, mode, params).optimize(plan)
