"""Process-parallel costing of plan alternatives over sharded memos.

The per-alternative physical-optimization loop is embarrassingly
parallel once the memo can be sharded: each worker costs a contiguous
chunk of the alternative list against its own memo and the parent merges
the worker-computed entries back into the shared one.  Per-node memo
entries are deterministic — computed bottom-up from the child entries,
independent of evaluation order — so the merged result is bit-identical
to the sequential shared-memo pass (parity-pinned by
``tests/optimizer/test_parallel_costing.py``).

Worker-merge protocol
---------------------
Workers are **forked**, never spawned: the alternatives, plan context,
estimator, cost parameters, and the current shared memo are inherited by
address, so nothing optimizer-side needs to be picklable and a warm memo
(a feedback round's surviving entries) seeds every worker for free.  A
worker's memo also stays warm across every chunk it processes; each task
ships back only the entries that are new since its own start.

The ship-back payload is *pure primitives*, not pickled plan objects:

* a logical :class:`~repro.core.plan.Node` is referenced by the id it
  has in the parent address space (valid across a fork; the parent keeps
  an id -> node registry built from the interned alternatives);
* a physical option is encoded as ``(ships, local, build_side,
  child_refs, cost_self, cost_total, partitioning)`` with attributes by
  name, and a **child reference is ``(node_id, option_index)``** — sound
  because entry option tuples are deterministic, so every copy of an
  entry lists its options in the same order no matter which worker (or
  the parent) computed it;
* per-alternative results are ``(index, (node_id, option_index))`` refs
  into the merged table.

The parent decodes entries in payload order (bottom-up: the memo dict is
insertion-ordered and children are stored before parents), resolving
child references against the shared table as it grows; an entry another
worker already delivered is skipped without constructing anything.
Operator objects and UDF callables never cross the process boundary.

On platforms without ``fork`` the caller falls back to sequential
costing (``available()`` gates the dispatch).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from ..core.plan import Node
from ..core.schema import Attribute
from ..obs.tracer import NOOP_TRACER
from .cardinality import CardinalityEstimator, EstStats
from .context import PlanContext
from .cost import CostParams
from .memo import Memo
from .physical import (
    LocalStrategy,
    PhysicalOptimizer,
    PhysNode,
    Ship,
    ShipKind,
    _BROADCAST,
    _FORWARD,
)

#: Contiguous chunks handed to the pool per worker: several per worker
#: load-balance the pool and let the parent merge early chunks while
#: later ones still cost.  Chunks are contiguous because the closure is
#: BFS-ordered — neighboring alternatives differ by single swaps and
#: share most subtrees, so a contiguous chunk touches (and duplicates)
#: far fewer distinct memo entries than a strided one.
_CHUNKS_PER_WORKER = 4

#: Fork-inherited worker state: (alternatives, ctx, estimator, params, memo).
_WORKER: tuple | None = None

_SHIP_KINDS = tuple(ShipKind)
_SHIP_CODE = {kind: i for i, kind in enumerate(_SHIP_KINDS)}
_LOCALS = tuple(LocalStrategy)
_LOCAL_CODE = {local: i for i, local in enumerate(_LOCALS)}
_FORWARD_CODE = _SHIP_CODE[ShipKind.FORWARD]
_BROADCAST_CODE = _SHIP_CODE[ShipKind.BROADCAST]


def available() -> bool:
    """Parallel costing needs fork-style process inheritance."""
    return "fork" in multiprocessing.get_all_start_methods()


def _build_registry(alternatives: tuple[Node, ...]) -> dict[int, Node]:
    """Every logical node a payload may reference, by parent id."""
    registry: dict[int, Node] = {}
    seen: set[Node] = set()
    stack: list[Node] = list(alternatives)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        registry[id(node)] = node
        stack.extend(node.children)
    return registry


def _encode_ship(ship: Ship) -> tuple:
    key = ship.key
    return (
        _SHIP_CODE[ship.kind],
        None if key is None else tuple(a.name for a in key),
    )


def _cost_shard(indices: list[int]):
    """Worker body: cost one chunk, ship new entries as primitives."""
    alternatives, ctx, estimator, params, memo = _WORKER
    base_table = frozenset(memo.table)
    base_est = frozenset(memo.est_cache)
    optimizer = PhysicalOptimizer(ctx, estimator, params, memo=memo)
    best = [(i, optimizer.optimize(alternatives[i])) for i in indices]
    # Option reference map over the worker's full table: children of a
    # new entry may be pre-task (fork-inherited or earlier-chunk) options.
    refs: dict[int, tuple[int, int]] = {}
    for node, options in memo.table.items():
        pid = id(node)
        for index, phys in enumerate(options):
            refs[id(phys)] = (pid, index)
    entries = []
    for node, options in memo.table.items():
        if node in base_table:
            continue
        est = memo.est_cache[node]
        entries.append(
            (
                id(node),
                (est.rows, est.width, est.calls),
                tuple(
                    (
                        tuple(_encode_ship(ship) for ship in phys.ships),
                        _LOCAL_CODE[phys.local],
                        phys.build_side,
                        tuple(refs[id(child)] for child in phys.children),
                        phys.cost_self,
                        phys.cost_total,
                        tuple(
                            tuple(a.name for a in part)
                            for part in phys.partitioning
                        ),
                    )
                    for phys in options
                ),
            )
        )
    # Estimates cached for nodes whose own entry predates this task
    # (e.g. a feedback estimator touching children early).
    est_only = [
        (id(node), (est.rows, est.width, est.calls))
        for node, est in memo.est_cache.items()
        if node not in base_est and node in base_table
    ]
    roots = [(i, refs[id(phys)]) for i, phys in best]
    return roots, entries, est_only


class _Decoder:
    """Rebuilds worker entries into the shared memo, deduplicating."""

    def __init__(self, memo: Memo, registry: dict[int, Node]) -> None:
        self.memo = memo
        self.registry = registry
        self._attrs: dict[str, Attribute] = {}
        self._ships: dict[tuple, Ship] = {}
        self._parts: dict[tuple, frozenset] = {}

    def _attr(self, name: str) -> Attribute:
        attr = self._attrs.get(name)
        if attr is None:
            attr = Attribute(name)
            self._attrs[name] = attr
        return attr

    def _ship(self, encoded: tuple) -> Ship:
        ship = self._ships.get(encoded)
        if ship is None:
            code, key_names = encoded
            if code == _FORWARD_CODE:
                ship = _FORWARD
            elif code == _BROADCAST_CODE:
                ship = _BROADCAST
            else:
                ship = Ship(
                    _SHIP_KINDS[code],
                    tuple(self._attr(n) for n in key_names),
                )
            self._ships[encoded] = ship
        return ship

    def _partitioning(self, encoded: tuple) -> frozenset:
        parts = self._parts.get(encoded)
        if parts is None:
            parts = frozenset(
                frozenset(self._attr(n) for n in names) for names in encoded
            )
            self._parts[encoded] = parts
        return parts

    def _adopt_est(self, node: Node, est: EstStats) -> None:
        est_cache = self.memo.est_cache
        if node not in est_cache:
            # Plain dict write; registration is deferred (see Memo.adopt).
            dict.__setitem__(est_cache, node, est)
            self.memo._pending.append(node)

    def absorb(self, payload) -> list[tuple[int, PhysNode]]:
        """Merge one worker payload; returns the resolved root options."""
        roots, entries, est_only = payload
        memo = self.memo
        table = memo.table
        registry = self.registry
        for pid, est_triple, options in entries:
            node = registry[pid]
            est = EstStats(*est_triple)
            self._adopt_est(node, est)
            if node in table:  # another worker delivered this entry first
                continue
            decoded = []
            for ships, local, build_side, children, cost_self, total, parts in options:
                decoded.append(
                    PhysNode(
                        logical=node,
                        ships=tuple(self._ship(s) for s in ships),
                        local=_LOCALS[local],
                        build_side=build_side,
                        children=tuple(
                            table[registry[cpid]][cidx]
                            for cpid, cidx in children
                        ),
                        est=est,
                        cost_self=cost_self,
                        cost_total=total,
                        partitioning=self._partitioning(parts),
                    )
                )
            table[node] = tuple(decoded)
            memo._pending.append(node)
        for pid, est_triple in est_only:
            self._adopt_est(registry[pid], EstStats(*est_triple))
        return [
            (index, table[registry[pid]][opt_index])
            for index, (pid, opt_index) in roots
        ]


def cost_alternatives(
    alternatives: tuple[Node, ...],
    ctx: PlanContext,
    estimator: CardinalityEstimator,
    params: CostParams,
    memo: Memo,
    jobs: int,
    tracer=NOOP_TRACER,
) -> list[tuple[Node, PhysNode]]:
    """Cost every alternative across ``jobs`` forked workers.

    Returns ``(alternative, cheapest physical plan)`` pairs in the input
    order and merges all worker-computed memo entries into ``memo``.
    The estimator must already be bound to ``memo``
    (:meth:`~repro.optimizer.memo.Memo.bind`) so workers share its caches.
    """
    global _WORKER
    count = len(alternatives)
    pieces = min(count, jobs * _CHUNKS_PER_WORKER)
    bounds = [count * i // pieces for i in range(pieces + 1)]
    chunks = [
        list(range(lo, hi)) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    decoder = _Decoder(memo, _build_registry(alternatives))
    best: dict[int, PhysNode] = {}
    _WORKER = (alternatives, ctx, estimator, params, memo)
    dispatch_span = tracer.span(
        "optimizer.parallel.dispatch",
        category="optimizer",
        alternatives=count,
        chunks=len(chunks),
        jobs=jobs,
    )
    try:
        fork = multiprocessing.get_context("fork")
        with dispatch_span, ProcessPoolExecutor(
            max_workers=jobs, mp_context=fork
        ) as pool:
            # Consume payloads as they arrive (chunk order, so the merge
            # is deterministic): the parent decodes one chunk's entries
            # while the others are still costing.  Each absorb is traced
            # as one chunk span: the parent-side cost of merging that
            # chunk's worker-shipped memo entries.
            for chunk_index, payload in enumerate(
                pool.map(_cost_shard, chunks)
            ):
                with tracer.span(
                    "optimizer.parallel.chunk",
                    category="optimizer",
                    chunk=chunk_index,
                    alternatives=len(chunks[chunk_index]),
                ) as chunk_span:
                    resolved = decoder.absorb(payload)
                    for index, phys in resolved:
                        best[index] = phys
                chunk_span.set(entries=len(payload[1]))
                tracer.count("optimizer.parallel_chunks")
    finally:
        _WORKER = None
    return [(alt, best[i]) for i, alt in enumerate(alternatives)]
