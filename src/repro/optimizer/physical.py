"""Cost-based physical optimization: shipping and local strategies.

For every logical alternative the physical optimizer chooses, per
operator, a *shipping strategy* for each input (forward, hash-partition,
broadcast) and a *local strategy* (pipelined map, sort-based grouping,
hash join with a build side, nested-loop cross, sort-based co-group),
tracking *interesting properties* — here, the hash-partitioning of the
data — so that, e.g., a Match can reuse the partitioning a Reduce
established (the Q15 discussion of Section 7.3).

The search is a small Volcano-style dynamic program: each node returns
its cheapest physical plan per partitioning property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import OptimizationError
from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    UdfOperator,
)
from ..core.plan import Node
from ..core.schema import Attribute
from .cardinality import CardinalityEstimator, EstStats
from .context import PlanContext
from .cost import CostParams

Partitioning = frozenset[frozenset[Attribute]]
RANDOM: Partitioning = frozenset()


class ShipKind(enum.Enum):
    FORWARD = "forward"
    PARTITION = "partition"
    BROADCAST = "broadcast"


@dataclass(frozen=True, slots=True)
class Ship:
    kind: ShipKind
    key: tuple[Attribute, ...] | None = None

    def describe(self) -> str:
        if self.kind is ShipKind.PARTITION and self.key:
            return f"partition({', '.join(a.name for a in self.key)})"
        return self.kind.value


class LocalStrategy(enum.Enum):
    SCAN = "scan"
    PIPELINE = "pipelined map"
    SORT_GROUP = "sort-based group"
    HASH_JOIN = "hash join"
    NESTED_LOOP = "nested-loop cross"
    SORT_COGROUP = "sort-based co-group"
    COLLECT = "collect"


@dataclass(frozen=True, slots=True)
class PhysNode:
    """One operator of a physical execution plan."""

    logical: Node
    ships: tuple[Ship, ...]
    local: LocalStrategy
    build_side: int | None
    children: tuple["PhysNode", ...]
    est: EstStats
    cost_self: float
    cost_total: float
    partitioning: Partitioning

    @property
    def name(self) -> str:
        return self.logical.op.name

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        ships = ", ".join(s.describe() for s in self.ships) or "-"
        build = f", build={self.build_side}" if self.build_side is not None else ""
        lines = [
            f"{pad}{self.name} [{self.local.value}{build}] ships: {ships} "
            f"(rows~{self.est.rows:.0f}, cost~{self.cost_total:.3f}s)"
        ]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def _keep_partitionings(
    parts: Partitioning, writes: frozenset[Attribute]
) -> Partitioning:
    return frozenset(p for p in parts if not (p & writes))


def _compatible(parts: Partitioning, key: frozenset[Attribute]) -> bool:
    """A partitioning on P co-locates every K-group when P is a subset of K."""
    return any(p <= key for p in parts)


class PhysicalOptimizer:
    def __init__(
        self,
        ctx: PlanContext,
        estimator: CardinalityEstimator,
        params: CostParams,
    ) -> None:
        self.ctx = ctx
        self.est = estimator
        self.params = params

    # -- public ------------------------------------------------------------

    def optimize(self, body: Node) -> PhysNode:
        options = self._options(body)
        best = min(options, key=lambda p: p.cost_total)
        return best

    # -- option generation -----------------------------------------------------

    def _options(self, node: Node) -> list[PhysNode]:
        op = node.op
        if isinstance(op, Source):
            return [self._source(node)]
        if isinstance(op, Sink):
            return [
                self._wrap(node, (Ship(ShipKind.FORWARD),), LocalStrategy.COLLECT,
                           None, (child,), 0.0, child.partitioning)
                for child in self._options(node.only_child)
            ]
        if isinstance(op, MapOp):
            return self._prune(
                [self._map(node, c) for c in self._options(node.only_child)]
            )
        if isinstance(op, ReduceOp):
            return self._prune(
                [self._reduce(node, c) for c in self._options(node.only_child)]
            )
        if isinstance(op, (MatchOp, CoGroupOp, CrossOp)):
            out: list[PhysNode] = []
            for left in self._options(node.children[0]):
                for right in self._options(node.children[1]):
                    out.extend(self._binary(node, left, right))
            return self._prune(out)
        raise OptimizationError(f"cannot plan {op!r}")  # pragma: no cover

    def _prune(self, options: list[PhysNode]) -> list[PhysNode]:
        """Keep the cheapest option per partitioning property."""
        best: dict[Partitioning, PhysNode] = {}
        for option in options:
            current = best.get(option.partitioning)
            if current is None or option.cost_total < current.cost_total:
                best[option.partitioning] = option
        return list(best.values())

    # -- helpers --------------------------------------------------------------

    def _wrap(
        self,
        node: Node,
        ships: tuple[Ship, ...],
        local: LocalStrategy,
        build_side: int | None,
        children: tuple[PhysNode, ...],
        cost_self: float,
        partitioning: Partitioning,
    ) -> PhysNode:
        total = cost_self + sum(c.cost_total for c in children)
        return PhysNode(
            logical=node,
            ships=ships,
            local=local,
            build_side=build_side,
            children=children,
            est=self.est.estimate(node),
            cost_self=cost_self,
            cost_total=total,
            partitioning=partitioning,
        )

    def _udf_cpu(self, node: Node) -> float:
        est = self.est.estimate(node)
        hint = self.est.hints_for(node.op.name)
        params = self.params
        units = est.calls * hint.cpu_per_call + est.rows * params.record_overhead
        return params.cpu_seconds(units)

    # -- per-operator planning ---------------------------------------------------

    def _source(self, node: Node) -> PhysNode:
        est = self.est.estimate(node)
        cost = self.params.disk_seconds(est.bytes)
        return self._wrap(
            node, (), LocalStrategy.SCAN, None, (), cost, RANDOM
        )

    def _map(self, node: Node, child: PhysNode) -> PhysNode:
        props = self.ctx.props(node.op)
        cost = self._udf_cpu(node)
        parts = _keep_partitionings(child.partitioning, props.writes)
        return self._wrap(
            node,
            (Ship(ShipKind.FORWARD),),
            LocalStrategy.PIPELINE,
            None,
            (child,),
            cost,
            parts,
        )

    def _reduce(self, node: Node, child: PhysNode) -> PhysNode:
        op = node.op
        assert isinstance(op, ReduceOp)
        params = self.params
        key = frozenset(op.key_attrs())
        in_est = child.est
        cost = 0.0
        if _compatible(child.partitioning, key):
            ship = Ship(ShipKind.FORWARD)
        else:
            ship = Ship(ShipKind.PARTITION, op.key_attr_tuple())
            cost += params.net_seconds(params.partition_bytes(in_est.bytes))
        cost += params.cpu_seconds(params.sort_units(in_est.rows))
        cost += params.disk_seconds(params.spill_bytes(in_est.bytes))
        cost += self._udf_cpu(node)
        return self._wrap(
            node,
            (ship,),
            LocalStrategy.SORT_GROUP,
            None,
            (child,),
            cost,
            frozenset({key}),
        )

    def _binary(
        self, node: Node, left: PhysNode, right: PhysNode
    ) -> list[PhysNode]:
        op = node.op
        if isinstance(op, MatchOp):
            return self._match(node, left, right)
        if isinstance(op, CrossOp):
            return self._cross(node, left, right)
        if isinstance(op, CoGroupOp):
            return [self._cogroup(node, left, right)]
        raise OptimizationError(f"cannot plan {op!r}")  # pragma: no cover

    def _match(
        self, node: Node, left: PhysNode, right: PhysNode
    ) -> list[PhysNode]:
        op = node.op
        assert isinstance(op, MatchOp)
        params = self.params
        props = self.ctx.props(op)
        lkey = frozenset(op.left_key_attrs())
        rkey = frozenset(op.right_key_attrs())
        udf_cost = self._udf_cpu(node)
        out: list[PhysNode] = []

        # (a) repartition both sides, hash join (build on the smaller side)
        cost = 0.0
        ships: list[Ship] = []
        for child, key, key_tuple in (
            (left, lkey, op.left_key_attrs()),
            (right, rkey, op.right_key_attrs()),
        ):
            if _compatible(child.partitioning, key):
                ships.append(Ship(ShipKind.FORWARD))
            else:
                ships.append(Ship(ShipKind.PARTITION, key_tuple))
                cost += params.net_seconds(params.partition_bytes(child.est.bytes))
        build = 0 if left.est.bytes <= right.est.bytes else 1
        probe = 1 - build
        sides = (left, right)
        cost += params.cpu_seconds(
            sides[build].est.rows * params.build_unit
            + sides[probe].est.rows * params.probe_unit
        )
        cost += params.disk_seconds(params.spill_bytes(sides[build].est.bytes))
        cost += udf_cost
        # After a partitioned join only the join keys are valid partitioning
        # properties: prior partitionings were destroyed by the shuffle.
        parts = _keep_partitionings(frozenset({lkey, rkey}), props.writes)
        out.append(
            self._wrap(node, tuple(ships), LocalStrategy.HASH_JOIN, build,
                       (left, right), cost, parts)
        )

        # (b)/(c) broadcast one side, forward the other, build on broadcast
        for build_side in (0, 1):
            build_child = sides[build_side]
            probe_child = sides[1 - build_side]
            cost = params.net_seconds(params.broadcast_bytes(build_child.est.bytes))
            cost += params.cpu_seconds_single(
                build_child.est.rows * params.build_unit
            )
            cost += params.cpu_seconds(probe_child.est.rows * params.probe_unit)
            cost += params.disk_seconds(
                params.spill_bytes(build_child.est.bytes * params.degree)
            )
            cost += udf_cost
            ships = [Ship(ShipKind.FORWARD), Ship(ShipKind.FORWARD)]
            ships[build_side] = Ship(ShipKind.BROADCAST)
            parts = _keep_partitionings(probe_child.partitioning, props.writes)
            out.append(
                self._wrap(node, tuple(ships), LocalStrategy.HASH_JOIN,
                           build_side, (left, right), cost, parts)
            )
        return out

    def _cross(self, node: Node, left: PhysNode, right: PhysNode) -> list[PhysNode]:
        params = self.params
        props = self.ctx.props(node.op)
        pairs = self.est.estimate(node).calls
        out: list[PhysNode] = []
        for build_side in (0, 1):
            sides = (left, right)
            build_child = sides[build_side]
            probe_child = sides[1 - build_side]
            cost = params.net_seconds(params.broadcast_bytes(build_child.est.bytes))
            cost += params.cpu_seconds(pairs * params.cross_unit)
            cost += self._udf_cpu(node)
            ships = [Ship(ShipKind.FORWARD), Ship(ShipKind.FORWARD)]
            ships[build_side] = Ship(ShipKind.BROADCAST)
            parts = _keep_partitionings(probe_child.partitioning, props.writes)
            out.append(
                self._wrap(node, tuple(ships), LocalStrategy.NESTED_LOOP,
                           build_side, (left, right), cost, parts)
            )
        return out

    def _cogroup(self, node: Node, left: PhysNode, right: PhysNode) -> PhysNode:
        op = node.op
        assert isinstance(op, CoGroupOp)
        params = self.params
        props = self.ctx.props(op)
        cost = 0.0
        ships = []
        for child, key, key_tuple in (
            (left, frozenset(op.left_key_attrs()), op.left_key_attrs()),
            (right, frozenset(op.right_key_attrs()), op.right_key_attrs()),
        ):
            if _compatible(child.partitioning, key):
                ships.append(Ship(ShipKind.FORWARD))
            else:
                ships.append(Ship(ShipKind.PARTITION, key_tuple))
                cost += params.net_seconds(params.partition_bytes(child.est.bytes))
            cost += params.cpu_seconds(params.sort_units(child.est.rows))
            cost += params.disk_seconds(params.spill_bytes(child.est.bytes))
        cost += self._udf_cpu(node)
        parts = _keep_partitionings(
            frozenset({frozenset(op.left_key_attrs()), frozenset(op.right_key_attrs())}),
            props.writes,
        )
        return self._wrap(node, tuple(ships), LocalStrategy.SORT_COGROUP,
                          None, (left, right), cost, parts)


def optimize_physical(
    body: Node,
    ctx: PlanContext,
    estimator: CardinalityEstimator,
    params: CostParams,
) -> PhysNode:
    """Choose shipping and local strategies for one logical flow."""
    return PhysicalOptimizer(ctx, estimator, params).optimize(body)
