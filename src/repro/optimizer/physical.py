"""Cost-based physical optimization: shipping and local strategies.

For every logical alternative the physical optimizer chooses, per
operator, a *shipping strategy* for each input (forward, hash-partition,
broadcast) and a *local strategy* (pipelined map, sort-based grouping,
hash join with a build side, nested-loop cross, sort-based co-group),
tracking *interesting properties* — here, the hash-partitioning of the
data — so that, e.g., a Match can reuse the partitioning a Reduce
established (the Q15 discussion of Section 7.3).

The search is a small Volcano-style dynamic program: each node returns
its cheapest physical plan per partitioning property.

The option lists are memoized per interned logical sub-plan in a
:class:`~repro.optimizer.memo.Memo`, so one :class:`PhysicalOptimizer`
instance can be shared across every enumerated alternative of a plan
space: a subtree that appears in hundreds of alternatives is physically
optimized exactly once (hash-consing makes the memo key an identity
lookup).  The memo is a first-class subsystem: it can be passed in to be
shared across optimizer instances, invalidated along the dirty spine of
changed operators between feedback rounds, and sharded across worker
processes (see :mod:`repro.optimizer.memo`).  Binary operators
additionally apply an exact branch-and-bound cut: once every achievable
output partitioning has an option, child combinations whose summed
subtree costs cannot beat any kept option are skipped without generating
their physical variants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import OptimizationError
from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    MaterializedSource,
    ReduceOp,
    Sink,
    Source,
)
from ..core.plan import Node
from ..core.schema import Attribute
from .cardinality import CardinalityEstimator, EstStats
from .context import PlanContext
from .cost import CostParams
from .memo import Memo

Partitioning = frozenset[frozenset[Attribute]]
RANDOM: Partitioning = frozenset()


class ShipKind(enum.Enum):
    FORWARD = "forward"
    PARTITION = "partition"
    BROADCAST = "broadcast"


@dataclass(frozen=True, slots=True)
class Ship:
    kind: ShipKind
    key: tuple[Attribute, ...] | None = None

    def describe(self) -> str:
        if self.kind is ShipKind.PARTITION and self.key:
            return f"partition({', '.join(a.name for a in self.key)})"
        return self.kind.value


_FORWARD = Ship(ShipKind.FORWARD)
_BROADCAST = Ship(ShipKind.BROADCAST)
_FORWARD_SHIPS = (_FORWARD,)


class LocalStrategy(enum.Enum):
    SCAN = "scan"
    PIPELINE = "pipelined map"
    SORT_GROUP = "sort-based group"
    HASH_JOIN = "hash join"
    NESTED_LOOP = "nested-loop cross"
    SORT_COGROUP = "sort-based co-group"
    COLLECT = "collect"


@dataclass(frozen=True, slots=True, eq=False)
class PhysNode:
    """One operator of a physical execution plan.

    ``eq=False`` keeps ``object`` identity hashing/equality: the generated
    dataclass ``__hash__``/``__eq__`` would recurse over the whole subtree
    on every memo or subtree-cache lookup.  The shared Volcano memo hands
    structurally shared sub-plans around as the *same* object, so identity
    is the right equivalence for every hot lookup (engine subtree cache,
    rank bookkeeping); structural comparisons go through ``describe()``.
    """

    logical: Node
    ships: tuple[Ship, ...]
    local: LocalStrategy
    build_side: int | None
    children: tuple["PhysNode", ...]
    est: EstStats
    cost_self: float
    cost_total: float
    partitioning: Partitioning

    @property
    def name(self) -> str:
        return self.logical.op.name

    def pipeline_stages(self) -> tuple[tuple["PhysNode", ...], ...]:
        """Decompose the plan into the engine's streaming pipeline stages.

        A *stage* is one per-partition streaming pass: a pipeline breaker
        (source scan, any operator behind a non-forward ship, or a
        blocking local strategy — sort-based Reduce/CoGroup, hash-join
        build, nested-loop cross) followed by the maximal chain of
        forward-shipped Map operators (and a collecting Sink) fused on
        top of it.  Every node of the plan appears in exactly one stage;
        stages are listed in execution order (children before parents),
        each stage upstream-first.
        """
        stages: list[tuple[PhysNode, ...]] = []

        def visit(top: "PhysNode") -> None:
            chain: list[PhysNode] = []
            cur = top
            while pipelineable(cur):
                chain.append(cur)
                cur = cur.children[0]
            for child in cur.children:
                visit(child)
            chain.reverse()
            stages.append((cur, *chain))

        visit(self)
        return tuple(stages)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        ships = ", ".join(s.describe() for s in self.ships) or "-"
        build = f", build={self.build_side}" if self.build_side is not None else ""
        lines = [
            f"{pad}{self.name} [{self.local.value}{build}] ships: {ships} "
            f"(rows~{self.est.rows:.0f}, cost~{self.cost_total:.3f}s)"
        ]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def pipelineable(node: PhysNode) -> bool:
    """True when *node* fuses into the pipeline stage of its only child.

    Forward-shipped Maps stream record batches without a barrier, and a
    Sink merely collects its input; everything else — source scans,
    non-forward ships, blocking local strategies — breaks the pipeline.
    """
    op = node.logical.op
    if isinstance(op, Sink):
        return True
    return isinstance(op, MapOp) and all(
        ship.kind is ShipKind.FORWARD for ship in node.ships
    )


def _keep_partitionings(
    parts: Partitioning, writes: frozenset[Attribute]
) -> Partitioning:
    return frozenset(p for p in parts if not (p & writes))


def _compatible(parts: Partitioning, key: frozenset[Attribute]) -> bool:
    """A partitioning on P co-locates every K-group when P is a subset of K."""
    return any(p <= key for p in parts)


class PhysicalOptimizer:
    def __init__(
        self,
        ctx: PlanContext,
        estimator: CardinalityEstimator,
        params: CostParams,
        memo: Memo | None = None,
    ) -> None:
        self.ctx = ctx
        self.est = estimator
        self.params = params
        # Memo of the Volcano search: interned logical sub-plan -> pruned
        # physical options, shared across every alternative this optimizer
        # instance is asked to plan.  A caller-provided memo additionally
        # shares entries across optimizer instances, feedback rounds (via
        # dirty-spine invalidation), and worker processes.
        self._memo = memo if memo is not None else Memo(op_names=ctx.op_names)

    # -- public ------------------------------------------------------------

    @property
    def memo(self) -> Memo:
        return self._memo

    def optimize(self, body: Node) -> PhysNode:
        options = self._options(body)
        best = min(options, key=lambda p: p.cost_total)
        return best

    # -- option generation -----------------------------------------------------

    def _options(self, node: Node) -> tuple[PhysNode, ...]:
        cached = self._memo.options(node)
        if cached is None:
            cached = self._compute_options(node)
            self._memo.store(node, cached)
        return cached

    def _compute_options(self, node: Node) -> tuple[PhysNode, ...]:
        op = node.op
        if isinstance(op, Source):
            return (self._source(node),)
        if isinstance(op, Sink):
            est = self.est.estimate(node)
            return tuple(
                self._wrap(node, est, _FORWARD_SHIPS,
                           LocalStrategy.COLLECT, None, (child,), 0.0,
                           child.partitioning)
                for child in self._options(node.only_child)
            )
        if isinstance(op, MapOp):
            return self._map_options(node)
        if isinstance(op, ReduceOp):
            return self._reduce_options(node)
        if isinstance(op, (MatchOp, CoGroupOp, CrossOp)):
            return self._binary_options(node)
        raise OptimizationError(f"cannot plan {op!r}")  # pragma: no cover

    def _binary_options(self, node: Node) -> tuple[PhysNode, ...]:
        """Enumerate child-option combinations with branch-and-bound.

        ``cost_total`` of any option is at least the summed costs of its
        children, so once every *achievable* output partitioning holds an
        option, a child pair whose summed costs already reach the most
        expensive kept option cannot improve any bucket (replacement is
        strict-<) and is skipped before its variants are generated.
        """
        op = node.op
        if isinstance(op, MatchOp):
            variants = self._match_planner(node)
        elif isinstance(op, CrossOp):
            variants = self._cross_planner(node)
        elif isinstance(op, CoGroupOp):
            variants = self._cogroup_planner(node)
        else:  # pragma: no cover - defensive
            raise OptimizationError(f"cannot plan {op!r}")
        lefts = self._options(node.children[0])
        rights = self._options(node.children[1])
        buckets = self._achievable_partitionings(node, lefts, rights)
        best: dict[Partitioning, PhysNode] = {}
        threshold: float | None = None
        for left in lefts:
            for right in rights:
                if (
                    threshold is not None
                    and left.cost_total + right.cost_total >= threshold
                ):
                    continue
                for option in variants(left, right):
                    current = best.get(option.partitioning)
                    if current is None or option.cost_total < current.cost_total:
                        best[option.partitioning] = option
                if len(best) == len(buckets):
                    threshold = max(p.cost_total for p in best.values())
        return tuple(best.values())

    def _achievable_partitionings(
        self,
        node: Node,
        lefts: tuple[PhysNode, ...],
        rights: tuple[PhysNode, ...],
    ) -> frozenset[Partitioning]:
        """Every output partitioning any child combination could produce."""
        op = node.op
        writes = self.ctx.props(op).writes
        out: set[Partitioning] = set()
        if isinstance(op, (MatchOp, CoGroupOp)):
            keys = frozenset(
                {
                    frozenset(op.left_key_attrs()),
                    frozenset(op.right_key_attrs()),
                }
            )
            out.add(_keep_partitionings(keys, writes))
        if isinstance(op, (MatchOp, CrossOp)):
            # Broadcast variants preserve the probe side's partitioning.
            for side in (lefts, rights):
                for child in side:
                    out.add(_keep_partitionings(child.partitioning, writes))
        return frozenset(out)

    def _prune(self, options: list[PhysNode]) -> tuple[PhysNode, ...]:
        """Keep the cheapest option per partitioning property."""
        best: dict[Partitioning, PhysNode] = {}
        for option in options:
            current = best.get(option.partitioning)
            if current is None or option.cost_total < current.cost_total:
                best[option.partitioning] = option
        return tuple(best.values())

    # -- helpers --------------------------------------------------------------

    def _wrap(
        self,
        node: Node,
        est: EstStats,
        ships: tuple[Ship, ...],
        local: LocalStrategy,
        build_side: int | None,
        children: tuple[PhysNode, ...],
        cost_self: float,
        partitioning: Partitioning,
    ) -> PhysNode:
        total = cost_self + sum(c.cost_total for c in children)
        return PhysNode(
            logical=node,
            ships=ships,
            local=local,
            build_side=build_side,
            children=children,
            est=est,
            cost_self=cost_self,
            cost_total=total,
            partitioning=partitioning,
        )

    def _udf_cpu(self, node: Node, est: EstStats) -> float:
        hint = self.est.hints_for(node.op.name)
        params = self.params
        units = est.calls * hint.cpu_per_call + est.rows * params.record_overhead
        return params.cpu_seconds(units)

    # -- per-operator planning ---------------------------------------------------

    def _source(self, node: Node) -> PhysNode:
        est = self.est.estimate(node)
        op = node.op
        if isinstance(op, MaterializedSource):
            # An executed stage boundary: the data is an in-memory
            # checkpoint whose production was charged when the stage ran,
            # so re-reading it is free, and it arrives already hash-
            # partitioned however the executed plan left it.
            return self._wrap(
                node, est, (), LocalStrategy.SCAN, None, (), 0.0,
                op.partitioning,
            )
        cost = self.params.disk_seconds(est.bytes)
        return self._wrap(
            node, est, (), LocalStrategy.SCAN, None, (), cost, RANDOM
        )

    def _map_options(self, node: Node) -> tuple[PhysNode, ...]:
        writes = self.ctx.props(node.op).writes
        est = self.est.estimate(node)
        cost = self._udf_cpu(node, est)
        # Pick the cheapest child per output partitioning *before*
        # constructing any PhysNode: ``cost + child.cost_total`` is
        # exactly the ``cost_total`` _wrap would compute (summing a
        # 1-tuple adds a float-exact 0.0), and strict-< replacement in
        # child order reproduces _prune's first-wins tie-break.
        chosen: dict[Partitioning, tuple[float, PhysNode]] = {}
        for child in self._options(node.only_child):
            parts = _keep_partitionings(child.partitioning, writes)
            total = cost + child.cost_total
            current = chosen.get(parts)
            if current is None or total < current[0]:
                chosen[parts] = (total, child)
        return tuple(
            self._wrap(
                node,
                est,
                _FORWARD_SHIPS,
                LocalStrategy.PIPELINE,
                None,
                (child,),
                cost,
                parts,
            )
            for parts, (_, child) in chosen.items()
        )

    def _reduce_options(self, node: Node) -> tuple[PhysNode, ...]:
        op = node.op
        assert isinstance(op, ReduceOp)
        params = self.params
        key = op.key_attrs()
        key_tuple = op.key_attr_tuple()
        est = self.est.estimate(node)
        udf_cost = self._udf_cpu(node, est)
        parts = frozenset({key})
        # Every option lands in the same partitioning bucket, so compare
        # ``cost + child.cost_total`` (the exact cost_total _wrap would
        # compute) across children and construct only the winner; strict-<
        # in child order reproduces _prune's first-wins tie-break.
        best: tuple[float, float, bool, PhysNode] | None = None
        for child in self._options(node.only_child):
            in_est = child.est
            cost = 0.0
            forward = _compatible(child.partitioning, key)
            if not forward:
                cost += params.net_seconds(params.partition_bytes(in_est.bytes))
            cost += params.cpu_seconds(params.sort_units(in_est.rows))
            cost += params.disk_seconds(params.spill_bytes(in_est.bytes))
            cost += udf_cost
            total = cost + child.cost_total
            if best is None or total < best[0]:
                best = (total, cost, forward, child)
        if best is None:  # pragma: no cover - sources guarantee options
            return ()
        _, cost, forward, child = best
        ship = _FORWARD if forward else Ship(ShipKind.PARTITION, key_tuple)
        return (
            self._wrap(
                node,
                est,
                (ship,),
                LocalStrategy.SORT_GROUP,
                None,
                (child,),
                cost,
                parts,
            ),
        )

    def _match_planner(self, node: Node):
        """Per-logical-node invariants hoisted; returns a per-pair generator."""
        op = node.op
        assert isinstance(op, MatchOp)
        params = self.params
        writes = self.ctx.props(op).writes
        lkey_tuple = op.left_key_attrs()
        rkey_tuple = op.right_key_attrs()
        lkey = frozenset(lkey_tuple)
        rkey = frozenset(rkey_tuple)
        est = self.est.estimate(node)
        udf_cost = self._udf_cpu(node, est)
        # After a partitioned join only the join keys are valid partitioning
        # properties: prior partitionings were destroyed by the shuffle.
        repart_parts = _keep_partitionings(frozenset({lkey, rkey}), writes)

        def variants(left: PhysNode, right: PhysNode) -> list[PhysNode]:
            out: list[PhysNode] = []

            # (a) repartition both sides, hash join (build on the smaller side)
            cost = 0.0
            ships: list[Ship] = []
            for child, key, key_tuple in (
                (left, lkey, lkey_tuple),
                (right, rkey, rkey_tuple),
            ):
                if _compatible(child.partitioning, key):
                    ships.append(_FORWARD)
                else:
                    ships.append(Ship(ShipKind.PARTITION, key_tuple))
                    cost += params.net_seconds(
                        params.partition_bytes(child.est.bytes)
                    )
            build = 0 if left.est.bytes <= right.est.bytes else 1
            probe = 1 - build
            sides = (left, right)
            cost += params.cpu_seconds(
                sides[build].est.rows * params.build_unit
                + sides[probe].est.rows * params.probe_unit
            )
            cost += params.disk_seconds(params.spill_bytes(sides[build].est.bytes))
            cost += udf_cost
            out.append(
                self._wrap(node, est, tuple(ships), LocalStrategy.HASH_JOIN,
                           build, (left, right), cost, repart_parts)
            )

            # (b)/(c) broadcast one side, forward the other, build on broadcast
            for build_side in (0, 1):
                build_child = sides[build_side]
                probe_child = sides[1 - build_side]
                cost = params.net_seconds(
                    params.broadcast_bytes(build_child.est.bytes)
                )
                cost += params.cpu_seconds_single(
                    build_child.est.rows * params.build_unit
                )
                cost += params.cpu_seconds(probe_child.est.rows * params.probe_unit)
                cost += params.disk_seconds(
                    params.spill_bytes(build_child.est.bytes * params.degree)
                )
                cost += udf_cost
                ships = [_FORWARD, _FORWARD]
                ships[build_side] = _BROADCAST
                parts = _keep_partitionings(probe_child.partitioning, writes)
                out.append(
                    self._wrap(node, est, tuple(ships), LocalStrategy.HASH_JOIN,
                               build_side, (left, right), cost, parts)
                )
            return out

        return variants

    def _cross_planner(self, node: Node):
        params = self.params
        writes = self.ctx.props(node.op).writes
        est = self.est.estimate(node)
        pairs = est.calls
        udf_cost = self._udf_cpu(node, est)
        pair_cost = params.cpu_seconds(pairs * params.cross_unit)

        def variants(left: PhysNode, right: PhysNode) -> list[PhysNode]:
            out: list[PhysNode] = []
            sides = (left, right)
            for build_side in (0, 1):
                build_child = sides[build_side]
                probe_child = sides[1 - build_side]
                cost = params.net_seconds(
                    params.broadcast_bytes(build_child.est.bytes)
                )
                cost += pair_cost
                cost += udf_cost
                ships = [_FORWARD, _FORWARD]
                ships[build_side] = _BROADCAST
                parts = _keep_partitionings(probe_child.partitioning, writes)
                out.append(
                    self._wrap(node, est, tuple(ships), LocalStrategy.NESTED_LOOP,
                               build_side, (left, right), cost, parts)
                )
            return out

        return variants

    def _cogroup_planner(self, node: Node):
        op = node.op
        assert isinstance(op, CoGroupOp)
        params = self.params
        writes = self.ctx.props(op).writes
        lkey_tuple = op.left_key_attrs()
        rkey_tuple = op.right_key_attrs()
        lkey = frozenset(lkey_tuple)
        rkey = frozenset(rkey_tuple)
        est = self.est.estimate(node)
        udf_cost = self._udf_cpu(node, est)
        parts = _keep_partitionings(frozenset({lkey, rkey}), writes)

        def variants(left: PhysNode, right: PhysNode) -> list[PhysNode]:
            cost = 0.0
            ships = []
            for child, key, key_tuple in (
                (left, lkey, lkey_tuple),
                (right, rkey, rkey_tuple),
            ):
                if _compatible(child.partitioning, key):
                    ships.append(_FORWARD)
                else:
                    ships.append(Ship(ShipKind.PARTITION, key_tuple))
                    cost += params.net_seconds(
                        params.partition_bytes(child.est.bytes)
                    )
                cost += params.cpu_seconds(params.sort_units(child.est.rows))
                cost += params.disk_seconds(params.spill_bytes(child.est.bytes))
            cost += udf_cost
            return [
                self._wrap(node, est, tuple(ships), LocalStrategy.SORT_COGROUP,
                           None, (left, right), cost, parts)
            ]

        return variants


def optimize_physical(
    body: Node,
    ctx: PlanContext,
    estimator: CardinalityEstimator,
    params: CostParams,
) -> PhysNode:
    """Choose shipping and local strategies for one logical flow."""
    return PhysicalOptimizer(ctx, estimator, params).optimize(body)


# ---------------------------------------------------------------------------
# Admissible lower bounds (guided search)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoundEntry:
    """Lower-bound summary of one logical sub-plan.

    ``stats`` are the node's bound cardinalities — numerically identical
    to :meth:`CardinalityEstimator.estimate` (they run the same formulas
    via :meth:`~CardinalityEstimator.bound_stats_via`) but cached in the
    memo's bound table so computing bounds never spends estimate-cache
    misses.  ``possible`` is the union of every partition group any
    physical option of this subtree could output — a superset, so a key
    no possible group satisfies proves every option must repartition.
    ``cost_lb`` is an admissible total-cost bound: ``cost_lb <=
    min(option.cost_total for option in options(node))``.
    """

    stats: EstStats
    possible: frozenset[frozenset[Attribute]]
    cost_lb: float


class PlanLowerBound:
    """Admissible cheapest-possible-cost bounds over logical sub-plans.

    Mirrors each planner of :class:`PhysicalOptimizer`, keeping every
    cost term that *all* physical options of a node must pay and dropping
    only the terms that depend on which child option is chosen:

    * cardinalities, widths and UDF CPU are exact (bound stats equal the
      estimates by construction);
    * network terms for partitioned Reduce/Match/CoGroup inputs are
      charged only when no *possible* child partition group is compatible
      with the key — then every option genuinely repartitions;
    * Match/Cross take the minimum over their repartition/broadcast
      variants, each variant itself relaxed as above.

    Every cost formula is monotone non-decreasing in the terms kept, so
    each node's bound is at most any option's ``cost_self`` plus its
    children's bounds; by induction ``bound(root)`` never exceeds the
    cheapest physical plan's true cost.  Entries are memoized in
    ``memo.bounds`` (dirty-spine invalidated, since bounds depend on the
    subtree's hints and statistics exactly like estimates do).
    """

    def __init__(
        self,
        ctx: PlanContext,
        estimator: CardinalityEstimator,
        params: CostParams,
        memo: Memo,
    ) -> None:
        self.ctx = ctx
        self.est = estimator
        self.params = params
        self._bounds = memo.bounds
        # Bound writes defer dependency registration (the adopt() pattern):
        # invalidate()/dependents_of() drain this before consulting the
        # index, so eviction stays exact while the per-entry hot path
        # skips the op-names walk.
        self._pending = memo._pending
        # Per-operator invariants (join keys as frozensets, write-filtered
        # repartition properties): one operator object appears in
        # thousands of distinct nodes, so these are hoisted per op.
        self._op_keys: dict = {}

    def bound(self, node: Node) -> float:
        """Admissible lower bound on the node's cheapest physical cost."""
        cached = self._bounds.get(node)
        if cached is None:
            cached = self._compute(node)
            self._bounds[node] = cached
            self._pending.append(node)
        return cached.cost_lb

    def entry(self, node: Node) -> BoundEntry:
        cached = self._bounds.get(node)
        if cached is None:
            cached = self._compute(node)
            self._bounds[node] = cached
            self._pending.append(node)
        return cached

    def _udf_cpu(self, node: Node, est: EstStats) -> float:
        hint = self.est.hints_for(node.op.name)
        params = self.params
        units = est.calls * hint.cpu_per_call + est.rows * params.record_overhead
        return params.cpu_seconds(units)

    def _compute(self, node: Node) -> BoundEntry:
        op = node.op
        params = self.params
        entries = tuple(self.entry(child) for child in node.children)
        stats_of = {
            child: entry.stats for child, entry in zip(node.children, entries)
        }.__getitem__
        est = self.est.bound_stats_via(node, stats_of)
        if isinstance(op, Source):
            if isinstance(op, MaterializedSource):
                # Exact: the single option is free and pre-partitioned.
                return BoundEntry(est, frozenset(op.partitioning), 0.0)
            return BoundEntry(est, RANDOM, params.disk_seconds(est.bytes))
        if isinstance(op, Sink):
            child = entries[0]
            return BoundEntry(est, child.possible, child.cost_lb)
        writes = self.ctx.props(op).writes
        if isinstance(op, MapOp):
            child = entries[0]
            cost = self._udf_cpu(node, est)
            return BoundEntry(
                est,
                _keep_partitionings(child.possible, writes),
                cost + child.cost_lb,
            )
        if isinstance(op, ReduceOp):
            child = entries[0]
            key = op.key_attrs()
            cost = 0.0
            if not _compatible(child.possible, key):
                cost += params.net_seconds(params.partition_bytes(child.stats.bytes))
            cost += params.cpu_seconds(params.sort_units(child.stats.rows))
            cost += params.disk_seconds(params.spill_bytes(child.stats.bytes))
            cost += self._udf_cpu(node, est)
            return BoundEntry(est, frozenset({key}), cost + child.cost_lb)
        if isinstance(op, MatchOp):
            left, right = entries
            keys = self._op_keys.get(op)
            if keys is None:
                keys = (
                    frozenset(op.left_key_attrs()),
                    frozenset(op.right_key_attrs()),
                    _keep_partitionings(
                        frozenset(
                            {
                                frozenset(op.left_key_attrs()),
                                frozenset(op.right_key_attrs()),
                            }
                        ),
                        writes,
                    ),
                )
                self._op_keys[op] = keys
            lkey, rkey, repart_possible = keys
            sides = (left, right)
            # (a) repartition hash join: per-side net only when no possible
            # child partitioning is compatible (then every option pays it);
            # build/probe/spill terms are exact in the child estimates.
            self_lb = 0.0
            for child, key in ((left, lkey), (right, rkey)):
                if not _compatible(child.possible, key):
                    self_lb += params.net_seconds(
                        params.partition_bytes(child.stats.bytes)
                    )
            build = 0 if left.stats.bytes <= right.stats.bytes else 1
            probe = 1 - build
            self_lb += params.cpu_seconds(
                sides[build].stats.rows * params.build_unit
                + sides[probe].stats.rows * params.probe_unit
            )
            self_lb += params.disk_seconds(
                params.spill_bytes(sides[build].stats.bytes)
            )
            # (b)/(c) broadcast variants are exact in the child estimates.
            for build_side in (0, 1):
                b = sides[build_side].stats
                p = sides[1 - build_side].stats
                cost = params.net_seconds(params.broadcast_bytes(b.bytes))
                cost += params.cpu_seconds_single(b.rows * params.build_unit)
                cost += params.cpu_seconds(p.rows * params.probe_unit)
                cost += params.disk_seconds(
                    params.spill_bytes(b.bytes * params.degree)
                )
                if cost < self_lb:
                    self_lb = cost
            possible = repart_possible | _keep_partitionings(
                left.possible | right.possible, writes
            )
            return BoundEntry(
                est,
                possible,
                self_lb
                + self._udf_cpu(node, est)
                + left.cost_lb
                + right.cost_lb,
            )
        if isinstance(op, CrossOp):
            left, right = entries
            self_lb = min(
                params.net_seconds(params.broadcast_bytes(side.stats.bytes))
                for side in (left, right)
            )
            self_lb += params.cpu_seconds(est.calls * params.cross_unit)
            self_lb += self._udf_cpu(node, est)
            possible = _keep_partitionings(left.possible | right.possible, writes)
            return BoundEntry(
                est, possible, self_lb + left.cost_lb + right.cost_lb
            )
        if isinstance(op, CoGroupOp):
            left, right = entries
            keys = self._op_keys.get(op)
            if keys is None:
                keys = (
                    frozenset(op.left_key_attrs()),
                    frozenset(op.right_key_attrs()),
                )
                self._op_keys[op] = keys
            lkey, rkey = keys
            cost = 0.0
            for child, key in ((left, lkey), (right, rkey)):
                if not _compatible(child.possible, key):
                    cost += params.net_seconds(
                        params.partition_bytes(child.stats.bytes)
                    )
                cost += params.cpu_seconds(params.sort_units(child.stats.rows))
                cost += params.disk_seconds(params.spill_bytes(child.stats.bytes))
            cost += self._udf_cpu(node, est)
            return BoundEntry(
                est,
                _keep_partitionings(frozenset({lkey, rkey}), writes),
                cost + left.cost_lb + right.cost_lb,
            )
        raise OptimizationError(f"cannot bound {op!r}")  # pragma: no cover
