"""Plan enumeration (Section 6).

Two enumerators are provided:

* :func:`enumerate_flows` — the production enumerator: breadth-first
  closure of the input flow under all valid pairwise swaps (the set
  Algorithm 1 characterizes, computed over general trees with binary
  operators).
* :func:`enum_alternatives_chain` — a faithful transcription of the
  paper's Algorithm 1 for single-input (chain) data flows, including the
  memo table and the "descend once per distinct candidate root" rule.
  Tests assert it agrees with the closure on chains.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.errors import OptimizationError, PlanError
from ..core.operators import Sink, Source, UdfOperator
from ..core.plan import Node, signature
from .context import PlanContext
from .rules import can_swap_unary_unary, local_swaps


def _neighbors_memo(
    node: Node, ctx: PlanContext, memo: dict[Node, tuple[Node, ...]]
) -> tuple[Node, ...]:
    """All single-swap neighbors of ``node``, memoized per interned subtree.

    The closure's alternatives share almost all of their subtrees, so the
    neighbor lists of those subtrees — including every legality check they
    imply — are computed once per distinct subtree instead of once per
    occurrence in a BFS-visited plan.
    """
    cached = memo.get(node)
    if cached is not None:
        return cached
    out: list[Node] = list(local_swaps(node, ctx))
    for i, child in enumerate(node.children):
        for alt in _neighbors_memo(child, ctx, memo):
            new_children = list(node.children)
            new_children[i] = alt
            out.append(Node(node.op, tuple(new_children)))
    result = tuple(out)
    memo[node] = result
    return result


def iter_flows(
    body: Node,
    ctx: PlanContext,
    limit: int = 1_000_000,
    neighbor_memo: dict[Node, tuple[Node, ...]] | None = None,
) -> Iterator[Node]:
    """Lazily yield all flows derivable from ``body`` by valid reorderings.

    Alternatives are produced in exact breadth-first discovery order —
    identical, prefix for prefix, to :func:`enumerate_flows` — so a
    consumer that stops early (the guided search's sampler, top-k
    callers) sees the same deterministic sequence the eager enumerator
    materializes.  ``body`` must be sink-free (use
    :func:`repro.core.plan.body`); the original flow is always yielded
    first.

    ``neighbor_memo`` may be a caller-owned dict (the
    :class:`~repro.optimizer.memo.Memo`'s ``neighbors`` table): swap
    legality is hint-independent, so neighbor lists persist across
    optimize calls and feedback rounds and partial expansions resume for
    free.
    """
    if isinstance(body.op, Sink):
        raise PlanError("strip the sink before enumerating (see plan.body)")
    if neighbor_memo is None:
        neighbor_memo = {}
    # Nodes are hash-consed, so membership in the seen-set is an O(1)
    # identity check — no signatures are recomputed per BFS neighbor.
    seen: set[Node] = {body}
    queue: deque[Node] = deque([body])
    yield body
    while queue:
        current = queue.popleft()
        for alternative in _neighbors_memo(current, ctx, neighbor_memo):
            if alternative in seen:
                continue
            if len(seen) >= limit:
                raise OptimizationError(
                    f"enumeration exceeded {limit} alternatives"
                )
            seen.add(alternative)
            queue.append(alternative)
            yield alternative


def enumerate_flows(
    body: Node,
    ctx: PlanContext,
    limit: int = 1_000_000,
    neighbor_memo: dict[Node, tuple[Node, ...]] | None = None,
) -> list[Node]:
    """All data flows derivable from ``body`` by valid reorderings.

    ``body`` must be sink-free (use :func:`repro.core.plan.body`); the
    original flow is always element 0 of the result.
    """
    return list(iter_flows(body, ctx, limit, neighbor_memo))


def count_alternatives(body: Node, ctx: PlanContext) -> int:
    return len(enumerate_flows(body, ctx))


# ---------------------------------------------------------------------------
# Algorithm 1 (paper pseudocode, single-input operators)
# ---------------------------------------------------------------------------


def enum_alternatives_chain(flow: Node, ctx: PlanContext) -> list[Node]:
    """Paper Algorithm 1 over a chain flow (sources, sinks, unary operators).

    The memo table is keyed on the interned sub-flow node itself, which
    plays the role of ``getMTabKey`` (hash-consing makes the structural
    key an identity lookup).
    """
    memo: dict[Node, frozenset[Node]] = {}
    result = _enum_chain(flow, ctx, memo)
    return sorted(result, key=signature)


def _enum_chain(
    flow: Node, ctx: PlanContext, memo: dict[Node, frozenset[Node]]
) -> frozenset[Node]:
    cached = memo.get(flow)
    if cached is not None:
        return cached

    root = flow.op
    if isinstance(root, Source):
        alts: frozenset[Node] = frozenset({flow})
    elif isinstance(root, Sink):
        alts = frozenset(
            Node(root, (alt,)) for alt in _enum_chain(flow.only_child, ctx, memo)
        )
    elif isinstance(root, UdfOperator) and root.arity == 1:
        collected: set[Node] = set()
        candidates: set[UdfOperator] = set()
        for without_root in _enum_chain(flow.only_child, ctx, memo):
            # add r back on top of each alternative of D-r (line 21)
            collected.add(Node(root, (without_root,)))
            s = without_root.op
            if (
                isinstance(s, UdfOperator)
                and s.arity == 1
                and s not in candidates
                and can_swap_unary_unary(root, s, ctx)
            ):
                candidates.add(s)
                # replace s by r, enumerate, then append s (lines 24-27)
                pushed_down = Node(root, without_root.children)
                for sub in _enum_chain(pushed_down, ctx, memo):
                    collected.add(Node(s, (sub,)))
        alts = frozenset(collected)
    else:
        raise PlanError(
            "Algorithm 1 as printed handles single-input operators only; "
            "use enumerate_flows for trees with binary operators"
        )
    memo[flow] = alts
    return alts
