"""Pairwise reordering rules over plan trees (Section 4).

Three swap families cover every operator combination the paper proves:

* **S1 — unary/unary** (Theorems 1 and 2, Reduce/Reduce): two adjacent
  unary operators exchange positions.
* **S2 — unary/binary** (Theorems 3 and 4, invariant grouping, CoGroup
  via the tagged-union argument of Section 4.3.2): a unary operator above
  a binary one descends into one input side, or ascends back out of it.
* **S3 — binary/binary rotations** (Lemma 1 generalized to all Match and
  Cross combinations): ``u(v(A,B), C) -> v(A, u(B,C))`` and
  ``u(v(A,B), C) -> v(u(A,C), B)`` plus mirror images, which together
  yield bushy join orders.

``neighbors`` generates every plan reachable by one legal swap anywhere in
the tree; the enumeration module computes the closure.
"""

from __future__ import annotations

from typing import Iterator

from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MatchOp,
    ReduceOp,
    UdfOperator,
)
from ..core.plan import Node
from .conditions import kgp_kat, kgp_map, kgp_match_side, roc
from .context import PlanContext


def can_swap_unary_unary(
    upper: UdfOperator, lower: UdfOperator, ctx: PlanContext
) -> bool:
    """Theorem 1 (Map/Map), Theorem 2 (Map/Reduce), and Reduce/Reduce."""
    key = (can_swap_unary_unary, upper, lower)
    cached = ctx.rule_cache.get(key)
    if cached is None:
        cached = _can_swap_unary_unary(upper, lower, ctx)
        ctx.rule_cache[key] = cached
    return cached


def _can_swap_unary_unary(
    upper: UdfOperator, lower: UdfOperator, ctx: PlanContext
) -> bool:
    pu = ctx.props(upper)
    pl = ctx.props(lower)
    if not roc(pu, pl):
        return False
    upper_kat = isinstance(upper, ReduceOp)
    lower_kat = isinstance(lower, ReduceOp)
    if upper_kat and lower_kat:
        return kgp_kat(upper, pu, lower.key_attrs()) and kgp_kat(
            lower, pl, upper.key_attrs()
        )
    if upper_kat:
        return kgp_map(pl, upper.key_attrs())
    if lower_kat:
        return kgp_map(pu, lower.key_attrs())
    return True


def can_exchange_unary_binary(
    unary: UdfOperator,
    binary: UdfOperator,
    side: int,
    other_node: Node,
    ctx: PlanContext,
) -> bool:
    key = (can_exchange_unary_binary, unary, binary, side, other_node)
    cached = ctx.rule_cache.get(key)
    if cached is None:
        cached = _can_exchange_unary_binary(unary, binary, side, other_node, ctx)
        ctx.rule_cache[key] = cached
    return cached


def _can_exchange_unary_binary(
    unary: UdfOperator,
    binary: UdfOperator,
    side: int,
    other_node: Node,
    ctx: PlanContext,
) -> bool:
    """Can ``unary`` sit above the binary or equivalently inside input
    ``side``?  The condition is the same in both directions:

    * ROC between the two UDFs,
    * the unary touches no attribute of the *other* input side
      (Theorem 3's ``(Rf u Wf) n S = empty``),
    * a Map moving past a CoGroup must preserve the CoGroup's key groups
      (Theorem 2 through the tagged-union argument),
    * a Reduce moving past a Match needs the invariant grouping
      conditions (Theorem 4 / Section 4.3.2): the Reduce groups on a
      superset of the Match key of its side, and the Match behaves as a
      group-preserving per-record mapper of that side (other-side key
      unique, per-pair emission at most one, decisions inside the key).
    """
    pu = ctx.props(unary)
    pb = ctx.props(binary)
    if not roc(pu, pb):
        return False
    other_attrs = ctx.out_attrs(other_node)
    if (pu.reads | pu.writes) & other_attrs:
        return False
    if isinstance(binary, CoGroupOp):
        # The paper's tagged-union argument (Section 4.3.2) pushes a Map
        # below a CoGroup by *rewriting* the UDF with a lineage guard
        # (f_R ignores S-tagged records).  A non-intrusive optimizer cannot
        # perform that rewrite: above the CoGroup the Map also sees outputs
        # of right-only key groups (which lack left-side attributes), below
        # it it does not — the plans differ observably.  Without lineage
        # information we must stay conservative and keep the CoGroup as a
        # reorder barrier.
        return False
    if isinstance(unary, ReduceOp):
        if not isinstance(binary, MatchOp):
            return False  # Reduce past Cross needs |R| = 1; not supported
        side_key = frozenset(binary.side_key_attrs(side))
        if not side_key <= unary.key_attrs():
            return False
        return kgp_match_side(ctx, binary, side, other_node, unary.key_attrs())
    return True


def can_rotate(
    upper: UdfOperator,
    lower: UdfOperator,
    stay_node: Node,
    outer_node: Node,
    ctx: PlanContext,
) -> bool:
    key = (can_rotate, upper, lower, stay_node, outer_node)
    cached = ctx.rule_cache.get(key)
    if cached is None:
        cached = _can_rotate(upper, lower, stay_node, outer_node, ctx)
        ctx.rule_cache[key] = cached
    return cached


def _can_rotate(
    upper: UdfOperator,
    lower: UdfOperator,
    stay_node: Node,
    outer_node: Node,
    ctx: PlanContext,
) -> bool:
    """Binary/binary rotation legality (Lemma 1 generalized).

    ``upper`` currently consumes ``lower``'s output; after rotation
    ``lower`` is on top.  ``stay_node`` is the lower operator's child that
    stays directly under it; ``outer_node`` is the upper operator's other
    input, which descends below the lower operator.
    """
    if not isinstance(upper, (MatchOp, CrossOp)):
        return False
    if not isinstance(lower, (MatchOp, CrossOp)):
        return False
    pu = ctx.props(upper)
    pv = ctx.props(lower)
    if not roc(pu, pv):
        return False
    if pu.accessed & ctx.out_attrs(stay_node):
        return False
    if pv.accessed & ctx.out_attrs(outer_node):
        return False
    return True


# ---------------------------------------------------------------------------
# Neighbor generation
# ---------------------------------------------------------------------------


def _is_udf(node: Node) -> bool:
    return isinstance(node.op, UdfOperator)


def local_swaps(node: Node, ctx: PlanContext) -> Iterator[Node]:
    """All single swaps whose *upper* operator is this node's root."""
    op = node.op
    if not isinstance(op, UdfOperator):
        return
    if op.arity == 1:
        child = node.children[0]
        cop = child.op
        if not isinstance(cop, UdfOperator):
            return
        if cop.arity == 1:
            if can_swap_unary_unary(op, cop, ctx):
                yield Node(cop, (Node(op, child.children),))
        else:
            for side in (0, 1):
                other = child.children[1 - side]
                if can_exchange_unary_binary(op, cop, side, other, ctx):
                    pushed = Node(op, (child.children[side],))
                    new_children = list(child.children)
                    new_children[side] = pushed
                    yield Node(cop, tuple(new_children))
        return
    # Binary root: lift a unary out of an input, or rotate with a binary child.
    for side in (0, 1):
        inner = node.children[side]
        other = node.children[1 - side]
        iop = inner.op
        if not isinstance(iop, UdfOperator):
            continue
        if iop.arity == 1:
            if can_exchange_unary_binary(iop, op, side, other, ctx):
                new_children = list(node.children)
                new_children[side] = inner.children[0]
                yield Node(iop, (Node(op, tuple(new_children)),))
        elif isinstance(iop, (MatchOp, CrossOp)) and isinstance(
            op, (MatchOp, CrossOp)
        ):
            for taken_side in (0, 1):
                taken = inner.children[taken_side]
                stay = inner.children[1 - taken_side]
                if can_rotate(op, iop, stay, other, ctx):
                    new_upper_children = list(node.children)
                    new_upper_children[side] = taken
                    new_upper = Node(op, tuple(new_upper_children))
                    new_lower_children = list(inner.children)
                    new_lower_children[taken_side] = new_upper
                    yield Node(iop, tuple(new_lower_children))


def neighbors(node: Node, ctx: PlanContext) -> Iterator[Node]:
    """Every plan reachable from ``node`` by exactly one legal swap."""
    yield from local_swaps(node, ctx)
    for i, child in enumerate(node.children):
        for alt in neighbors(child, ctx):
            new_children = list(node.children)
            new_children[i] = alt
            yield Node(node.op, tuple(new_children))
