"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro analyze tpch_q7
    python -m repro enumerate clickstream --mode manual
    python -m repro experiment textmining --picks 10
    python -m repro experiment tpch_q7 --scale 10
    python -m repro experiment clickstream --feedback-rounds 2 --stats-store stats.json
    python -m repro experiment clickstream --feedback-rounds 2 --stats-store stats.sqlite
    python -m repro experiment tpch_q7 --jobs 4
    python -m repro experiment tpch_q7 --search guided --top-k 3
    python -m repro experiment textmining --scale 400 --engine-jobs 4
    python -m repro experiment clickstream --midquery --switch-threshold 1.1
    python -m repro experiment clickstream --trace trace.json
    python -m repro trace summarize trace.json
    python -m repro stats migrate stats.json stats.sqlite
    python -m repro serve --port 7411 --stats-dir stats/
    python -m repro plan tpch_q7 --server 127.0.0.1:7411 --tenant acme
"""

from __future__ import annotations

import argparse
import os
import sys

from .bench import render_figure, render_table, run_experiment
from .core import AnnotationMode, body
from .core.operators import UdfOperator
from .core.plan import iter_nodes, render_tree
from .feedback.midquery import DEFAULT_SWITCH_THRESHOLD
from .optimizer import PlanContext, enumerate_flows
from .workloads import ALL_WORKLOADS


def _mode(name: str) -> AnnotationMode:
    return AnnotationMode.MANUAL if name == "manual" else AnnotationMode.SCA


def cmd_list(_args) -> int:
    rows = []
    for name, build in ALL_WORKLOADS.items():
        workload = build()
        rows.append((name, workload.description))
    print(render_table(rows, ("workload", "description")))
    return 0


def cmd_analyze(args) -> int:
    workload = ALL_WORKLOADS[args.workload](scale_factor=args.scale)
    ctx = PlanContext(workload.catalog, _mode(args.mode))
    print(f"Implemented flow for {workload.name}:")
    print(render_tree(body(workload.plan)))
    print(f"\nDerived properties ({args.mode}):")
    rows = []
    for node_ in iter_nodes(workload.plan):
        op = node_.op
        if not isinstance(op, UdfOperator):
            continue
        props = ctx.props(op)
        hi = props.emit_bounds.hi
        rows.append(
            (
                op.name,
                ", ".join(sorted(a.name for a in props.reads)) or "-",
                ", ".join(sorted(a.name for a in props.writes)) or "-",
                f"[{props.emit_bounds.lo}, {'inf' if hi is None else hi}]",
                "yes" if props.conservative else "no",
            )
        )
    print(render_table(rows, ("operator", "read set", "write set", "emits", "conservative")))
    return 0


def cmd_enumerate(args) -> int:
    workload = ALL_WORKLOADS[args.workload](scale_factor=args.scale)
    ctx = PlanContext(workload.catalog, _mode(args.mode))
    flows = enumerate_flows(body(workload.plan), ctx)
    print(f"{len(flows)} valid reordered data flows ({args.mode} properties):")
    limit = args.limit if args.limit > 0 else len(flows)
    from .core.plan import linearize

    for flow in flows[:limit]:
        print("  ", " -> ".join(linearize(flow)))
    if limit < len(flows):
        print(f"   ... and {len(flows) - limit} more")
    return 0


def cmd_experiment(args) -> int:
    workload = ALL_WORKLOADS[args.workload](scale_factor=args.scale)
    tracer = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
    outcome = run_experiment(
        workload,
        picks=args.picks,
        mode=_mode(args.mode),
        execute_all=args.all,
        feedback_rounds=args.feedback_rounds,
        stats_store=args.stats_store,
        stats_backend=args.stats_backend,
        jobs=args.jobs,
        midquery=args.midquery,
        switch_threshold=args.switch_threshold,
        engine_jobs=args.engine_jobs,
        search=args.search,
        top_k=args.top_k,
        tracer=tracer,
    )
    print(render_figure(outcome, f"Experiment — {workload.name}"))
    if outcome.feedback is not None:
        print()
        print(outcome.feedback.describe())
        if args.stats_store:
            print(f"statistics store saved to {args.stats_store}")
    if outcome.midquery is not None:
        print()
        print(outcome.midquery.describe())
    if tracer is not None:
        from .obs import write_prometheus, write_trace

        count = write_trace(tracer, args.trace, fmt=args.trace_format)
        print(f"\ntrace: {count} span(s) written to {args.trace}")
        if args.trace_metrics:
            write_prometheus(tracer, args.trace_metrics)
            print(f"metrics snapshot written to {args.trace_metrics}")
    return 0


def cmd_trace_summarize(args) -> int:
    from .obs import load_trace, render_summary

    try:
        spans = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(render_summary(spans, top=args.top))
    return 0


def cmd_trace(args) -> int:
    return args.trace_fn(args)


def cmd_stats_migrate(args) -> int:
    from pathlib import Path

    from .core.errors import FeedbackError
    from .feedback.store import StatisticsStore

    if Path(args.dst).exists() and not args.force:
        print(
            f"destination {args.dst} already exists (use --force to merge "
            "the source into it)",
            file=sys.stderr,
        )
        return 2
    try:
        source = StatisticsStore.open(args.src, backend=args.from_backend)
        migrated = source.migrate_to(args.dst, backend=args.to_backend)
    except FeedbackError as exc:
        print(f"migration failed: {exc}", file=sys.stderr)
        return 1
    if migrated.estimator_view() != source.estimator_view():
        print(
            "migration failed verification: destination estimator view "
            "differs from the source",
            file=sys.stderr,
        )
        return 1
    print(
        f"migrated {args.src} -> {args.dst}: "
        f"{len(source.nodes)} node(s), {len(source.sources)} source(s), "
        f"{len(source.plans)} plan(s), store version {source.version} "
        "(estimator view verified identical)"
    )
    return 0


def cmd_stats(args) -> int:
    return args.stats_fn(args)


def cmd_serve(args) -> int:
    import asyncio

    from .serve import PlanningServer, ServerConfig

    tracer = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        stats_dir=args.stats_dir,
        stats_backend=args.stats_backend,
        search=args.search,
        default_top_k=args.top_k,
        max_queue=args.max_queue,
        tenant_inflight=args.tenant_inflight,
        max_tenants=args.max_tenants,
    )
    server = PlanningServer(config, tracer=tracer)

    async def run() -> None:
        await server.start()
        if server.metrics_port is not None:
            print(
                f"metrics on http://{config.host}:{server.metrics_port}/metrics",
                flush=True,
            )
        # The launcher contract: this line, last, means "port is bound".
        print(f"serving on {config.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    if tracer is not None:
        from pathlib import Path

        from .obs import write_trace

        count = write_trace(tracer, args.trace, fmt=args.trace_format)
        print(f"trace: {count} span(s) written to {args.trace}")
        if args.trace_metrics:
            # The serve.* counters live on the server's own registry
            # (always collected, tracing or not) — snapshot that, not
            # the span sink's.
            Path(args.trace_metrics).write_text(server.prometheus_text())
            print(f"metrics snapshot written to {args.trace_metrics}")
    return 0


def cmd_plan(args) -> int:
    import json

    from .serve import PlanningClient, ServeError

    host, _, port = args.server.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        print(
            f"--server must be HOST:PORT, got {args.server!r}",
            file=sys.stderr,
        )
        return 2
    try:
        with PlanningClient(host or "127.0.0.1", port_number) as client:
            response = client.plan(
                args.workload,
                tenant=args.tenant,
                mode=args.mode,
                scale=args.scale,
                top_k=args.top_k,
            )
    except ServeError as exc:
        print(f"plan request failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.server}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    print(
        f"{response['workload']} (tenant {response['tenant']}, "
        f"{response['cache']}, stats {response['fingerprint']}): "
        f"cost {response['cost']:.6g}"
    )
    print("  " + " -> ".join(response["plan"]))
    for ranked in response["ranked"]:
        print(f"  #{ranked['rank']}: cost {ranked['cost']:.6g}")
    print(
        f"  planned in {response['planning_seconds'] * 1e3:.2f} ms, "
        f"served in {response['serve_seconds'] * 1e3:.2f} ms"
    )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be an integer >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Opening the Black Boxes in Data Flow "
        "Optimization' (PVLDB 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(fn=cmd_list)

    for name, fn, extra in (
        ("analyze", cmd_analyze, False),
        ("enumerate", cmd_enumerate, True),
        ("experiment", cmd_experiment, False),
    ):
        p = sub.add_parser(name, help=f"{name} a workload")
        p.add_argument("workload", choices=sorted(ALL_WORKLOADS))
        p.add_argument("--mode", choices=("sca", "manual"), default="sca")
        p.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="datagen scale factor (rows ~ scale x workload default)",
        )
        if extra:
            p.add_argument("--limit", type=int, default=25)
        if name == "experiment":
            p.add_argument("--picks", type=int, default=10)
            p.add_argument("--all", action="store_true", help="execute every plan")
            p.add_argument(
                "--feedback-rounds",
                type=int,
                default=0,
                metavar="N",
                help="adaptive re-optimization rounds fed by runtime "
                "observations (0 = feedback off, the plain protocol)",
            )
            p.add_argument(
                "--stats-store",
                default=None,
                metavar="PATH",
                help="persistent statistics store: loaded if present (warm "
                "start), kept current transactionally during the run; the "
                "backend is sniffed from the extension (.sqlite/.sqlite3/"
                ".db -> sqlite-WAL, anything else -> JSON)",
            )
            p.add_argument(
                "--stats-backend",
                choices=("json", "sqlite"),
                default=None,
                help="force the statistics-store backend instead of "
                "sniffing it from the --stats-store extension",
            )
            p.add_argument(
                "--jobs",
                type=int,
                default=1,
                metavar="N",
                help="worker processes for plan costing (fork-based; "
                "results are bit-identical to --jobs 1)",
            )
            p.add_argument(
                "--engine-jobs",
                type=_positive_int,
                default=1,
                metavar="N",
                help="worker processes for partition-parallel stage "
                "execution (fork-based; records, metrics, and modeled "
                "seconds are bit-identical to --engine-jobs 1; falls "
                "back to serial with a warning where fork is "
                "unavailable)",
            )
            p.add_argument(
                "--search",
                choices=("eager", "guided"),
                default="eager",
                help="plan search strategy: 'eager' costs every enumerated "
                "alternative and ranks them all; 'guided' runs the "
                "best-first, cost-guided search that costs only frontier "
                "heads and returns the top --top-k plans (bit-identical "
                "to the eager prefix)",
            )
            p.add_argument(
                "--top-k",
                type=_positive_int,
                default=None,
                metavar="K",
                help="number of top-ranked plans to produce (guided search "
                "proves exactly this many; eager ranks everything then "
                "trims). Default: 1 under --search guided, unlimited "
                "under eager",
            )
            p.add_argument(
                "--midquery",
                action="store_true",
                help="execute the picked plan stage-by-stage, re-planning "
                "the unexecuted suffix at every pipeline-stage boundary "
                "(with feedback rounds: the deployed pick runs this way)",
            )
            p.add_argument(
                "--switch-threshold",
                type=float,
                default=DEFAULT_SWITCH_THRESHOLD,
                metavar="X",
                help="minimum estimated-cost ratio (running suffix / "
                "re-planned suffix) before mid-query abandons the running "
                "plan; 1.0 switches on any improvement, inf never switches, "
                "below 1.0 forces a switch at every boundary (diagnostic) "
                f"(default {DEFAULT_SWITCH_THRESHOLD})",
            )
            p.add_argument(
                "--trace",
                default=None,
                metavar="PATH",
                help="write a wall-clock trace of the run (optimizer, "
                "engine stages/partitions incl. fork workers, feedback) "
                "to PATH; format sniffed from the extension (.jsonl -> "
                "span log, else Chrome trace-event JSON loadable in "
                "Perfetto) unless --trace-format overrides",
            )
            p.add_argument(
                "--trace-format",
                choices=("jsonl", "chrome"),
                default=None,
                help="trace file format (default: sniff --trace extension)",
            )
            p.add_argument(
                "--trace-metrics",
                default=None,
                metavar="PATH",
                help="also write the run's deterministic counters/gauges "
                "as a Prometheus-style text snapshot (requires --trace)",
            )
        p.set_defaults(fn=fn)

    trace = sub.add_parser("trace", help="inspect recorded traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="self-time breakdown per subsystem and span of a trace "
        "written by `repro experiment --trace`",
    )
    summarize.add_argument("trace", help="trace path (.jsonl or Chrome JSON)")
    summarize.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="span names to show in the self-time ranking (default 20)",
    )
    summarize.set_defaults(trace_fn=cmd_trace_summarize)
    trace.set_defaults(fn=cmd_trace)

    stats = sub.add_parser(
        "stats", help="manage persistent statistics stores"
    )
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)
    migrate = stats_sub.add_parser(
        "migrate",
        help="copy a statistics store into another backend "
        "(e.g. JSON -> sqlite)",
    )
    migrate.add_argument("src", help="source store path")
    migrate.add_argument("dst", help="destination store path")
    migrate.add_argument(
        "--from-backend",
        choices=("json", "sqlite"),
        default=None,
        help="force the source backend (default: sniff the extension)",
    )
    migrate.add_argument(
        "--to-backend",
        choices=("json", "sqlite"),
        default=None,
        help="force the destination backend (default: sniff the extension)",
    )
    migrate.add_argument(
        "--force",
        action="store_true",
        help="merge into an existing destination store",
    )
    migrate.set_defaults(stats_fn=cmd_stats_migrate)
    stats.set_defaults(fn=cmd_stats)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant planning server "
        "(optimizer-as-a-service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7411,
        help="TCP port (0 picks a free one; the bound port is printed)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose serve.* metrics as Prometheus text over HTTP "
        "GET /metrics on this port (0 picks a free one)",
    )
    serve.add_argument(
        "--stats-dir",
        default=None,
        metavar="DIR",
        help="directory of per-tenant statistics stores (<tenant>.sqlite; "
        "shareable with ingesting `repro experiment --stats-store` "
        "processes). Default: in-memory stores, no persistence",
    )
    serve.add_argument(
        "--stats-backend",
        choices=("json", "sqlite"),
        default="sqlite",
        help="backend for per-tenant stores under --stats-dir "
        "(default sqlite)",
    )
    serve.add_argument(
        "--search",
        choices=("eager", "guided"),
        default="guided",
        help="plan search strategy served on cache misses (default guided)",
    )
    serve.add_argument(
        "--top-k",
        type=_positive_int,
        default=1,
        metavar="K",
        help="default number of ranked plans per response (requests may "
        "override)",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        metavar="N",
        help="server-wide cap on admitted requests; beyond it requests "
        "are rejected with a 429-style error (default 64)",
    )
    serve.add_argument(
        "--tenant-inflight",
        type=_positive_int,
        default=4,
        metavar="N",
        help="per-tenant in-flight request cap (default 4)",
    )
    serve.add_argument(
        "--max-tenants",
        type=_positive_int,
        default=64,
        metavar="N",
        help="warm tenants kept resident; beyond it the least-recently-"
        "used idle tenant's memos and store handle are evicted "
        "(default 64)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the merged per-request span timeline to PATH at "
        "shutdown (format sniffed like `repro experiment --trace`)",
    )
    serve.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default=None
    )
    serve.add_argument(
        "--trace-metrics",
        default=None,
        metavar="PATH",
        help="also write a Prometheus-style metrics snapshot at shutdown "
        "(requires --trace)",
    )
    serve.set_defaults(fn=cmd_serve)

    plan = sub.add_parser(
        "plan", help="request a plan from a running `repro serve`"
    )
    plan.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    plan.add_argument(
        "--server",
        default="127.0.0.1:7411",
        metavar="HOST:PORT",
        help="planning server address (default 127.0.0.1:7411)",
    )
    plan.add_argument("--tenant", default="default")
    plan.add_argument("--mode", choices=("sca", "manual"), default=None)
    plan.add_argument("--scale", type=float, default=None)
    plan.add_argument("--top-k", type=_positive_int, default=None, metavar="K")
    plan.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON response instead of the summary",
    )
    plan.set_defaults(fn=cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an
        # error.  Detach stdout so interpreter shutdown does not raise
        # again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
