"""The long-lived, multi-tenant planning server (optimizer-as-a-service).

The optimizer core is fast because of state it accumulates — interned
plans, a warm :class:`~repro.optimizer.memo.Memo` whose bound table
re-evaluates in milliseconds, learned statistics — and a one-shot CLI
throws all of it away after every call.  :class:`PlanningServer` keeps
that state hot and serves it concurrently:

* **Per-tenant statistics.**  Each tenant owns a sqlite-WAL
  :class:`~repro.feedback.store.StatisticsStore` under ``stats_dir``
  (shareable with any ingesting process); every request first runs
  ``store.sync()``, and a foreign commit invalidates exactly the dirty
  memo spine and rotates the tenant's cache fingerprint (old entries are
  garbage-collected once no live tenant reads them) — the same exact
  invalidation contract the adaptive loop uses.
* **Per-tenant warm memos.**  One memo per (tenant, workload, mode,
  scale) plan space carries options/estimates/bounds across requests, so
  a cache *miss* after an invalidation still re-plans incrementally.
* **A shared plan cache** keyed on the full planning identity —
  ``(workload, mode, scale, top_k, statistics fingerprint)`` where the
  fingerprint hashes the tenant's ``estimator_view()``.  Two tenants
  share an entry only when their learned statistics are bit-identical
  (then the plans are too); any divergence separates the keys, so plans
  can never leak across differing tenants.  Cross-tenant hits are
  counted (``serve.cache_cross_tenant_hits``) to make that property
  observable — and assertable — from the outside.
* **Admission control.**  A bounded server-wide admission count plus a
  per-tenant in-flight cap; beyond either, requests are rejected
  immediately with a structured 429-style error instead of queueing
  unboundedly.
* **Background re-optimization.**  Hot request signatures (>=
  ``reopt_hot_hits`` lifetime hits) whose cache entries were invalidated
  are re-planned in batches off the request path, so the next client
  request after an ingest is a warm hit again.
* **Observability.**  Each request runs on its own short-lived
  :class:`~repro.obs.Tracer` (concurrent requests never share a span
  stack) that is absorbed into a server-wide sink afterwards, so
  ``--trace`` yields one merged timeline with exact per-request nesting;
  ``serve.*`` counters/gauges export as Prometheus text over an optional
  HTTP endpoint and the ``metrics`` protocol op.

Planning results are bit-identical to a direct
:meth:`Optimizer.optimize` call with the same store — the server adds
caching and scheduling, never arithmetic (pinned by the parity test).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import FeedbackError
from ..core.plan import linearize, signature_key
from ..core.udf import AnnotationMode
from ..feedback.estimator import FeedbackEstimator
from ..feedback.store import StatisticsStore
from ..obs.export import render_prometheus
from ..obs.tracer import NOOP_TRACER, MetricsRegistry, Tracer, clock
from ..optimizer.cardinality import CardinalityEstimator
from ..optimizer.memo import Memo
from ..optimizer.optimizer import Optimizer
from ..workloads import ALL_WORKLOADS
from .protocol import (
    ADMISSION_REJECTED,
    BAD_REQUEST,
    INTERNAL_ERROR,
    STORE_CONFLICT,
    UNKNOWN_WORKLOAD,
    PlanRequest,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    parse_plan_request,
)


def view_fingerprint(view: dict[str, tuple]) -> str:
    """Deterministic digest of a store's ``estimator_view()``.

    The view is the exact set of facts an estimator reads (learned
    hints, pinned observations, source overrides), so two stores with
    equal fingerprints produce bit-identical plans for every flow — the
    property that makes the fingerprint a sound plan-cache key
    component.  Hashed over a sorted canonical repr; 16 hex chars keep
    responses readable while collisions stay negligible at cache scale.
    """
    canon = repr(sorted(view.items()))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class ServerConfig:
    """Everything a :class:`PlanningServer` needs to know at startup."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (read it back from .port)
    metrics_port: int | None = None  # None = no HTTP metrics endpoint
    #: Directory of per-tenant statistics stores (``<tenant><ext>``);
    #: None serves from per-tenant in-memory stores (no persistence, no
    #: foreign ingests — benchmarking and tests).
    stats_dir: str | Path | None = None
    stats_backend: str = "sqlite"
    search: str = "guided"
    default_top_k: int = 1
    default_mode: str = "sca"
    #: Admission control: server-wide cap on admitted (queued + running)
    #: requests, and per-tenant in-flight cap.
    max_queue: int = 64
    tenant_inflight: int = 4
    #: Tenant LRU cap — the memory-pressure valve: beyond it the
    #: least-recently-used idle tenant's memos, cache entries, and store
    #: handle are dropped.
    max_tenants: int = 64
    max_cache_entries: int = 4096
    #: A request signature is "hot" after this many lifetime hits;
    #: invalidated hot entries are re-planned in the background, at most
    #: ``reopt_batch`` per pass, every ``reopt_interval`` seconds.
    reopt_hot_hits: int = 2
    reopt_batch: int = 8
    reopt_interval: float = 2.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.tenant_inflight < 1:
            raise ValueError(
                f"tenant_inflight must be >= 1, got {self.tenant_inflight}"
            )
        if self.max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {self.max_tenants}")
        if self.search not in ("eager", "guided"):
            raise ValueError(f"search must be eager|guided, got {self.search!r}")


@dataclass(slots=True)
class _CacheEntry:
    """One cached planning response (the fingerprint-keyed unit)."""

    payload: dict
    owner: str  # tenant whose request planned it
    fingerprint: str
    hits: int = 0


@dataclass(slots=True)
class TenantState:
    """Hot per-tenant state: statistics store, warm memos, hit history."""

    name: str
    store: StatisticsStore
    fingerprint: str
    #: (workload, mode, scale) -> long-lived Optimizer / warm Memo.
    optimizers: dict[tuple, Optimizer] = field(default_factory=dict)
    memos: dict[tuple, Memo] = field(default_factory=dict)
    #: Serializes this tenant's sync/plan critical section (one memo
    #: cannot be mutated concurrently); cross-tenant requests overlap.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    inflight: int = 0
    #: Lifetime hit counts per request signature (fingerprint excluded).
    hits: dict[tuple, int] = field(default_factory=dict)
    #: Hot signatures queued for background re-planning (insertion order).
    pending_reopt: "OrderedDict[tuple, PlanRequest]" = field(
        default_factory=OrderedDict
    )

    def memo_entries(self) -> int:
        return sum(memo.size() for memo in self.memos.values())


class PlanningServer:
    """Asyncio front end over the hot planning state.

    All bookkeeping (tenants, cache, counters) is touched only on the
    event-loop thread; planning and store synchronization run in worker
    threads via ``asyncio.to_thread`` under the owning tenant's lock.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        tracer: Tracer | None = None,
        workloads: dict | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        #: Span sink; None-tracer means spans are skipped but the serve
        #: counters below are always collected.
        self.sink = tracer if tracer is not None else NOOP_TRACER
        self.trace_enabled = tracer is not None
        self.metrics = MetricsRegistry()
        self.registry = workloads if workloads is not None else ALL_WORKLOADS
        self._tenants: "OrderedDict[str, TenantState]" = OrderedDict()
        self._cache: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._workloads: dict[tuple, object] = {}
        self._workload_build_lock = threading.Lock()
        self._admitted = 0
        self._started_at = clock()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        self._reopt_task: asyncio.Task | None = None
        self.port: int | None = None
        self.metrics_port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                self.config.host,
                self.config.metrics_port,
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        if self.config.reopt_interval > 0:
            self._reopt_task = asyncio.create_task(self._reopt_loop())

    async def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown` (or the shutdown op)."""
        assert self._shutdown is not None, "start() first"
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def stop(self) -> None:
        if self._reopt_task is not None:
            self._reopt_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reopt_task
            self._reopt_task = None
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        for tenant in self._tenants.values():
            tenant.store.close()
        self._tenants.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized or torn line: drop the connection
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, line: bytes) -> dict:
        try:
            payload = decode_message(line)
        except ProtocolError as exc:
            self.metrics.inc("serve.protocol_errors")
            return error_response(BAD_REQUEST, str(exc))
        op = payload.get("op", "plan")
        try:
            if op == "plan":
                return await self._handle_plan(payload)
            if op == "metrics":
                return {
                    "ok": True,
                    "prometheus": self.prometheus_text(),
                    "counters": dict(self.metrics.counters),
                    "gauges": dict(self.metrics.gauges),
                }
            if op == "ping":
                return {
                    "ok": True,
                    "pong": True,
                    "uptime_seconds": clock() - self._started_at,
                }
            if op == "shutdown":
                self.request_shutdown()
                return {"ok": True, "shutting_down": True}
        except Exception as exc:  # noqa: BLE001 - a request must never kill the server
            self.metrics.inc("serve.errors")
            return error_response(
                INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
            )
        self.metrics.inc("serve.protocol_errors")
        return error_response(BAD_REQUEST, f"unknown op {op!r}")

    # -- the request path --------------------------------------------------

    async def _handle_plan(self, payload: dict) -> dict:
        try:
            req = parse_plan_request(
                payload, self.config.default_top_k, self.config.default_mode
            )
        except ProtocolError as exc:
            self.metrics.inc("serve.protocol_errors")
            return error_response(BAD_REQUEST, str(exc))
        if req.workload not in self.registry:
            return error_response(
                UNKNOWN_WORKLOAD,
                f"unknown workload {req.workload!r} (available: "
                f"{', '.join(sorted(self.registry))})",
            )
        # Admission control: reject instead of queueing unboundedly.
        if self._admitted >= self.config.max_queue:
            return self._reject(req, "queue", "admission queue is full")
        tenant = self._tenants.get(req.tenant)
        if (
            tenant is not None
            and tenant.inflight >= self.config.tenant_inflight
        ):
            return self._reject(
                req, "tenant", f"tenant {req.tenant!r} in-flight cap reached"
            )
        self._admitted += 1
        try:
            tenant = self._get_tenant(req.tenant)
            tenant.inflight += 1
            try:
                async with tenant.lock:
                    return await self._plan_locked(tenant, req)
            finally:
                tenant.inflight -= 1
        finally:
            self._admitted -= 1

    def _reject(self, req: PlanRequest, kind: str, message: str) -> dict:
        self.metrics.inc("serve.rejected")
        self.metrics.inc(f"serve.rejected_{kind}")
        if self.trace_enabled:
            tracer = Tracer()
            with tracer.span(
                "serve.request",
                category="serve",
                tenant=req.tenant,
                workload=req.workload,
                cache="rejected",
                code=ADMISSION_REJECTED,
            ):
                pass
            self.sink.absorb(tracer)
        return error_response(ADMISSION_REJECTED, message)

    async def _plan_locked(self, tenant: TenantState, req: PlanRequest) -> dict:
        tracer = Tracer() if self.trace_enabled else NOOP_TRACER
        started = clock()
        span = tracer.span(
            "serve.request",
            category="serve",
            tenant=tenant.name,
            workload=req.workload,
        )
        try:
            with span:
                dirty = await asyncio.to_thread(
                    self._sync_store, tenant, tracer
                )
                if dirty:
                    self._apply_invalidation(tenant, dirty, tracer)
                params = req.params()
                tenant.hits[params] = tenant.hits.get(params, 0) + 1
                key = (*params, tenant.fingerprint)
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    entry.hits += 1
                    self.metrics.inc("serve.cache_hits")
                    cross = entry.owner != tenant.name
                    if cross:
                        self.metrics.inc("serve.cache_cross_tenant_hits")
                    span.set(cache="hit", cross_tenant=cross)
                    response = dict(entry.payload)
                    response["cache"] = "hit"
                else:
                    self.metrics.inc("serve.cache_misses")
                    try:
                        response = await asyncio.to_thread(
                            self._plan_cold, tenant, req, tracer
                        )
                    except FeedbackError as exc:
                        span.set(cache="error", code=STORE_CONFLICT)
                        self.metrics.inc("serve.store_conflicts")
                        return error_response(STORE_CONFLICT, str(exc))
                    self.metrics.inc("serve.planned")
                    self._store_cache(
                        key,
                        _CacheEntry(response, tenant.name, tenant.fingerprint),
                    )
                    span.set(cache="miss")
                    response = dict(response)
                    response["cache"] = "miss"
                self.metrics.inc("serve.requests")
                response["tenant"] = tenant.name
                response["fingerprint"] = tenant.fingerprint
                response["serve_seconds"] = clock() - started
                return response
        finally:
            self.sink.absorb(tracer)

    # -- planning internals (worker threads, under the tenant lock) --------

    def _sync_store(self, tenant: TenantState, tracer) -> frozenset[str]:
        """Probe the tenant's backend for foreign commits (thread)."""
        store = tenant.store
        store.tracer = tracer
        try:
            return store.sync()
        finally:
            store.tracer = NOOP_TRACER

    def _apply_invalidation(
        self, tenant: TenantState, dirty: frozenset[str], tracer
    ) -> None:
        """Exact invalidation after a foreign ingest (loop thread).

        Evicts the dirty memo spines and rotates the tenant's
        fingerprint, which by itself makes every prior cache entry
        unreachable *for this tenant* — the fingerprint in the key
        certifies exactly which statistics a cached plan was computed
        from, so no rotation can ever serve a stale plan.  Entries under
        the old fingerprint are then garbage-collected unless some other
        live tenant still carries that fingerprint (its statistics
        didn't change, so for it those plans remain exactly right).
        Finally the tenant's hot signatures, now uncached under the new
        fingerprint, queue for background re-planning.
        """
        evicted = 0
        with tracer.span(
            "serve.invalidate", category="serve", dirty=len(dirty)
        ) as span:
            for memo in tenant.memos.values():
                evicted += memo.invalidate(dirty)
            stale_fp = tenant.fingerprint
            tenant.fingerprint = view_fingerprint(
                tenant.store.estimator_view()
            )
            dropped = 0
            if tenant.fingerprint != stale_fp:
                still_read = any(
                    peer.fingerprint == stale_fp
                    for peer in self._tenants.values()
                    if peer is not tenant
                )
                if not still_read:
                    stale_keys = [
                        key
                        for key, entry in self._cache.items()
                        if entry.fingerprint == stale_fp
                    ]
                    for key in stale_keys:
                        del self._cache[key]
                    dropped = len(stale_keys)
                for params, count in tenant.hits.items():
                    if (
                        count >= self.config.reopt_hot_hits
                        and (*params, tenant.fingerprint) not in self._cache
                        and params not in tenant.pending_reopt
                    ):
                        tenant.pending_reopt[params] = PlanRequest(
                            tenant.name, *params
                        )
        span.set(evicted=evicted, cache_dropped=dropped)
        self.metrics.inc("serve.invalidations")
        self.metrics.inc("serve.memo_evictions", evicted)
        self.metrics.inc("serve.cache_invalidations", dropped)

    def _plan_cold(
        self, tenant: TenantState, req: PlanRequest, tracer
    ) -> dict:
        """Plan a cache miss (worker thread, tenant lock held)."""
        workload = self._workload(req.workload, req.scale)
        # A store learned on different data (another scale/seed) must
        # fail loudly instead of silently mis-estimating — same contract
        # as the adaptive loop.
        tenant.store.check_compatible(workload.catalog)
        space = (req.workload, req.mode, req.scale)
        optimizer = tenant.optimizers.get(space)
        if optimizer is None:
            store = tenant.store

            def estimator_factory(ctx, hints) -> CardinalityEstimator:
                return FeedbackEstimator(ctx, hints, store)

            optimizer = Optimizer(
                workload.catalog,
                workload.hints,
                _MODE[req.mode],
                workload.params,
                estimator_factory=estimator_factory,
                search=self.config.search,
                top_k=req.top_k,
            )
            tenant.optimizers[space] = optimizer
            tenant.memos[space] = optimizer.new_memo()
        # The request's tracer and top_k ride on the cached optimizer;
        # safe because the tenant lock serializes its requests.
        optimizer.tracer = tracer
        optimizer.top_k = req.top_k
        t0 = clock()
        result = optimizer.optimize(workload.plan, memo=tenant.memos[space])
        planning_seconds = clock() - t0
        optimizer.tracer = NOOP_TRACER
        best = result.best
        stats = result.search_stats
        return {
            "ok": True,
            "workload": req.workload,
            "mode": req.mode,
            "scale": req.scale,
            "top_k": req.top_k,
            "cost": best.cost,
            "plan": list(linearize(best.body)),
            "physical": best.physical.describe(),
            "signature": signature_key(best.body),
            "ranked": [
                {"rank": p.rank, "cost": p.cost} for p in result.ranked
            ],
            "alternatives": stats.expanded,
            "costed": stats.costed,
            "planning_seconds": planning_seconds,
        }

    def _workload(self, name: str, scale: float):
        """Build (once) and share the immutable workload bundle."""
        key = (name, scale)
        workload = self._workloads.get(key)
        if workload is not None:
            return workload
        with self._workload_build_lock:
            workload = self._workloads.get(key)
            if workload is None:
                workload = self.registry[name](scale_factor=scale)
                self._workloads[key] = workload
        return workload

    # -- tenant lifecycle --------------------------------------------------

    def _get_tenant(self, name: str) -> TenantState:
        tenant = self._tenants.get(name)
        if tenant is not None:
            self._tenants.move_to_end(name)
            return tenant
        while len(self._tenants) >= self.config.max_tenants:
            victim = next(
                (
                    key
                    for key, state in self._tenants.items()
                    if state.inflight == 0
                ),
                None,
            )
            if victim is None:
                break  # every tenant is mid-request; admit over the cap
            self._evict_tenant(victim)
        store = self._open_store(name)
        tenant = TenantState(
            name=name,
            store=store,
            fingerprint=view_fingerprint(store.estimator_view()),
        )
        self._tenants[name] = tenant
        return tenant

    def _open_store(self, tenant: str) -> StatisticsStore:
        if self.config.stats_dir is None:
            return StatisticsStore()
        stats_dir = Path(self.config.stats_dir)
        stats_dir.mkdir(parents=True, exist_ok=True)
        ext = ".sqlite" if self.config.stats_backend == "sqlite" else ".json"
        return StatisticsStore.open(
            stats_dir / f"{tenant}{ext}", backend=self.config.stats_backend
        )

    def _evict_tenant(self, name: str) -> None:
        tenant = self._tenants.pop(name)
        dropped = [
            key for key, entry in self._cache.items() if entry.owner == name
        ]
        for key in dropped:
            del self._cache[key]
        tenant.store.close()
        self.metrics.inc("serve.tenant_evictions")

    def _store_cache(self, key: tuple, entry: _CacheEntry) -> None:
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.max_cache_entries:
            self._cache.popitem(last=False)
            self.metrics.inc("serve.cache_trims")

    # -- background re-optimization ----------------------------------------

    async def run_background_pass(self) -> int:
        """Re-plan invalidated hot signatures; returns plans produced.

        One pass re-plans at most ``reopt_batch`` signatures across all
        tenants (oldest first per tenant), re-checking the cache under
        the tenant lock so a concurrent request that already re-planned
        the signature costs nothing.
        """
        replanned = 0
        for tenant in list(self._tenants.values()):
            while (
                tenant.pending_reopt
                and replanned < self.config.reopt_batch
            ):
                params, req = tenant.pending_reopt.popitem(last=False)
                async with tenant.lock:
                    tracer = Tracer() if self.trace_enabled else NOOP_TRACER
                    with tracer.span(
                        "serve.reoptimize",
                        category="serve",
                        tenant=tenant.name,
                        workload=req.workload,
                    ):
                        dirty = await asyncio.to_thread(
                            self._sync_store, tenant, tracer
                        )
                        if dirty:
                            self._apply_invalidation(tenant, dirty, tracer)
                        key = (*params, tenant.fingerprint)
                        if key not in self._cache:
                            try:
                                payload = await asyncio.to_thread(
                                    self._plan_cold, tenant, req, tracer
                                )
                            except FeedbackError:
                                self.metrics.inc("serve.store_conflicts")
                                continue
                            self._store_cache(
                                key,
                                _CacheEntry(
                                    payload, tenant.name, tenant.fingerprint
                                ),
                            )
                            self.metrics.inc("serve.background_replans")
                            replanned += 1
                    self.sink.absorb(tracer)
            if replanned >= self.config.reopt_batch:
                break
        return replanned

    async def _reopt_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.reopt_interval)
            with contextlib.suppress(Exception):
                await self.run_background_pass()

    # -- metrics -----------------------------------------------------------

    def prometheus_text(self) -> str:
        """The serve registry as Prometheus exposition text.

        Gauges are refreshed at render time; ``serve.plans_per_sec`` is
        total served plan responses over uptime — the operational
        headline a scrape watches.
        """
        self.metrics.set("serve.tenants", len(self._tenants))
        self.metrics.set("serve.cache_entries", len(self._cache))
        self.metrics.set(
            "serve.memo_entries",
            sum(t.memo_entries() for t in self._tenants.values()),
        )
        uptime = clock() - self._started_at
        self.metrics.set("serve.uptime_seconds", uptime)
        served = self.metrics.counters.get("serve.requests", 0)
        self.metrics.set(
            "serve.plans_per_sec", served / uptime if uptime > 0 else 0.0
        )
        return render_prometheus(self.metrics)

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1 GET endpoint: ``/metrics`` in Prometheus text."""
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path.rstrip("/") in ("", "/metrics"):
                body = self.prometheus_text().encode("utf-8")
                status = b"200 OK"
                ctype = b"text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"try /metrics\n"
                status = b"404 Not Found"
                ctype = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 %s\r\nContent-Type: %s\r\n"
                b"Content-Length: %d\r\nConnection: close\r\n\r\n%s"
                % (status, ctype, len(body), body)
            )
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()


_MODE = {
    "sca": AnnotationMode.SCA,
    "manual": AnnotationMode.MANUAL,
}
