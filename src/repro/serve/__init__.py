"""Optimizer-as-a-service: the long-lived multi-tenant planning server.

``repro serve`` keeps the expensive planning state hot — interned plans,
per-tenant warm memos, learned statistics, a fingerprint-keyed plan
cache — and serves plan requests over a tiny newline-delimited JSON
protocol.  See :mod:`repro.serve.server` for the state-ownership and
invalidation story, :mod:`repro.serve.protocol` for the wire format, and
:mod:`repro.serve.client` for the blocking client used by ``repro plan``
and the serve benchmark.
"""

from .client import PlanningClient, ServeError, SpawnedServer, spawn_server
from .protocol import (
    ADMISSION_REJECTED,
    BAD_REQUEST,
    INTERNAL_ERROR,
    STORE_CONFLICT,
    UNKNOWN_WORKLOAD,
    PlanRequest,
    ProtocolError,
)
from .server import PlanningServer, ServerConfig, TenantState, view_fingerprint

__all__ = [
    "ADMISSION_REJECTED",
    "BAD_REQUEST",
    "INTERNAL_ERROR",
    "PlanRequest",
    "PlanningClient",
    "PlanningServer",
    "ProtocolError",
    "STORE_CONFLICT",
    "ServeError",
    "ServerConfig",
    "SpawnedServer",
    "TenantState",
    "UNKNOWN_WORKLOAD",
    "spawn_server",
    "view_fingerprint",
]
