"""Blocking client for the planning server, plus a subprocess launcher.

:class:`PlanningClient` speaks the newline-delimited JSON protocol over
one TCP connection (requests pipeline fine, but the client is
synchronous: one outstanding request per client).  Benchmarks and tests
that want a real out-of-process server use :func:`spawn_server`, which
launches ``python -m repro serve``, reads the bound port off its stdout,
and hands back a managed handle.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from pathlib import Path

from .protocol import decode_message, encode_message


class ServeError(RuntimeError):
    """A structured error response from the server (carries the code)."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class PlanningClient:
    """One connection to a running :class:`~.server.PlanningServer`."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "PlanningClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """Send one raw request; raise :class:`ServeError` on ok=False."""
        self._sock.sendall(encode_message(payload))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        if not response.get("ok", False):
            raise ServeError(
                response.get("code", 500), response.get("error", "unknown")
            )
        return response

    def plan(
        self,
        workload: str,
        tenant: str = "default",
        mode: str | None = None,
        scale: float | None = None,
        top_k: int | None = None,
    ) -> dict:
        payload: dict = {"op": "plan", "tenant": tenant, "workload": workload}
        if mode is not None:
            payload["mode"] = mode
        if scale is not None:
            payload["scale"] = scale
        if top_k is not None:
            payload["top_k"] = top_k
        return self.request(payload)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


class SpawnedServer:
    """A ``repro serve`` subprocess with its bound address read back."""

    def __init__(
        self, process: subprocess.Popen, host: str, port: int
    ) -> None:
        self.process = process
        self.host = host
        self.port = port

    def connect(self, timeout: float | None = 30.0) -> PlanningClient:
        return PlanningClient(self.host, self.port, timeout=timeout)

    def stop(self, timeout: float = 10.0) -> int:
        """Orderly shutdown (protocol op, then wait); returns exit code."""
        if self.process.poll() is None:
            try:
                with self.connect(timeout=timeout) as client:
                    client.shutdown()
            except (OSError, ServeError):
                self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()
        return self.process.returncode

    def __enter__(self) -> "SpawnedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def spawn_server(
    args: list[str] | None = None, timeout: float = 60.0
) -> SpawnedServer:
    """Launch ``python -m repro serve --port 0 <args>`` and await its port.

    The server prints ``serving on HOST:PORT`` once bound (after the
    optional metrics line); stderr is folded into stdout so a crash
    during startup surfaces in the raised error instead of hanging.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        *(args or []),
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": src_root},
    )
    lines: list[str] = []
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait(timeout=timeout)
            raise RuntimeError(
                "server exited before binding:\n" + "".join(lines)
            )
        lines.append(line)
        if line.startswith("serving on "):
            address = line.split("serving on ", 1)[1].strip()
            host, _, port = address.rpartition(":")
            return SpawnedServer(process, host, int(port))
