"""Wire protocol of the planning server: newline-delimited JSON.

One request per line, one response line per request, any number of
requests per connection.  The protocol is deliberately tiny — a plan
request names a *workload* (server-side catalogs, data fingerprints, and
plan construction stay where the statistics live) plus the tenant whose
learned statistics should shape the plan:

``{"op": "plan", "tenant": "acme", "workload": "tpch_q7", ...}``
    → ``{"ok": true, "cache": "hit"|"miss", "cost": ..., "plan": [...],
    "physical": "...", "fingerprint": "...", ...}``

``{"op": "metrics"}``
    → the server's Prometheus text plus raw counters/gauges.

``{"op": "ping"}`` / ``{"op": "shutdown"}``
    → liveness / orderly shutdown.

Errors are structured, never connection drops: ``{"ok": false, "code":
C, "error": "..."}`` with HTTP-flavored codes (400 malformed request,
404 unknown workload, 409 incompatible statistics store, 429 admission
rejected, 500 internal).  Floats
round-trip exactly through JSON (``repr``-based), which is what lets the
client-side cost match a direct :meth:`Optimizer.optimize` bit for bit.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

#: Structured error codes (HTTP-flavored, carried in the response body).
BAD_REQUEST = 400
UNKNOWN_WORKLOAD = 404
STORE_CONFLICT = 409
ADMISSION_REJECTED = 429
INTERNAL_ERROR = 500

#: Tenant names become store filenames and metric labels: keep them to a
#: filesystem- and Prometheus-safe alphabet.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

_MODES = ("sca", "manual")


class ProtocolError(ValueError):
    """A malformed message (bad JSON, bad fields, unknown op)."""


@dataclass(frozen=True, slots=True)
class PlanRequest:
    """One validated plan request."""

    tenant: str
    workload: str
    mode: str = "sca"
    scale: float = 1.0
    top_k: int = 1

    def params(self) -> tuple:
        """The request's planning parameters, fingerprint excluded.

        This is the hot-signature identity the server tracks hit counts
        (and background re-optimization) under: everything that shapes
        the plan except the tenant statistics fingerprint.
        """
        return (self.workload, self.mode, self.scale, self.top_k)


def parse_plan_request(
    payload: dict, default_top_k: int = 1, default_mode: str = "sca"
) -> PlanRequest:
    """Validate a decoded ``plan`` payload into a :class:`PlanRequest`."""
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            f"tenant must match {_TENANT_RE.pattern}, got {tenant!r}"
        )
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ProtocolError("plan request needs a 'workload' string")
    mode = payload.get("mode", default_mode)
    if mode not in _MODES:
        raise ProtocolError(f"mode must be one of {_MODES}, got {mode!r}")
    scale = payload.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ProtocolError(f"scale must be a positive number, got {scale!r}")
    top_k = payload.get("top_k", default_top_k)
    if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
        raise ProtocolError(f"top_k must be an integer >= 1, got {top_k!r}")
    return PlanRequest(
        tenant=tenant,
        workload=workload,
        mode=mode,
        scale=float(scale),
        top_k=top_k,
    )


def encode_message(payload: dict) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes | str) -> dict:
    """Parse one received line; raises :class:`ProtocolError` loudly."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def error_response(code: int, message: str) -> dict:
    return {"ok": False, "code": code, "error": message}
