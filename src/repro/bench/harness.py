"""Experiment harness implementing the paper's Section 7.3 protocol.

For a workload: enumerate all alternatives, rank them by estimated cost,
pick N plans at regular rank intervals, execute each on the simulated
engine, and report cost estimates and runtimes normalized by the rank-1
plan — exactly the procedure behind Figures 5, 6, and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.udf import AnnotationMode
from ..engine.executor import Engine, ExecutionResult
from ..optimizer.cost import CostParams
from ..optimizer.optimizer import OptimizationResult, Optimizer, RankedPlan
from ..workloads.base import Workload


@dataclass(slots=True)
class ExecutedPlan:
    rank: int
    estimated_cost: float
    runtime_seconds: float
    runtime_label: str
    is_original: bool
    result: ExecutionResult


@dataclass(slots=True)
class ExperimentOutcome:
    workload: str
    plan_count: int
    enumeration_seconds: float
    executed: list[ExecutedPlan] = field(default_factory=list)
    optimization: OptimizationResult | None = None

    @property
    def norm_costs(self) -> list[float]:
        base = self.executed[0].estimated_cost
        return [p.estimated_cost / base for p in self.executed]

    @property
    def norm_runtimes(self) -> list[float]:
        base = self.executed[0].runtime_seconds
        return [p.runtime_seconds / base for p in self.executed]

    @property
    def runtime_spread(self) -> float:
        times = [p.runtime_seconds for p in self.executed]
        return max(times) / min(times)

    def original_rank(self) -> int | None:
        for p in self.executed:
            if p.is_original:
                return p.rank
        return None


def run_experiment(
    workload: Workload,
    picks: int = 10,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
    execute_all: bool = False,
) -> ExperimentOutcome:
    """Optimize a workload, execute rank-picked plans, collect the outcome."""
    params = params or workload.params
    optimizer = Optimizer(workload.catalog, workload.hints, mode, params)
    result = optimizer.optimize(workload.plan)
    # Rank-picked plans share most of their physical subtrees; reuse
    # their deterministic execution results across the picks.
    engine = Engine(params, workload.true_costs, reuse_subtree_results=True)

    outcome = ExperimentOutcome(
        workload=workload.name,
        plan_count=result.plan_count,
        enumeration_seconds=result.enumeration_seconds,
        optimization=result,
    )
    chosen = result.ranked if execute_all else result.picks(picks)
    for plan in chosen:
        execution = engine.execute(plan.physical, workload.data)
        outcome.executed.append(
            ExecutedPlan(
                rank=plan.rank,
                estimated_cost=plan.cost,
                runtime_seconds=execution.seconds,
                runtime_label=execution.report.minutes_label(),
                # interned plans: structural equality is object identity
                is_original=plan.body is result.original_body,
                result=execution,
            )
        )
    return outcome


def execute_plan(
    workload: Workload,
    plan: RankedPlan,
    params: CostParams | None = None,
) -> ExecutionResult:
    engine = Engine(params or workload.params, workload.true_costs)
    return engine.execute(plan.physical, workload.data)
