"""Experiment harness implementing the paper's Section 7.3 protocol.

For a workload: enumerate all alternatives, rank them by estimated cost,
pick N plans at regular rank intervals, execute each on the simulated
engine, and report cost estimates and runtimes normalized by the rank-1
plan — exactly the procedure behind Figures 5, 6, and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import OptimizationConfigError
from ..core.udf import AnnotationMode
from ..engine.executor import Engine, ExecutionResult
from ..feedback.adaptive import AdaptiveOptimizer, AdaptiveReport
from ..feedback.midquery import (
    DEFAULT_SWITCH_THRESHOLD,
    MidQueryExperiment,
    run_midquery,
)
from ..feedback.store import StatisticsStore
from ..optimizer.cost import CostParams
from ..optimizer.optimizer import OptimizationResult, Optimizer, RankedPlan
from ..workloads.base import Workload


@dataclass(slots=True)
class ExecutedPlan:
    rank: int
    estimated_cost: float
    runtime_seconds: float  # modeled (simulated) runtime
    runtime_label: str
    is_original: bool
    result: ExecutionResult

    @property
    def wall_seconds(self) -> float:
        """Measured wall-clock of this plan's execution."""
        return self.result.wall_seconds


@dataclass(slots=True)
class ExperimentOutcome:
    workload: str
    plan_count: int
    enumeration_seconds: float
    executed: list[ExecutedPlan] = field(default_factory=list)
    optimization: OptimizationResult | None = None
    # Populated only when the experiment ran with feedback rounds.
    feedback: AdaptiveReport | None = None
    # Populated only when the experiment ran with --midquery (no feedback
    # rounds); feedback runs carry decisions on their rounds instead.
    midquery: MidQueryExperiment | None = None

    @property
    def norm_costs(self) -> list[float]:
        base = self.executed[0].estimated_cost
        return [p.estimated_cost / base for p in self.executed]

    @property
    def norm_runtimes(self) -> list[float]:
        base = self.executed[0].runtime_seconds
        return [p.runtime_seconds / base for p in self.executed]

    @property
    def runtime_spread(self) -> float:
        times = [p.runtime_seconds for p in self.executed]
        return max(times) / min(times)

    def original_rank(self) -> int | None:
        for p in self.executed:
            if p.is_original:
                return p.rank
        return None


def run_experiment(
    workload: Workload,
    picks: int = 10,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
    execute_all: bool = False,
    feedback_rounds: int = 0,
    stats_store: StatisticsStore | str | Path | None = None,
    stats_backend: str | None = None,
    jobs: int = 1,
    midquery: bool = False,
    switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
    engine_jobs: int = 1,
    search: str = "eager",
    top_k: int | None = None,
    tracer=None,
) -> ExperimentOutcome:
    """Optimize a workload, execute rank-picked plans, collect the outcome.

    With ``feedback_rounds > 0`` the optimization runs through the
    adaptive feedback loop (:class:`AdaptiveOptimizer`): runtime
    observations from each round's executions re-estimate the next, and
    the reported outcome is the final round's.  ``stats_store`` may be a
    live :class:`StatisticsStore` or a path — a path opens through the
    sniffed persistence backend (``.sqlite``/``.sqlite3``/``.db`` →
    sqlite-WAL, else JSON; ``stats_backend`` forces one), warm-starting
    from existing state, and every ingest commits transactionally so
    concurrent experiments can share the store.  With
    ``feedback_rounds=0`` and no store this is exactly the feedback-free
    protocol — the code path below is untouched.  ``jobs > 1`` shards
    plan costing across forked worker processes (bit-identical results).

    With ``midquery`` the rank-1 pick is additionally raced against
    itself under mid-query re-optimization (stage-by-stage execution with
    suffix re-planning at every boundary, switching when the estimated
    remaining cost improves by ``switch_threshold``); the comparison
    lands in ``outcome.midquery``.  Under feedback rounds, each round's
    deployed pick runs that way instead and the boundary decisions land
    on the round reports.

    ``engine_jobs > 1`` executes each plan's pipeline-stage partitions
    across a fork-based worker pool; records, per-op metrics, and modeled
    seconds are bit-identical to serial execution.

    ``search="guided"`` plans with the best-first, cost-guided search:
    only the top ``top_k`` plans (default 1) are produced — bit-identical
    to the eager prefix — so the rank-interval pick protocol degenerates
    to executing that guaranteed prefix.  Guided search is for the
    serving path; the experiment protocols that need the full ranking
    (feedback rounds, ``--all``) keep the eager default.

    ``tracer`` (a :class:`repro.obs.Tracer`) threads wall-clock spans
    through the optimizer, the engine, and — under feedback rounds — the
    statistics store and mid-query controller; the default no-op tracer
    leaves every result bit-identical.
    """
    if feedback_rounds > 0 or stats_store is not None:
        if search != "eager":
            raise OptimizationConfigError(
                "feedback experiments need the full ranking (rank-of-pick "
                "reporting); search='guided' is not supported with "
                "feedback_rounds/stats_store"
            )
        return _run_feedback_experiment(
            workload, picks, mode, params, execute_all, feedback_rounds,
            stats_store, stats_backend, jobs, midquery, switch_threshold,
            engine_jobs, tracer,
        )
    params = params or workload.params
    optimizer = Optimizer(
        workload.catalog, workload.hints, mode, params, jobs=jobs,
        search=search, top_k=top_k,
        tracer=tracer,
    )
    result = optimizer.optimize(workload.plan)
    # Rank-picked plans share most of their physical subtrees; reuse
    # their deterministic execution results across the picks.
    engine = Engine(
        params,
        workload.true_costs,
        reuse_subtree_results=True,
        engine_jobs=engine_jobs,
        tracer=tracer,
    )

    outcome = ExperimentOutcome(
        workload=workload.name,
        plan_count=result.plan_count,
        enumeration_seconds=result.enumeration_seconds,
        optimization=result,
    )
    chosen = result.ranked if execute_all else result.picks(picks)
    for plan in chosen:
        execution = engine.execute(plan.physical, workload.data)
        outcome.executed.append(
            ExecutedPlan(
                rank=plan.rank,
                estimated_cost=plan.cost,
                runtime_seconds=execution.seconds,
                runtime_label=execution.report.minutes_label(),
                # interned plans: structural equality is object identity
                is_original=plan.body is result.original_body,
                result=execution,
            )
        )
    if midquery:
        # The rank-1 pick is always the first chosen plan: reuse this
        # experiment's optimization and its already-measured execution
        # instead of re-enumerating the space and re-running the pick.
        outcome.midquery = run_midquery(
            workload,
            mode,
            params,
            switch_threshold=switch_threshold,
            optimization=result,
            baseline=(
                outcome.executed[0].result if outcome.executed else None
            ),
            engine_jobs=engine_jobs,
            tracer=tracer,
        )
    return outcome


def _run_feedback_experiment(
    workload: Workload,
    picks: int,
    mode: AnnotationMode,
    params: CostParams | None,
    execute_all: bool,
    feedback_rounds: int,
    stats_store: StatisticsStore | str | Path | None,
    stats_backend: str | None = None,
    jobs: int = 1,
    midquery: bool = False,
    switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
    engine_jobs: int = 1,
    tracer=None,
) -> ExperimentOutcome:
    """The Section 7.3 protocol driven through the adaptive feedback loop."""
    params = params or workload.params
    if isinstance(stats_store, StatisticsStore):
        store = stats_store
    elif stats_store is not None:
        # Backend-attached: every ingest already committed transactionally,
        # so there is nothing left to save at the end.
        store = StatisticsStore.open(Path(stats_store), backend=stats_backend)
    else:
        store = StatisticsStore()
    adaptive = AdaptiveOptimizer(
        workload, store=store, mode=mode, params=params, picks=picks,
        jobs=jobs, midquery=midquery, switch_threshold=switch_threshold,
        engine_jobs=engine_jobs, tracer=tracer,
    )
    report = adaptive.run(feedback_rounds)
    final = report.final
    result = final.optimization

    outcome = ExperimentOutcome(
        workload=workload.name,
        plan_count=result.plan_count,
        enumeration_seconds=result.enumeration_seconds,
        optimization=result,
        feedback=report,
    )
    if execute_all:
        chosen = result.ranked
    else:
        chosen = result.picks(picks)
        chosen_bodies = {plan.body for plan in chosen}
        extras = [
            run.plan for run in final.executed if run.plan.body not in chosen_bodies
        ]
        chosen = sorted(chosen + extras, key=lambda plan: plan.rank)
    # The final round already executed (deterministically) most of the
    # chosen plans; reuse those results and run only genuinely new ones.
    prior = {run.plan.body: run.result for run in final.executed}
    for plan in chosen:
        execution = prior.get(plan.body)
        if execution is None:
            execution = adaptive.engine.execute(plan.physical, workload.data)
        outcome.executed.append(
            ExecutedPlan(
                rank=plan.rank,
                estimated_cost=plan.cost,
                runtime_seconds=execution.seconds,
                runtime_label=execution.report.minutes_label(),
                is_original=plan.body is result.original_body,
                result=execution,
            )
        )
    # The replays above were for reporting, not learning.
    adaptive.collector.clear()
    return outcome


def execute_plan(
    workload: Workload,
    plan: RankedPlan,
    params: CostParams | None = None,
    engine_jobs: int = 1,
) -> ExecutionResult:
    engine = Engine(
        params or workload.params, workload.true_costs, engine_jobs=engine_jobs
    )
    return engine.execute(plan.physical, workload.data)
