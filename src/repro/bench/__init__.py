"""Experiment harness and reporting (the Section 7.3 protocol)."""

from .harness import ExecutedPlan, ExperimentOutcome, execute_plan, run_experiment
from .reporting import render_figure, render_table

__all__ = [
    "ExecutedPlan",
    "ExperimentOutcome",
    "execute_plan",
    "render_figure",
    "render_table",
    "run_experiment",
]
