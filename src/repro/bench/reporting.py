"""Text rendering of experiment outcomes (paper-style figures as ASCII)."""

from __future__ import annotations

from .harness import ExperimentOutcome


def render_figure(
    outcome: ExperimentOutcome,
    title: str,
    paper_note: str = "",
    width: int = 46,
) -> str:
    """Render normalized cost estimates and runtimes as paired bars,
    mirroring the layout of Figures 5-7."""
    lines = [title, "=" * len(title)]
    if paper_note:
        lines.append(paper_note)
    lines.append(
        f"plans enumerated: {outcome.plan_count}   "
        f"enumeration time: {outcome.enumeration_seconds * 1000:.0f} ms"
    )
    lines.append("")
    costs = outcome.norm_costs
    runtimes = outcome.norm_runtimes
    peak = max(max(costs), max(runtimes))
    # Two time columns per pick, on the two measurement axes: ``runtime``
    # is the deterministic modeled seconds the experiments report,
    # ``wall`` the measured wall-clock of this plan's execution on this
    # machine (plans replayed from the subtree cache show ~0 wall).
    header = (
        f"{'rank':>6} | {'norm.cost':>9} {'norm.time':>9} | "
        f"{'runtime':>10} {'wall':>9} |"
    )
    lines.append(header)
    lines.append("-" * (len(header) + width))
    for i, plan in enumerate(outcome.executed):
        cost_bar = "#" * max(1, round(costs[i] / peak * width))
        time_bar = "*" * max(1, round(runtimes[i] / peak * width))
        marker = " <- implemented flow" if plan.is_original else ""
        wall_label = f"{plan.wall_seconds * 1e3:.1f}ms"
        lines.append(
            f"{plan.rank:>6} | {costs[i]:>9.2f} {runtimes[i]:>9.2f} | "
            f"{plan.runtime_label:>10} {wall_label:>9} | {cost_bar}"
        )
        lines.append(
            f"{'':>6} | {'':>9} {'':>9} | {'':>10} {'':>9} | {time_bar}{marker}"
        )
    lines.append("")
    lines.append(
        f"runtime spread (worst/best executed): {outcome.runtime_spread:.1f}x"
    )
    total_wall = sum(p.wall_seconds for p in outcome.executed)
    if total_wall > 0:
        lines.append(
            f"wall clock (all executions, measured): {total_wall * 1e3:.0f} ms"
        )
    lines.append(
        "legend: '#' normalized cost estimate, '*' normalized runtime "
        "(modeled); 'wall' is measured wall-clock"
    )
    return "\n".join(lines)


def render_table(rows: list[tuple], headers: tuple[str, ...]) -> str:
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)
