"""Three-address code (TAC) intermediate representation.

The paper's static code analysis operates on typed three-address code
produced from Java bytecode (Section 5).  We define the equivalent IR here:

* a small instruction set covering assignments, arithmetic, branches,
  iteration, opaque value calls, and the record API
  (``getField``/``setField``/copy/projection/concat constructors/``emit``);
* a textual parser so UDFs can be written exactly like the paper's
  Section 3 listings (including the ``if $a < 0 goto L`` sugar, which is
  lowered to a compare followed by a branch);
* :class:`TACFunction`, the unit the analyzer, interpreter, and the
  CPython bytecode front-end all share.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import AnalysisError

# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var:
    """A TAC variable reference."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal constant operand."""

    value: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Operand = Var | Lit


@dataclass(frozen=True, slots=True)
class FuncRef:
    """Compile-time reference to an opaque helper callable."""

    name: str


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Instr:
    """Base class for TAC instructions."""

    def defined_var(self) -> str | None:
        return getattr(self, "dst", None)

    def used_operands(self) -> tuple[Operand, ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Const(Instr):
    dst: str
    value: Any


@dataclass(frozen=True, slots=True)
class Assign(Instr):
    dst: str
    src: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True, slots=True)
class BinOp(Instr):
    dst: str
    op: str
    left: Operand
    right: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class UnOp(Instr):
    dst: str
    op: str
    operand: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.operand,)


@dataclass(frozen=True, slots=True)
class GetField(Instr):
    """``dst := getField(rec, pos)`` — the record API read accessor."""

    dst: str
    rec: Var
    pos: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.rec, self.pos)


@dataclass(frozen=True, slots=True)
class SetField(Instr):
    """``setField(rec, pos, value)`` — the record API write accessor."""

    rec: Var
    pos: Operand
    value: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.rec, self.pos, self.value)


@dataclass(frozen=True, slots=True)
class CopyRec(Instr):
    """``dst := copy(src)`` — implicit-copy output record constructor."""

    dst: str
    src: Var

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True, slots=True)
class NewRec(Instr):
    """``dst := newrec(src)`` — implicit-projection output constructor."""

    dst: str
    src: Var

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True, slots=True)
class ConcatRec(Instr):
    """``dst := concat(a, b)`` — binary concatenation constructor."""

    dst: str
    left: Var
    right: Var

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class Emit(Instr):
    rec: Var

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.rec,)


@dataclass(frozen=True, slots=True)
class Call(Instr):
    """Opaque value-level call; ``dst`` may be ``None`` for discarded results."""

    dst: str | None
    func: str
    args: tuple[Operand, ...]

    def defined_var(self) -> str | None:
        return self.dst

    def used_operands(self) -> tuple[Operand, ...]:
        return self.args


@dataclass(frozen=True, slots=True)
class GetItem(Instr):
    dst: str
    seq: Var
    index: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.seq, self.index)


@dataclass(frozen=True, slots=True)
class IterNew(Instr):
    dst: str
    src: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True, slots=True)
class IterNext(Instr):
    """Advance an iterator; jump to ``exhausted_target`` when done."""

    dst: str
    iterator: Var
    exhausted_target: int

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.iterator,)


@dataclass(frozen=True, slots=True)
class IfTrue(Instr):
    cond: Operand
    target: int

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.cond,)


@dataclass(frozen=True, slots=True)
class IfFalse(Instr):
    cond: Operand
    target: int

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.cond,)


@dataclass(frozen=True, slots=True)
class Goto(Instr):
    target: int


@dataclass(frozen=True, slots=True)
class Return(Instr):
    pass


def jump_targets(instr: Instr) -> tuple[int, ...]:
    if isinstance(instr, (IfTrue, IfFalse)):
        return (instr.target,)
    if isinstance(instr, IterNext):
        return (instr.exhausted_target,)
    if isinstance(instr, Goto):
        return (instr.target,)
    return ()


def falls_through(instr: Instr) -> bool:
    return not isinstance(instr, (Goto, Return))


# ---------------------------------------------------------------------------
# TACFunction
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TACFunction:
    """A UDF in three-address-code form.

    ``params`` are the record-bearing parameters (the collector is implicit:
    emission is the ``Emit`` instruction).  ``env`` maps opaque call names to
    Python callables so TAC functions remain executable.
    """

    name: str
    params: tuple[str, ...]
    instructions: tuple[Instr, ...]
    env: dict[str, Callable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.instructions)
        for idx, instr in enumerate(self.instructions):
            for target in jump_targets(instr):
                if target < 0 or target > n:
                    raise AnalysisError(
                        f"{self.name}: instruction {idx} jumps to invalid "
                        f"target {target}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TACFunction({self.name}, {len(self.instructions)} instrs)"

    def pretty(self) -> str:
        lines = [f"{self.name}({', '.join(self.params)}):"]
        for i, instr in enumerate(self.instructions):
            lines.append(f"  {i:3d}: {instr}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Textual parser (paper-style listings)
# ---------------------------------------------------------------------------

_TOKEN_NUM = re.compile(r"^-?\d+(\.\d+)?$")
_TOKEN_STR = re.compile(r"^'([^']*)'$")
_LABEL = re.compile(r"^(\w+):$")
_HEADER = re.compile(r"^(\w+)\(([^)]*)\):?$")

_BINOPS = ("<=", ">=", "==", "!=", "<", ">", "+", "-", "*", "//", "/", "%")


def _parse_operand(token: str) -> Operand:
    token = token.strip()
    if token.startswith("$"):
        return Var(token)
    if _TOKEN_NUM.match(token):
        return Lit(float(token) if "." in token else int(token))
    m = _TOKEN_STR.match(token)
    if m:
        return Lit(m.group(1))
    if token == "true":
        return Lit(True)
    if token == "false":
        return Lit(False)
    if token == "null":
        return Lit(None)
    raise AnalysisError(f"cannot parse operand {token!r}")


def _split_args(argstr: str) -> list[str]:
    return [a.strip() for a in argstr.split(",")] if argstr.strip() else []


class _LabelRef:
    """Placeholder for a not-yet-resolved jump target."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def parse_tac(text: str, env: dict[str, Callable] | None = None) -> TACFunction:
    """Parse a textual TAC listing into a :class:`TACFunction`.

    The syntax mirrors the paper's Section 3 examples::

        f2(InputRecord $ir):
            $a := getField($ir, 0)
            if $a < 0 goto L1
            $or := copy($ir)
            emit($or)
        L1:
            return
    """
    lines = [ln.strip() for ln in text.strip().splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("#")]
    if not lines:
        raise AnalysisError("empty TAC listing")

    header = _HEADER.match(lines[0])
    if not header:
        raise AnalysisError(f"bad TAC header: {lines[0]!r}")
    name = header.group(1)
    params = []
    for part in _split_args(header.group(2)):
        pieces = part.split()
        params.append(pieces[-1])  # drop optional type annotation

    labels: dict[str, int] = {}
    instrs: list[Instr] = []
    temp_counter = [0]
    for ln in lines[1:]:
        m = _LABEL.match(ln)
        if m:
            labels[m.group(1)] = len(instrs)
            continue
        instrs.extend(_parse_statement(ln, temp_counter))

    resolved: list[Instr] = []
    for idx, instr in enumerate(instrs):
        resolved.append(_resolve_targets(instr, labels, name, idx))
    return TACFunction(name, tuple(params), tuple(resolved), env or {})


def _resolve_targets(instr: Instr, labels: dict[str, int], fname: str, idx: int) -> Instr:
    def resolve(value):
        if isinstance(value, _LabelRef):
            if value.name not in labels:
                raise AnalysisError(
                    f"{fname}: instruction {idx} jumps to unknown label "
                    f"{value.name!r}"
                )
            return labels[value.name]
        return value

    if isinstance(instr, (IfTrue, IfFalse, Goto)):
        return dataclasses.replace(instr, target=resolve(instr.target))
    if isinstance(instr, IterNext):
        return dataclasses.replace(
            instr, exhausted_target=resolve(instr.exhausted_target)
        )
    return instr


def _fresh_temp(counter: list[int]) -> str:
    counter[0] += 1
    return f"$cmp{counter[0]}"


def _parse_statement(ln: str, temp_counter: list[int]) -> list[Instr]:
    if ln == "return":
        return [Return()]
    if ln.startswith("goto "):
        return [Goto(_LabelRef(ln[5:].strip()))]  # type: ignore[arg-type]
    if ln.startswith("emit(") and ln.endswith(")"):
        return [Emit(Var(ln[5:-1].strip()))]
    if ln.startswith("setField(") and ln.endswith(")"):
        args = _split_args(ln[len("setField(") : -1])
        if len(args) != 3:
            raise AnalysisError(f"setField needs 3 arguments: {ln!r}")
        return [
            SetField(Var(args[0]), _parse_operand(args[1]), _parse_operand(args[2]))
        ]
    if ln.startswith("if ") or ln.startswith("ifnot "):
        negate = ln.startswith("ifnot ")
        rest = ln[6:] if negate else ln[3:]
        if " goto " not in rest:
            raise AnalysisError(f"malformed branch: {ln!r}")
        cond_str, label = rest.rsplit(" goto ", 1)
        cond_str = cond_str.strip()
        target = _LabelRef(label.strip())
        for op in _BINOPS:
            padded = f" {op} "
            if padded in cond_str:
                left, right = cond_str.split(padded, 1)
                tmp = _fresh_temp(temp_counter)
                compare = BinOp(tmp, op, _parse_operand(left), _parse_operand(right))
                branch_cls = IfFalse if negate else IfTrue
                return [compare, branch_cls(Var(tmp), target)]  # type: ignore[arg-type]
        cond = _parse_operand(cond_str)
        branch_cls = IfFalse if negate else IfTrue
        return [branch_cls(cond, target)]  # type: ignore[arg-type]
    if ":=" in ln:
        dst_str, rhs = ln.split(":=", 1)
        dst = dst_str.strip()
        if not dst.startswith("$"):
            raise AnalysisError(f"destination must be a $variable: {ln!r}")
        rhs = rhs.strip()
        if rhs.startswith("next(") and " else " in rhs:
            call_part, label = rhs.rsplit(" else ", 1)
            if not call_part.endswith(")"):
                raise AnalysisError(f"malformed next: {ln!r}")
            it = call_part[len("next(") : -1].strip()
            return [IterNext(dst, Var(it), _LabelRef(label.strip()))]  # type: ignore[arg-type]
        return [_parse_rhs(dst, rhs)]
    raise AnalysisError(f"cannot parse statement {ln!r}")


def _parse_rhs(dst: str, rhs: str) -> Instr:
    for fname, cls in (("getField", GetField), ("getitem", GetItem)):
        if rhs.startswith(fname + "(") and rhs.endswith(")"):
            args = _split_args(rhs[len(fname) + 1 : -1])
            if len(args) != 2:
                raise AnalysisError(f"{fname} needs 2 arguments: {rhs!r}")
            return cls(dst, Var(args[0]), _parse_operand(args[1]))
    for fname in ("copy", "newrec", "iter"):
        if rhs.startswith(fname + "(") and rhs.endswith(")"):
            args = _split_args(rhs[len(fname) + 1 : -1])
            if len(args) != 1:
                raise AnalysisError(f"{fname} needs 1 argument: {rhs!r}")
            operand = _parse_operand(args[0])
            if fname == "iter":
                return IterNew(dst, operand)
            if not isinstance(operand, Var):
                raise AnalysisError(f"{fname} needs a variable: {rhs!r}")
            return CopyRec(dst, operand) if fname == "copy" else NewRec(dst, operand)
    if rhs.startswith("concat(") and rhs.endswith(")"):
        args = _split_args(rhs[len("concat(") : -1])
        if len(args) != 2:
            raise AnalysisError(f"concat needs 2 arguments: {rhs!r}")
        return ConcatRec(dst, Var(args[0]), Var(args[1]))
    if rhs.startswith("call "):
        m = re.match(r"^call\s+(\w+)\(([^)]*)\)$", rhs)
        if not m:
            raise AnalysisError(f"malformed call: {rhs!r}")
        args = tuple(_parse_operand(a) for a in _split_args(m.group(2)))
        return Call(dst, m.group(1), args)
    for op in _BINOPS:
        padded = f" {op} "
        if padded in rhs:
            left, right = rhs.split(padded, 1)
            return BinOp(dst, op, _parse_operand(left), _parse_operand(right))
    if rhs.startswith("-") and rhs[1:].strip().startswith("$"):
        return UnOp(dst, "neg", _parse_operand(rhs[1:].strip()))
    if rhs.startswith("not "):
        return UnOp(dst, "not", _parse_operand(rhs[4:].strip()))
    operand = _parse_operand(rhs)
    if isinstance(operand, Lit):
        return Const(dst, operand.value)
    return Assign(dst, operand)
