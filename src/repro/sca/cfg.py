"""Control-flow graph construction over TAC functions.

Provides basic blocks, successor/predecessor edges, dominator computation
(used to decide whether a ``setField`` dominates every ``emit`` of a
record), and strongly-connected components (used for emit-cardinality
bounds: an emit inside a cycle means an unbounded upper emit count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tac import Goto, Instr, Return, TACFunction, falls_through, jump_targets


@dataclass(slots=True)
class BasicBlock:
    index: int
    start: int  # first instruction index (inclusive)
    end: int  # last instruction index (inclusive)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instruction_indices(self) -> range:
        return range(self.start, self.end + 1)


class ControlFlowGraph:
    """CFG of one TAC function, with dominators and SCCs on demand."""

    def __init__(self, fn: TACFunction) -> None:
        self.fn = fn
        self.blocks: list[BasicBlock] = []
        self.block_of_instr: dict[int, int] = {}
        self.entry: int = 0
        self.exit_blocks: list[int] = []
        self._build()
        self._dominators: list[set[int]] | None = None
        self._sccs: list[set[int]] | None = None
        self._scc_of: dict[int, int] | None = None

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        instrs = self.fn.instructions
        n = len(instrs)
        if n == 0:
            self.blocks = [BasicBlock(0, 0, -1)]
            self.exit_blocks = [0]
            return
        leaders: set[int] = {0}
        for i, instr in enumerate(instrs):
            targets = jump_targets(instr)
            for t in targets:
                if t < n:
                    leaders.add(t)
            if targets or isinstance(instr, (Goto, Return)):
                if i + 1 < n:
                    leaders.add(i + 1)
        ordered = sorted(leaders)
        for bi, start in enumerate(ordered):
            end = (ordered[bi + 1] - 1) if bi + 1 < len(ordered) else n - 1
            block = BasicBlock(bi, start, end)
            self.blocks.append(block)
            for ii in range(start, end + 1):
                self.block_of_instr[ii] = bi

        for block in self.blocks:
            last = instrs[block.end]
            succs: set[int] = set()
            for t in jump_targets(last):
                if t < n:
                    succs.add(self.block_of_instr[t])
                # a jump to index n is an implicit return
            if falls_through(last) and block.end + 1 < n:
                succs.add(self.block_of_instr[block.end + 1])
            block.successors = sorted(succs)
            is_exit = isinstance(last, Return)
            if falls_through(last) and block.end + 1 >= n:
                is_exit = True
            if any(t >= n for t in jump_targets(last)):
                is_exit = True
            if is_exit:
                self.exit_blocks.append(block.index)
        for block in self.blocks:
            for s in block.successors:
                self.blocks[s].predecessors.append(block.index)
        if not self.exit_blocks:
            # Degenerate infinite loop; treat every block as a possible exit
            # to stay conservative rather than failing.
            self.exit_blocks = [b.index for b in self.blocks]

    # -- dominators -----------------------------------------------------------

    def dominators(self) -> list[set[int]]:
        """dominators()[b] = set of blocks dominating block b (incl. b)."""
        if self._dominators is not None:
            return self._dominators
        n = len(self.blocks)
        all_blocks = set(range(n))
        dom: list[set[int]] = [all_blocks.copy() for _ in range(n)]
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for b in range(n):
                if b == self.entry:
                    continue
                preds = self.blocks[b].predecessors
                if preds:
                    new = set.intersection(*(dom[p] for p in preds)) | {b}
                else:
                    new = {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        self._dominators = dom
        return dom

    def instr_dominates(self, a: int, b: int) -> bool:
        """True if instruction ``a`` executes on every path reaching ``b``."""
        ba, bb = self.block_of_instr[a], self.block_of_instr[b]
        if ba == bb:
            return a <= b
        return ba in self.dominators()[bb]

    # -- strongly connected components ---------------------------------------

    def sccs(self) -> list[set[int]]:
        """SCCs of the block graph (iterative Tarjan)."""
        if self._sccs is not None:
            return self._sccs
        n = len(self.blocks)
        index_counter = [0]
        stack: list[int] = []
        lowlink = [0] * n
        index = [-1] * n
        on_stack = [False] * n
        result: list[set[int]] = []

        for start in range(n):
            if index[start] != -1:
                continue
            work = [(start, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    index[v] = lowlink[v] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(v)
                    on_stack[v] = True
                recurse = False
                succs = self.blocks[v].successors
                while pi < len(succs):
                    w = succs[pi]
                    pi += 1
                    if index[w] == -1:
                        work[-1] = (v, pi)
                        work.append((w, 0))
                        recurse = True
                        break
                    if on_stack[w]:
                        lowlink[v] = min(lowlink[v], index[w])
                if recurse:
                    continue
                work[-1] = (v, pi)
                if pi >= len(succs):
                    if lowlink[v] == index[v]:
                        scc: set[int] = set()
                        while True:
                            w = stack.pop()
                            on_stack[w] = False
                            scc.add(w)
                            if w == v:
                                break
                        result.append(scc)
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[v])
        self._sccs = result
        self._scc_of = {}
        for i, scc in enumerate(result):
            for b in scc:
                self._scc_of[b] = i
        return result

    def scc_of(self, block: int) -> int:
        self.sccs()
        assert self._scc_of is not None
        return self._scc_of[block]

    def scc_is_cyclic(self, scc_index: int) -> bool:
        scc = self.sccs()[scc_index]
        if len(scc) > 1:
            return True
        (b,) = scc
        return b in self.blocks[b].successors

    # -- convenience -----------------------------------------------------------

    def instructions_in_block(self, block_index: int) -> list[tuple[int, Instr]]:
        block = self.blocks[block_index]
        return [
            (i, self.fn.instructions[i]) for i in block.instruction_indices()
        ]
