"""Static code analysis: TAC IR, CFG, data-flow chains, analyzer, bytecode
front-end (the paper's Section 5 component, Soot replaced by ``dis``)."""

from .analyzer import AnalysisEscape, analyze_tac
from .api import analyze_udf
from .cfg import BasicBlock, ControlFlowGraph
from .chains import Chains, build_chains
from .dataflow import ReachingDefinitions, reaching_definitions
from .interp import execute_tac_udf
from .pybytecode import compile_to_tac
from .tac import TACFunction, parse_tac

__all__ = [
    "AnalysisEscape",
    "BasicBlock",
    "Chains",
    "ControlFlowGraph",
    "ReachingDefinitions",
    "TACFunction",
    "analyze_tac",
    "analyze_udf",
    "build_chains",
    "compile_to_tac",
    "execute_tac_udf",
    "parse_tac",
    "reaching_definitions",
]
