"""CPython bytecode front-end: translate UDF bytecode to TAC.

The paper analyzes the Java bytecode of UDFs through the Soot framework
(Section 5 / 7.1).  This module plays Soot's role for Python: it walks the
CPython 3.11 bytecode of a UDF with ``dis``, simulates the value stack
(one TAC variable per stack depth), and emits the three-address code the
analyzer consumes.

Mirroring the paper's restriction to "field accesses with literals and
final variables", module-level constants referenced by ``LOAD_GLOBAL`` are
resolved and folded, so ``rec.get_field(L_SHIPDATE)`` is statically
analyzable.  Anything the translator cannot model — exception handling,
closures, records escaping into unknown calls, dynamic callees — raises
:class:`UnsupportedBytecode`; the caller then falls back to conservative
properties, preserving safety.
"""

from __future__ import annotations

import builtins
import dis
from typing import Any, Callable

from ..core.errors import UnsupportedBytecode
from ..core.udf import ParamKind
from .tac import (
    Assign,
    BinOp,
    Call,
    ConcatRec,
    Const,
    CopyRec,
    Emit,
    FuncRef,
    GetField,
    GetItem,
    Goto,
    IfFalse,
    IfTrue,
    Instr,
    IterNew,
    IterNext,
    Lit,
    NewRec,
    Operand,
    Return,
    SetField,
    TACFunction,
    UnOp,
    Var,
)

_RECORD_METHODS = {"get_field", "copy", "new_record", "concat", "set_field", "emit"}

_SIMPLE_CONSTS = (int, float, str, bool, bytes, type(None))

# Reflective or stateful builtins break the "opaque calls are pure value
# functions" assumption; code using them cannot be modeled.
_UNSAFE_GLOBALS = {
    "eval", "exec", "compile", "globals", "locals", "vars", "setattr",
    "delattr", "getattr", "__import__", "open", "input", "id", "memoryview",
}

_BIN_SYMBOLS = {
    "+", "-", "*", "/", "//", "%", "**", "&", "|", "^", "<<", ">>", "@",
}


def _const_ok(value: Any) -> bool:
    if isinstance(value, _SIMPLE_CONSTS):
        return True
    if isinstance(value, tuple):
        return all(_const_ok(v) for v in value)
    return False


class _CT:
    """Compile-time metadata for one stack slot or local."""

    __slots__ = ("kind", "value", "name")

    def __init__(self, kind: str, value: Any = None, name: str = "") -> None:
        self.kind = kind  # 'const' | 'func' | 'method' | 'null'
        self.value = value
        self.name = name


class _Translator:
    def __init__(self, fn: Callable, param_kinds: tuple[ParamKind, ...]) -> None:
        self.fn = fn
        self.param_kinds = param_kinds
        self.code = fn.__code__
        self._check_code_object()
        self.instructions: list[dis.Instruction] = list(
            dis.get_instructions(self.code)
        )
        self.tac: list[Instr] = []
        self.tac_index_of_offset: dict[int, int] = {}
        self.pending_jumps: list[tuple[int, int, str]] = []  # (tac_idx, offset, field)
        self.env: dict[str, Callable] = {}
        self.depth_at: dict[int, int] = {}
        self.slot_ct: dict[int, _CT] = {}
        self.local_ct: dict[str, _CT] = {}
        self.boundaries: set[int] = set()

    # -- guards ---------------------------------------------------------------

    def _check_code_object(self) -> None:
        code = self.code
        if code.co_exceptiontable:
            raise UnsupportedBytecode("try/except blocks are not modeled")
        if code.co_freevars or code.co_cellvars:
            raise UnsupportedBytecode("closures are not modeled")
        flags = code.co_flags
        if flags & (0x20 | 0x80 | 0x100 | 0x200):  # generator/coroutine variants
            raise UnsupportedBytecode("generators/coroutines are not modeled")
        if flags & 0x04 or flags & 0x08:  # *args / **kwargs
            raise UnsupportedBytecode("varargs UDF signatures are not modeled")

    # -- small helpers ----------------------------------------------------------

    def _bail(self, message: str) -> None:
        raise UnsupportedBytecode(f"{self.fn.__name__}: {message}")

    def _slot(self, depth: int) -> str:
        return f"$s{depth}"

    def _operand_at(self, depth: int) -> Operand:
        ct = self.slot_ct.get(depth)
        if ct is not None and ct.kind == "const":
            return Lit(ct.value)
        return Var(self._slot(depth))

    def _emit(self, instr: Instr) -> None:
        self.tac.append(instr)

    def _emit_jump(self, instr: Instr, target_offset: int, field_name: str) -> None:
        self.pending_jumps.append((len(self.tac), target_offset, field_name))
        self.tac.append(instr)

    def _set_ct(self, depth: int, ct: _CT | None) -> None:
        if ct is None:
            self.slot_ct.pop(depth, None)
        else:
            self.slot_ct[depth] = ct

    def _resolve_global(self, name: str) -> _CT:
        if name in _UNSAFE_GLOBALS:
            self._bail(f"use of unsafe global {name!r}")
        namespace = self.fn.__globals__
        if name in namespace:
            value = namespace[name]
        elif hasattr(builtins, name):
            value = getattr(builtins, name)
        else:
            self._bail(f"unresolvable global {name!r}")
        if _const_ok(value):
            return _CT("const", value=value)
        if callable(value):
            self.env[name] = value
            return _CT("func", value=value, name=name)
        self._bail(f"global {name!r} is neither a constant nor a callable")
        raise AssertionError  # unreachable

    # -- stack depth computation -------------------------------------------------

    def _compute_depths(self) -> None:
        offsets = [i.offset for i in self.instructions]
        index_of = {off: k for k, off in enumerate(offsets)}
        self.depth_at[offsets[0]] = 0
        work = [offsets[0]]
        while work:
            off = work.pop()
            k = index_of[off]
            instr = self.instructions[k]
            depth = self.depth_at[off]
            name = instr.opname
            if name == "RETURN_VALUE":
                continue
            targets: list[tuple[int, int]] = []
            if instr.opcode in dis.hasjabs or instr.opcode in dis.hasjrel:
                effect = dis.stack_effect(instr.opcode, instr.arg, jump=True)
                targets.append((instr.argval, depth + effect))
                if name not in ("JUMP_FORWARD", "JUMP_BACKWARD"):
                    effect = dis.stack_effect(instr.opcode, instr.arg, jump=False)
                    if k + 1 < len(self.instructions):
                        targets.append((offsets[k + 1], depth + effect))
            else:
                effect = dis.stack_effect(instr.opcode, instr.arg, jump=False)
                if k + 1 < len(self.instructions):
                    targets.append((offsets[k + 1], depth + effect))
            for t_off, t_depth in targets:
                if t_off not in self.depth_at:
                    self.depth_at[t_off] = t_depth
                    work.append(t_off)
                elif self.depth_at[t_off] != t_depth:
                    self._bail(f"inconsistent stack depth at offset {t_off}")

    # -- main translation ---------------------------------------------------------

    def translate(self) -> TACFunction:
        self._compute_depths()
        self.boundaries = {
            i.argval
            for i in self.instructions
            if i.opcode in dis.hasjabs or i.opcode in dis.hasjrel
        }
        for instr in self.instructions:
            if instr.offset in self.boundaries or instr.is_jump_target:
                self.slot_ct.clear()
                self.local_ct.clear()
            self.tac_index_of_offset[instr.offset] = len(self.tac)
            if instr.offset not in self.depth_at:
                continue  # unreachable bytecode
            self._translate_one(instr)

        resolved: list[Instr] = []
        patch: dict[int, int] = {}
        for tac_idx, target_offset, _ in self.pending_jumps:
            if target_offset not in self.tac_index_of_offset:
                self._bail(f"jump to unknown offset {target_offset}")
            patch[tac_idx] = self.tac_index_of_offset[target_offset]
        import dataclasses

        for idx, instr in enumerate(self.tac):
            if idx in patch:
                if isinstance(instr, (IfTrue, IfFalse, Goto)):
                    instr = dataclasses.replace(instr, target=patch[idx])
                elif isinstance(instr, IterNext):
                    instr = dataclasses.replace(instr, exhausted_target=patch[idx])
            resolved.append(instr)

        code = self.code
        n_params = code.co_argcount
        if n_params != len(self.param_kinds) + 1:
            self._bail(
                f"expected {len(self.param_kinds)} record parameters plus a "
                f"collector, found {n_params} parameters"
            )
        record_params = tuple(code.co_varnames[: n_params - 1])
        return TACFunction(
            self.fn.__name__, record_params, tuple(resolved), self.env
        )

    def _translate_one(self, instr: dis.Instruction) -> None:
        name = instr.opname
        depth = self.depth_at[instr.offset]
        handler = getattr(self, f"_op_{name}", None)
        if handler is None:
            self._bail(f"unsupported opcode {name}")
        handler(instr, depth)

    # -- opcode handlers -----------------------------------------------------------
    # Each handler receives the dis instruction and the stack depth *before*
    # the instruction executes.

    def _op_RESUME(self, instr, depth) -> None:
        pass

    def _op_NOP(self, instr, depth) -> None:
        pass

    def _op_PRECALL(self, instr, depth) -> None:
        pass

    def _op_PUSH_NULL(self, instr, depth) -> None:
        self._emit(Const(self._slot(depth), None))
        self._set_ct(depth, _CT("null"))

    def _op_LOAD_CONST(self, instr, depth) -> None:
        if not _const_ok(instr.argval):
            self._bail(f"unsupported constant {instr.argval!r}")
        self._emit(Const(self._slot(depth), instr.argval))
        self._set_ct(depth, _CT("const", value=instr.argval))

    def _op_LOAD_FAST(self, instr, depth) -> None:
        self._emit(Assign(self._slot(depth), Var(instr.argval)))
        self._set_ct(depth, self.local_ct.get(instr.argval))

    def _op_STORE_FAST(self, instr, depth) -> None:
        self._emit(Assign(instr.argval, self._operand_at(depth - 1)))
        ct = self.slot_ct.get(depth - 1)
        if ct is not None and ct.kind == "const":
            self.local_ct[instr.argval] = ct
        else:
            self.local_ct.pop(instr.argval, None)
        self._set_ct(depth - 1, None)

    def _op_LOAD_GLOBAL(self, instr, depth) -> None:
        push_null = bool(instr.arg & 1)
        ct = self._resolve_global(instr.argval)
        slot = depth
        if push_null:
            self._emit(Const(self._slot(depth), None))
            self._set_ct(depth, _CT("null"))
            slot = depth + 1
        if ct.kind == "const":
            self._emit(Const(self._slot(slot), ct.value))
        else:
            self._emit(Const(self._slot(slot), FuncRef(ct.name)))
        self._set_ct(slot, ct)

    def _op_LOAD_METHOD(self, instr, depth) -> None:
        # Receiver is at depth-1; afterwards: marker at depth-1, self at depth.
        receiver_ct = self.slot_ct.get(depth - 1)
        self._emit(Assign(self._slot(depth), Var(self._slot(depth - 1))))
        self._set_ct(depth, receiver_ct)
        self._emit(Const(self._slot(depth - 1), FuncRef(f"method:{instr.argval}")))
        self._set_ct(depth - 1, _CT("method", name=instr.argval))

    def _op_CALL(self, instr, depth) -> None:
        # CPython 3.11 accounting splits the pops between PRECALL (-argc)
        # and CALL (-1); the *true* layout at this point is
        #   marker/null @ depth-2, receiver/callable @ depth-1,
        #   args @ depth .. depth+argc-1
        # and the result lands in slot depth-2.
        argc = instr.arg
        args = [self._operand_at(depth + k) for k in range(argc)]
        callee_a = self.slot_ct.get(depth - 2)
        callee_b = self.slot_ct.get(depth - 1)
        result_depth = depth - 2
        dst = self._slot(result_depth)

        if callee_a is not None and callee_a.kind == "method":
            receiver = Var(self._slot(depth - 1))
            self._translate_method_call(callee_a.name, receiver, args, dst)
        elif (
            callee_a is not None
            and callee_a.kind == "null"
            and callee_b is not None
            and callee_b.kind == "func"
        ):
            self._emit(Call(dst, callee_b.name, tuple(args)))
        else:
            self._bail("cannot statically resolve call target")
        for d in range(result_depth, depth + argc):
            self._set_ct(d, None)

    def _translate_method_call(
        self, method: str, receiver: Var, args: list[Operand], dst: str
    ) -> None:
        if method == "get_field":
            if len(args) != 1:
                self._bail("get_field takes one argument")
            self._emit(GetField(dst, receiver, args[0]))
        elif method == "copy":
            if args:
                self._bail("copy takes no arguments")
            self._emit(CopyRec(dst, receiver))
        elif method == "new_record":
            if args:
                self._bail("new_record takes no arguments")
            self._emit(NewRec(dst, receiver))
        elif method == "concat":
            if len(args) != 1 or not isinstance(args[0], Var):
                self._bail("concat takes one record argument")
            self._emit(ConcatRec(dst, receiver, args[0]))
        elif method == "set_field":
            if len(args) != 2:
                self._bail("set_field takes two arguments")
            self._emit(SetField(receiver, args[0], args[1]))
            self._emit(Const(dst, None))
        elif method == "emit":
            if len(args) != 1 or not isinstance(args[0], Var):
                self._bail("emit takes one record argument")
            self._emit(Emit(args[0]))
            self._emit(Const(dst, None))
        else:
            # Opaque method on a value (e.g. str.startswith); keep the
            # receiver as the first argument so taint flows through.
            self._emit(Call(dst, f"method:{method}", (receiver, *args)))

    def _op_BINARY_OP(self, instr, depth) -> None:
        symbol = instr.argrepr.rstrip("=") or instr.argrepr
        if symbol not in _BIN_SYMBOLS:
            self._bail(f"unsupported binary operator {instr.argrepr!r}")
        self._emit(
            BinOp(
                self._slot(depth - 2),
                symbol,
                self._operand_at(depth - 2),
                self._operand_at(depth - 1),
            )
        )
        self._set_ct(depth - 2, None)
        self._set_ct(depth - 1, None)

    def _op_COMPARE_OP(self, instr, depth) -> None:
        self._emit(
            BinOp(
                self._slot(depth - 2),
                instr.argval,
                self._operand_at(depth - 2),
                self._operand_at(depth - 1),
            )
        )
        self._set_ct(depth - 2, None)
        self._set_ct(depth - 1, None)

    def _op_IS_OP(self, instr, depth) -> None:
        op = "is not" if instr.arg else "is"
        self._emit(
            BinOp(
                self._slot(depth - 2),
                op,
                self._operand_at(depth - 2),
                self._operand_at(depth - 1),
            )
        )
        self._set_ct(depth - 2, None)
        self._set_ct(depth - 1, None)

    def _op_CONTAINS_OP(self, instr, depth) -> None:
        op = "not in" if instr.arg else "in"
        self._emit(
            BinOp(
                self._slot(depth - 2),
                op,
                self._operand_at(depth - 2),
                self._operand_at(depth - 1),
            )
        )
        self._set_ct(depth - 2, None)
        self._set_ct(depth - 1, None)

    def _op_UNARY_NEGATIVE(self, instr, depth) -> None:
        self._emit(UnOp(self._slot(depth - 1), "neg", self._operand_at(depth - 1)))
        self._set_ct(depth - 1, None)

    def _op_UNARY_NOT(self, instr, depth) -> None:
        self._emit(UnOp(self._slot(depth - 1), "not", self._operand_at(depth - 1)))
        self._set_ct(depth - 1, None)

    def _op_UNARY_POSITIVE(self, instr, depth) -> None:
        self._emit(UnOp(self._slot(depth - 1), "pos", self._operand_at(depth - 1)))
        self._set_ct(depth - 1, None)

    def _op_BINARY_SUBSCR(self, instr, depth) -> None:
        self._emit(
            GetItem(
                self._slot(depth - 2),
                Var(self._slot(depth - 2)),
                self._operand_at(depth - 1),
            )
        )
        self._set_ct(depth - 2, None)
        self._set_ct(depth - 1, None)

    def _op_GET_ITER(self, instr, depth) -> None:
        self._emit(IterNew(self._slot(depth - 1), self._operand_at(depth - 1)))
        self._set_ct(depth - 1, None)

    def _op_FOR_ITER(self, instr, depth) -> None:
        self._emit_jump(
            IterNext(self._slot(depth), Var(self._slot(depth - 1)), -1),
            instr.argval,
            "exhausted_target",
        )
        self._set_ct(depth, None)

    def _op_POP_TOP(self, instr, depth) -> None:
        self._set_ct(depth - 1, None)

    def _op_SWAP(self, instr, depth) -> None:
        i = instr.arg
        a, b = self._slot(depth - 1), self._slot(depth - i)
        tmp = f"$swap{len(self.tac)}"
        self._emit(Assign(tmp, Var(a)))
        self._emit(Assign(a, Var(b)))
        self._emit(Assign(b, Var(tmp)))
        ct_a, ct_b = self.slot_ct.get(depth - 1), self.slot_ct.get(depth - i)
        self._set_ct(depth - 1, ct_b)
        self._set_ct(depth - i, ct_a)

    def _op_COPY(self, instr, depth) -> None:
        i = instr.arg
        self._emit(Assign(self._slot(depth), Var(self._slot(depth - i))))
        self._set_ct(depth, self.slot_ct.get(depth - i))

    def _op_RETURN_VALUE(self, instr, depth) -> None:
        self._emit(Return())

    def _op_JUMP_FORWARD(self, instr, depth) -> None:
        self._emit_jump(Goto(-1), instr.argval, "target")

    def _op_JUMP_BACKWARD(self, instr, depth) -> None:
        self._emit_jump(Goto(-1), instr.argval, "target")

    def _op_JUMP_BACKWARD_NO_INTERRUPT(self, instr, depth) -> None:
        self._emit_jump(Goto(-1), instr.argval, "target")

    def _branch(self, instr, depth, cls) -> None:
        self._emit_jump(cls(self._operand_at(depth - 1), -1), instr.argval, "target")
        self._set_ct(depth - 1, None)

    def _op_POP_JUMP_FORWARD_IF_FALSE(self, instr, depth) -> None:
        self._branch(instr, depth, IfFalse)

    def _op_POP_JUMP_FORWARD_IF_TRUE(self, instr, depth) -> None:
        self._branch(instr, depth, IfTrue)

    def _op_POP_JUMP_BACKWARD_IF_FALSE(self, instr, depth) -> None:
        self._branch(instr, depth, IfFalse)

    def _op_POP_JUMP_BACKWARD_IF_TRUE(self, instr, depth) -> None:
        self._branch(instr, depth, IfTrue)

    def _none_branch(self, instr, depth, jump_if_none: bool) -> None:
        tmp = f"$isnone{len(self.tac)}"
        self._emit(BinOp(tmp, "is", self._operand_at(depth - 1), Lit(None)))
        cls = IfTrue if jump_if_none else IfFalse
        self._emit_jump(cls(Var(tmp), -1), instr.argval, "target")
        self._set_ct(depth - 1, None)

    def _op_POP_JUMP_FORWARD_IF_NONE(self, instr, depth) -> None:
        self._none_branch(instr, depth, True)

    def _op_POP_JUMP_FORWARD_IF_NOT_NONE(self, instr, depth) -> None:
        self._none_branch(instr, depth, False)

    def _op_POP_JUMP_BACKWARD_IF_NONE(self, instr, depth) -> None:
        self._none_branch(instr, depth, True)

    def _op_POP_JUMP_BACKWARD_IF_NOT_NONE(self, instr, depth) -> None:
        self._none_branch(instr, depth, False)

    def _op_JUMP_IF_TRUE_OR_POP(self, instr, depth) -> None:
        self._emit_jump(
            IfTrue(self._operand_at(depth - 1), -1), instr.argval, "target"
        )
        self._set_ct(depth - 1, None)

    def _op_JUMP_IF_FALSE_OR_POP(self, instr, depth) -> None:
        self._emit_jump(
            IfFalse(self._operand_at(depth - 1), -1), instr.argval, "target"
        )
        self._set_ct(depth - 1, None)

    def _op_BUILD_TUPLE(self, instr, depth) -> None:
        self._build(instr, depth, "__build_tuple__")

    def _op_BUILD_LIST(self, instr, depth) -> None:
        self._build(instr, depth, "__build_list__")

    def _build(self, instr, depth, name) -> None:
        n = instr.arg
        args = tuple(self._operand_at(depth - n + k) for k in range(n))
        self._emit(Call(self._slot(depth - n), name, args))
        for d in range(depth - n, depth):
            self._set_ct(d, None)

    def _op_LIST_APPEND(self, instr, depth) -> None:
        i = instr.arg
        self._emit(
            Call(
                None,
                "__list_append__",
                (Var(self._slot(depth - 1 - i)), self._operand_at(depth - 1)),
            )
        )
        self._set_ct(depth - 1, None)


def compile_to_tac(fn: Callable, param_kinds: tuple[ParamKind, ...]) -> TACFunction:
    """Translate a Python UDF's bytecode into TAC (raises UnsupportedBytecode)."""
    if not callable(fn) or not hasattr(fn, "__code__"):
        raise UnsupportedBytecode("not a plain Python function")
    return _Translator(fn, param_kinds).translate()
