"""Executable semantics for TAC functions.

TAC UDFs are not just analyzable — they run.  This lets tests validate the
static analyzer against *observed* behavior (the soundness property of
Section 5: discovered property sets must be supersets of the true ones) and
lets whole data flows be authored in the paper's three-address notation.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ExecutionError, UdfError
from ..core.record import Collector, InputRecord, OutputRecord
from .tac import (
    Assign,
    BinOp,
    Call,
    ConcatRec,
    Const,
    CopyRec,
    Emit,
    GetField,
    GetItem,
    Goto,
    IfFalse,
    IfTrue,
    IterNew,
    IterNext,
    Lit,
    NewRec,
    Operand,
    Return,
    SetField,
    TACFunction,
    UnOp,
)

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a**b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "is": lambda a, b: a is b,
    "is not": lambda a, b: a is not b,
    "in": lambda a, b: a in b,
    "not in": lambda a, b: a not in b,
}

_UNOPS = {
    "neg": lambda a: -a,
    "not": lambda a: not a,
    "pos": lambda a: +a,
    "invert": lambda a: ~a,
}

SAFE_BUILTINS: dict[str, Any] = {
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "sum": sum,
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "round": round,
    "range": range,
    "tuple": tuple,
}


def execute_tac_udf(
    fn: TACFunction,
    record_args: tuple[Any, ...],
    collector: Collector,
    max_steps: int = 200_000,
) -> None:
    """Run a TAC UDF over wrapped record arguments, emitting to a collector."""
    if len(record_args) != len(fn.params):
        raise UdfError(
            f"{fn.name}: expected {len(fn.params)} record arguments, got "
            f"{len(record_args)}"
        )
    env: dict[str, Any] = dict(zip(fn.params, record_args))
    instrs = fn.instructions
    n = len(instrs)
    pc = 0
    steps = 0

    def val(operand: Operand) -> Any:
        if isinstance(operand, Lit):
            return operand.value
        try:
            return env[operand.name]
        except KeyError:
            raise ExecutionError(
                f"{fn.name}: variable {operand.name} used before assignment"
            ) from None

    while pc < n:
        steps += 1
        if steps > max_steps:
            raise ExecutionError(f"{fn.name}: exceeded {max_steps} interpreter steps")
        instr = instrs[pc]
        pc += 1
        if isinstance(instr, Const):
            env[instr.dst] = instr.value
        elif isinstance(instr, Assign):
            env[instr.dst] = val(instr.src)
        elif isinstance(instr, BinOp):
            try:
                env[instr.dst] = _BINOPS[instr.op](val(instr.left), val(instr.right))
            except KeyError:
                raise ExecutionError(f"{fn.name}: unknown operator {instr.op!r}") from None
        elif isinstance(instr, UnOp):
            env[instr.dst] = _UNOPS[instr.op](val(instr.operand))
        elif isinstance(instr, GetField):
            rec = val(instr.rec)
            if not isinstance(rec, (InputRecord, OutputRecord)):
                raise ExecutionError(f"{fn.name}: getField on non-record value")
            env[instr.dst] = rec.get_field(val(instr.pos))
        elif isinstance(instr, SetField):
            rec = val(instr.rec)
            if not isinstance(rec, OutputRecord):
                raise ExecutionError(f"{fn.name}: setField needs an output record")
            rec.set_field(val(instr.pos), val(instr.value))
        elif isinstance(instr, CopyRec):
            rec = val(instr.src)
            if not isinstance(rec, InputRecord):
                raise ExecutionError(f"{fn.name}: copy() needs an input record")
            env[instr.dst] = rec.copy()
        elif isinstance(instr, NewRec):
            rec = val(instr.src)
            if not isinstance(rec, InputRecord):
                raise ExecutionError(f"{fn.name}: new_record() needs an input record")
            env[instr.dst] = rec.new_record()
        elif isinstance(instr, ConcatRec):
            left, right = val(instr.left), val(instr.right)
            if not isinstance(left, InputRecord) or not isinstance(right, InputRecord):
                raise ExecutionError(f"{fn.name}: concat() needs two input records")
            env[instr.dst] = left.concat(right)
        elif isinstance(instr, Emit):
            collector.emit(val(instr.rec))
        elif isinstance(instr, Call):
            target = fn.env.get(instr.func, SAFE_BUILTINS.get(instr.func))
            if target is None:
                raise ExecutionError(f"{fn.name}: unknown call target {instr.func!r}")
            result = target(*(val(a) for a in instr.args))
            if instr.dst is not None:
                env[instr.dst] = result
        elif isinstance(instr, GetItem):
            env[instr.dst] = val(instr.seq)[val(instr.index)]
        elif isinstance(instr, IterNew):
            env[instr.dst] = iter(val(instr.src))
        elif isinstance(instr, IterNext):
            iterator = val(instr.iterator)
            try:
                env[instr.dst] = next(iterator)
            except StopIteration:
                pc = instr.exhausted_target
        elif isinstance(instr, IfTrue):
            if val(instr.cond):
                pc = instr.target
        elif isinstance(instr, IfFalse):
            if not val(instr.cond):
                pc = instr.target
        elif isinstance(instr, Goto):
            pc = instr.target
        elif isinstance(instr, Return):
            return
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"{fn.name}: cannot execute {instr!r}")
