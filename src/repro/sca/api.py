"""Public entry point of the static code analysis component."""

from __future__ import annotations

import weakref
from typing import Any

from ..core.errors import AnalysisError, UnsupportedBytecode
from ..core.properties import UdfProperties, conservative_properties
from ..core.udf import ParamKind
from .analyzer import AnalysisEscape, analyze_tac
from .pybytecode import compile_to_tac
from .tac import TACFunction


# A UDF's bytecode is immutable, so analysis is a pure function of the
# function object and its parameter kinds; memoize it module-wide.  The
# same UDF is analyzed once per process no matter how many operators,
# plan contexts, or repeated passes reference it.  Keys are held weakly
# so dropped UDFs (and their captured closures) are reclaimed instead of
# pinned for the process lifetime.
_analysis_cache: "weakref.WeakKeyDictionary[Any, dict[tuple[ParamKind, ...], UdfProperties]]" = (
    weakref.WeakKeyDictionary()
)


def analyze_udf(fn: Any, param_kinds: tuple[ParamKind, ...]) -> UdfProperties:
    """Derive black-box properties for a UDF (Section 5).

    Accepts either a plain Python function (translated from bytecode) or a
    :class:`TACFunction`.  Never raises for unanalyzable code: the result
    degrades to the conservative read-all/write-all properties, exactly as
    the paper's safety argument requires.
    """
    try:
        per_fn = _analysis_cache.get(fn)
        if per_fn is None:
            per_fn = {}
            _analysis_cache[fn] = per_fn
    except TypeError:  # unhashable or non-weakrefable fn: skip caching
        return _analyze_udf(fn, param_kinds)
    result = per_fn.get(param_kinds)
    if result is None:
        result = _analyze_udf(fn, param_kinds)
        per_fn[param_kinds] = result
    return result


def _analyze_udf(fn: Any, param_kinds: tuple[ParamKind, ...]) -> UdfProperties:
    try:
        if isinstance(fn, TACFunction):
            return analyze_tac(fn, param_kinds)
        tac_fn = compile_to_tac(fn, param_kinds)
        return analyze_tac(tac_fn, param_kinds)
    except (UnsupportedBytecode, AnalysisEscape) as exc:
        return conservative_properties(str(exc))
    except AnalysisError as exc:
        return conservative_properties(f"analysis error: {exc}")
