"""Public entry point of the static code analysis component."""

from __future__ import annotations

from typing import Any

from ..core.errors import AnalysisError, UnsupportedBytecode
from ..core.properties import UdfProperties, conservative_properties
from ..core.udf import ParamKind
from .analyzer import AnalysisEscape, analyze_tac
from .pybytecode import compile_to_tac
from .tac import TACFunction


def analyze_udf(fn: Any, param_kinds: tuple[ParamKind, ...]) -> UdfProperties:
    """Derive black-box properties for a UDF (Section 5).

    Accepts either a plain Python function (translated from bytecode) or a
    :class:`TACFunction`.  Never raises for unanalyzable code: the result
    degrades to the conservative read-all/write-all properties, exactly as
    the paper's safety argument requires.
    """
    try:
        if isinstance(fn, TACFunction):
            return analyze_tac(fn, param_kinds)
        tac_fn = compile_to_tac(fn, param_kinds)
        return analyze_tac(tac_fn, param_kinds)
    except (UnsupportedBytecode, AnalysisEscape) as exc:
        return conservative_properties(str(exc))
    except AnalysisError as exc:
        return conservative_properties(f"analysis error: {exc}")
