"""USE-DEF and DEF-USE chains over TAC functions (Section 5).

``USE-DEF(l, $t)`` is the list of definitions of ``$t`` reaching statement
``l``; ``DEF-USE(l, $t)`` is the list of uses of the value defined at ``l``.
The analyzer uses these exactly as the paper describes: e.g. a field read
enters the read set only if the temporary produced by ``getField`` has
uses, and explicit copies are recognized by chasing a ``setField`` value
back to its defining ``getField``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import ControlFlowGraph
from .dataflow import Definition, reaching_definitions
from .tac import TACFunction, Var


@dataclass(slots=True)
class Chains:
    fn: TACFunction
    use_def: dict[tuple[int, str], frozenset[Definition]] = field(default_factory=dict)
    def_use: dict[Definition, frozenset[int]] = field(default_factory=dict)

    def uses_of(self, def_index: int, var: str) -> frozenset[int]:
        return self.def_use.get((def_index, var), frozenset())

    def defs_for(self, use_index: int, var: str) -> frozenset[Definition]:
        return self.use_def.get((use_index, var), frozenset())


def build_chains(cfg: ControlFlowGraph) -> Chains:
    fn = cfg.fn
    reaching = reaching_definitions(cfg)
    use_def: dict[tuple[int, str], set[Definition]] = {}
    def_use: dict[Definition, set[int]] = {}

    for i, instr in enumerate(fn.instructions):
        for operand in instr.used_operands():
            if not isinstance(operand, Var):
                continue
            var = operand.name
            defs = {d for d in reaching.reach_in[i] if d[1] == var}
            use_def.setdefault((i, var), set()).update(defs)
            for d in defs:
                def_use.setdefault(d, set()).add(i)

    return Chains(
        fn,
        {k: frozenset(v) for k, v in use_def.items()},
        {k: frozenset(v) for k, v in def_use.items()},
    )
