"""The static property analyzer (Section 5 of the paper).

Given a UDF in three-address code, this module conservatively derives:

* the **read set** — ``getField`` results that are actually *used*
  (a pure copy back to the same field does not count, exactly as the
  paper's explicit-copy detection prescribes);
* the **write set** — explicit modifications and projections plus the
  implicit behavior of the output-record constructor used (implicit copy
  vs. implicit projection vs. binary concatenation);
* **emit cardinality bounds** per call, from the control flow graph
  (an emit inside a cycle yields an unbounded upper bound);
* **branch reads** — fields that influence control decisions, used for the
  key-group-preservation condition (Definition 5).

Safety is guaranteed through conservatism: any construct the analyzer
cannot model precisely escalates — a dynamic field index widens the
read/write set to "all fields", and a record escaping into an opaque call
aborts the analysis entirely (the caller falls back to
``conservative_properties``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import AnalysisError
from ..core.properties import (
    EmitBounds,
    FieldSet,
    KatBehavior,
    UdfProperties,
)
from ..core.udf import ParamKind
from .cfg import ControlFlowGraph
from .tac import (
    Assign,
    BinOp,
    Call,
    ConcatRec,
    Const,
    CopyRec,
    Emit,
    GetField,
    GetItem,
    Goto,
    IfFalse,
    IfTrue,
    Instr,
    IterNew,
    IterNext,
    Lit,
    NewRec,
    Operand,
    Return,
    SetField,
    TACFunction,
    UnOp,
    Var,
)


class AnalysisEscape(AnalysisError):
    """The UDF cannot be modeled; fall back to conservative properties."""


# Abstract tags --------------------------------------------------------------
#   ('rec', i)        input record of parameter i
#   ('list', i)       the record-list parameter i
#   ('iterlist', i)   an iterator over record-list i
#   ('out', site)     output record created at instruction index `site`
#   ('field', i, p)   the unmodified value of field p of input i (pure)
#   ('taint', i, p)   a value derived from field p of input i
#   ('taintall',)     a value derived from unknown fields

Tag = tuple
TAINT_ALL: Tag = ("taintall",)

# Opaque calls that may receive a record *list* without forcing escape:
# they depend only on the list structure, never on field values.
_LIST_SAFE_CALLS = {"len"}


@dataclass(slots=True)
class _SiteState:
    """Accumulated facts about one output-record creation site."""

    kind: str  # 'copy' | 'proj' | 'concat'
    # pos -> set of write kinds: 'modify' | 'project' | ('copy', i, p)
    set_kinds: dict[int, set] = field(default_factory=dict)
    set_instrs: dict[int, list[int]] = field(default_factory=dict)
    dynamic_write: bool = False
    emit_instrs: list[int] = field(default_factory=list)


@dataclass(slots=True)
class _State:
    reads: set = field(default_factory=set)  # (i, p)
    branch_reads: set = field(default_factory=set)
    reads_all: bool = False
    branch_reads_all: bool = False
    sites: dict[int, _SiteState] = field(default_factory=dict)
    emitted_inputs: bool = False  # some emit passes an input record through


def _taints_of(tags: frozenset) -> set:
    """Field-dependence tags (pure fields count as taints too)."""
    out = set()
    for t in tags:
        if t[0] in ("field", "taint"):
            out.add(("taint", t[1], t[2]))
        elif t == TAINT_ALL:
            out.add(TAINT_ALL)
    return out


def _record_like(tags: frozenset) -> bool:
    return any(t[0] in ("rec", "list", "iterlist", "out") for t in tags)


class _Analyzer:
    def __init__(self, fn: TACFunction, param_kinds: tuple[ParamKind, ...]) -> None:
        if len(fn.params) != len(param_kinds):
            raise AnalysisEscape(
                f"{fn.name}: {len(fn.params)} parameters but "
                f"{len(param_kinds)} parameter kinds"
            )
        self.fn = fn
        self.param_kinds = param_kinds
        self.cfg = ControlFlowGraph(fn)
        self.state = _State()

    # -- helpers -------------------------------------------------------------

    def _operand_tags(self, env: dict[str, frozenset], operand: Operand) -> frozenset:
        if isinstance(operand, Lit):
            return frozenset()
        return env.get(operand.name, frozenset())

    def _mark_read(self, tags: frozenset, branch: bool = False) -> None:
        state = self.state
        for t in _taints_of(tags):
            if t == TAINT_ALL:
                state.reads_all = True
                if branch:
                    state.branch_reads_all = True
                continue
            state.reads.add((t[1], t[2]))
            if branch:
                state.branch_reads.add((t[1], t[2]))

    def _site(self, site: int) -> _SiteState:
        try:
            return self.state.sites[site]
        except KeyError:  # pragma: no cover - defensive
            raise AnalysisEscape(f"{self.fn.name}: unknown output record site")

    # -- transfer function -----------------------------------------------------

    def _transfer(self, idx: int, instr: Instr, env: dict[str, frozenset]) -> None:
        fn_name = self.fn.name
        state = self.state

        if isinstance(instr, Const):
            env[instr.dst] = frozenset()
        elif isinstance(instr, Assign):
            env[instr.dst] = self._operand_tags(env, instr.src)
        elif isinstance(instr, (BinOp, UnOp)):
            tags = frozenset()
            for op in instr.used_operands():
                tags |= frozenset(_taints_of(self._operand_tags(env, op)))
                if _record_like(self._operand_tags(env, op)):
                    raise AnalysisEscape(
                        f"{fn_name}: record value used in arithmetic/comparison"
                    )
            env[instr.dst] = tags
        elif isinstance(instr, GetField):
            rec_tags = self._operand_tags(env, instr.rec)
            result: set = set()
            saw_record = False
            for t in rec_tags:
                if t[0] == "rec":
                    saw_record = True
                    if isinstance(instr.pos, Lit) and isinstance(instr.pos.value, int):
                        result.add(("field", t[1], instr.pos.value))
                    else:
                        state.reads_all = True
                        result.add(TAINT_ALL)
                elif t[0] == "out":
                    # Reading back from an output record: value may depend on
                    # anything that flowed into it; stay conservative.
                    saw_record = True
                    state.reads_all = True
                    result.add(TAINT_ALL)
                elif t[0] in ("list", "iterlist"):
                    raise AnalysisEscape(f"{fn_name}: getField on a record list")
            if not saw_record:
                raise AnalysisEscape(f"{fn_name}: getField on non-record value")
            # A tainted position operand also influences which field is read.
            pos_tags = self._operand_tags(env, instr.pos)
            if pos_tags:
                self._mark_read(pos_tags, branch=True)
            env[instr.dst] = frozenset(result)
        elif isinstance(instr, SetField):
            rec_tags = self._operand_tags(env, instr.rec)
            sites = [t[1] for t in rec_tags if t[0] == "out"]
            if not sites:
                raise AnalysisEscape(f"{fn_name}: setField on non-output record")
            value_tags = self._operand_tags(env, instr.value)
            if _record_like(value_tags):
                raise AnalysisEscape(f"{fn_name}: record stored as a field value")
            pos_is_static = isinstance(instr.pos, Lit) and isinstance(
                instr.pos.value, int
            )
            for site in sites:
                site_state = self._site(site)
                if not pos_is_static:
                    site_state.dynamic_write = True
                    self._mark_read(self._operand_tags(env, instr.pos), branch=True)
                    self._mark_read(value_tags)
                    continue
                pos = instr.pos.value
                kinds = site_state.set_kinds.setdefault(pos, set())
                site_state.set_instrs.setdefault(pos, []).append(idx)
                if isinstance(instr.value, Lit) and instr.value.value is None:
                    kinds.add("project")
                else:
                    pure = [t for t in value_tags if t[0] == "field"]
                    others = [t for t in value_tags if t[0] != "field"]
                    if len(pure) == 1 and not others:
                        kinds.add(("copy", pure[0][1], pure[0][2]))
                    else:
                        kinds.add("modify")
                        self._mark_read(value_tags)
        elif isinstance(instr, CopyRec):
            self._new_site(idx, instr.src, env, "copy")
            env[instr.dst] = frozenset({("out", idx)})
        elif isinstance(instr, NewRec):
            self._new_site(idx, instr.src, env, "proj")
            env[instr.dst] = frozenset({("out", idx)})
        elif isinstance(instr, ConcatRec):
            for operand in (instr.left, instr.right):
                tags = self._operand_tags(env, operand)
                if not any(t[0] == "rec" for t in tags):
                    raise AnalysisEscape(f"{self.fn.name}: concat on non-record")
            if idx not in self.state.sites:
                self.state.sites[idx] = _SiteState(kind="concat")
            env[instr.dst] = frozenset({("out", idx)})
        elif isinstance(instr, Emit):
            tags = self._operand_tags(env, instr.rec)
            found = False
            for t in tags:
                if t[0] == "out":
                    self._site(t[1]).emit_instrs.append(idx)
                    found = True
                elif t[0] == "rec":
                    state.emitted_inputs = True
                    found = True
                elif t[0] in ("list", "iterlist"):
                    raise AnalysisEscape(f"{fn_name}: emit of a record list")
            if not found:
                raise AnalysisEscape(f"{fn_name}: emit of a non-record value")
        elif isinstance(instr, Call):
            taints: set = set()
            for arg in instr.args:
                arg_tags = self._operand_tags(env, arg)
                rec_tags = [t for t in arg_tags if t[0] in ("rec", "out", "iterlist")]
                list_tags = [t for t in arg_tags if t[0] == "list"]
                if rec_tags:
                    raise AnalysisEscape(
                        f"{fn_name}: record escapes into opaque call "
                        f"{instr.func!r}"
                    )
                if list_tags and instr.func not in _LIST_SAFE_CALLS:
                    raise AnalysisEscape(
                        f"{fn_name}: record list escapes into opaque call "
                        f"{instr.func!r}"
                    )
                taints |= _taints_of(arg_tags)
            if instr.dst is not None:
                env[instr.dst] = frozenset(taints)
        elif isinstance(instr, GetItem):
            seq_tags = self._operand_tags(env, instr.seq)
            result: set = set()
            for t in seq_tags:
                if t[0] == "list":
                    result.add(("rec", t[1]))
                else:
                    result |= _taints_of({t})
            index_tags = self._operand_tags(env, instr.index)
            if index_tags:
                self._mark_read(index_tags, branch=True)
            result |= _taints_of(seq_tags)
            env[instr.dst] = frozenset(result)
        elif isinstance(instr, IterNew):
            src_tags = self._operand_tags(env, instr.src)
            result = set()
            for t in src_tags:
                if t[0] == "list":
                    result.add(("iterlist", t[1]))
            taints = _taints_of(src_tags)
            if taints:
                # Iterating a value derived from fields: the iteration count
                # (and hence emission) may depend on those fields.
                self._mark_read(frozenset(taints), branch=True)
                result |= taints
            env[instr.dst] = frozenset(result)
        elif isinstance(instr, IterNext):
            it_tags = self._operand_tags(env, instr.iterator)
            result = set()
            for t in it_tags:
                if t[0] == "iterlist":
                    result.add(("rec", t[1]))
                else:
                    result |= _taints_of({t})
            env[instr.dst] = frozenset(result)
        elif isinstance(instr, (IfTrue, IfFalse)):
            cond_tags = self._operand_tags(env, instr.cond)
            # Branching on a record *list* is an emptiness test (common in
            # CoGroup UDFs): it reads no field values and is safe.  Branching
            # on a record itself cannot be modeled.
            if any(t[0] in ("rec", "out") for t in cond_tags):
                raise AnalysisEscape(f"{fn_name}: record used as branch condition")
            self._mark_read(cond_tags, branch=True)
        elif isinstance(instr, (Goto, Return)):
            pass
        else:  # pragma: no cover - defensive
            raise AnalysisEscape(f"{fn_name}: cannot analyze {instr!r}")

    def _new_site(
        self, idx: int, src: Var, env: dict[str, frozenset], kind: str
    ) -> None:
        src_tags = self._operand_tags(env, src)
        if not any(t[0] == "rec" for t in src_tags):
            raise AnalysisEscape(
                f"{self.fn.name}: record constructor on non-record value"
            )
        if idx not in self.state.sites:
            self.state.sites[idx] = _SiteState(kind=kind)

    # -- fixpoint ---------------------------------------------------------------

    def run(self) -> UdfProperties:
        entry_env: dict[str, frozenset] = {}
        for i, (param, kind) in enumerate(zip(self.fn.params, self.param_kinds)):
            tag = ("rec", i) if kind is ParamKind.RECORD else ("list", i)
            entry_env[param] = frozenset({tag})

        n_blocks = len(self.cfg.blocks)
        block_in: list[dict[str, frozenset] | None] = [None] * n_blocks
        block_in[self.cfg.entry] = entry_env
        worklist = [self.cfg.entry]
        while worklist:
            b = worklist.pop()
            env = dict(block_in[b] or {})
            for idx, instr in self.cfg.instructions_in_block(b):
                self._transfer(idx, instr, env)
            for s in self.cfg.blocks[b].successors:
                merged = self._merge(block_in[s], env)
                if merged is not None:
                    block_in[s] = merged
                    worklist.append(s)

        return self._finish()

    @staticmethod
    def _merge(
        existing: dict[str, frozenset] | None, incoming: dict[str, frozenset]
    ) -> dict[str, frozenset] | None:
        """Union-merge; returns the new env if it grew, else None."""
        if existing is None:
            return dict(incoming)
        changed = False
        merged = dict(existing)
        for var, tags in incoming.items():
            combined = merged.get(var, frozenset()) | tags
            if combined != merged.get(var):
                merged[var] = combined
                changed = True
        return merged if changed else None

    # -- result assembly ---------------------------------------------------------

    def _finish(self) -> UdfProperties:
        state = self.state
        modified: set[int] = set()
        copies: set[tuple[int, int, int]] = set()
        projected: FieldSet = FieldSet.empty()
        dynamic = False

        emitted_sites = [s for s in state.sites.values() if s.emit_instrs]
        for site in emitted_sites:
            if site.dynamic_write:
                dynamic = True
                self._degrade_copies_to_reads(site.set_kinds.values())
                continue
            site_projected: set[int] = set()
            for pos, kinds in site.set_kinds.items():
                pure_copy = self._pure_copy(kinds)
                if pure_copy is not None:
                    always = self._always_set(site, pos)
                    if site.kind == "proj" and not always:
                        # Present on some paths (as an unchanged copy),
                        # dropped on others: counts as projected.
                        site_projected.add(pos)
                    copies.add((pos, pure_copy[0], pure_copy[1]))
                    continue
                # Mixed write kinds: the copy-through modeling no longer
                # applies to this position, but any copy among them still
                # makes the output depend on its source field — degrade
                # those sources to plain reads.
                self._degrade_copies_to_reads([kinds])
                if kinds == {"project"}:
                    site_projected.add(pos)
                    continue
                if "project" in kinds:
                    site_projected.add(pos)
                modified.add(pos)
                if site.kind == "proj" and not self._always_set(site, pos):
                    site_projected.add(pos)
            if site.kind == "proj":
                explicit = set(site.set_kinds)
                projected = projected.union(FieldSet.all_except(*explicit))
            projected = projected.union(FieldSet(frozenset(site_projected)))

        reads = FieldSet(frozenset(state.reads))
        if state.reads_all:
            reads = FieldSet.all()
        branch_reads = FieldSet(frozenset(state.branch_reads))
        if state.branch_reads_all:
            branch_reads = FieldSet.all()

        writes_modified = FieldSet(frozenset(modified))
        if dynamic:
            writes_modified = FieldSet.all()

        bounds = self._emit_bounds()
        is_kat = any(k is ParamKind.RECORD_LIST for k in self.param_kinds)
        if is_kat:
            kat = (
                KatBehavior.ONE_PER_GROUP
                if bounds.exactly_one
                else KatBehavior.ARBITRARY
            )
        else:
            kat = KatBehavior.NOT_KAT

        return UdfProperties(
            reads=reads,
            branch_reads=branch_reads,
            writes_modified=writes_modified,
            writes_projected=projected,
            copies=frozenset(copies),
            emit_bounds=bounds,
            kat_behavior=kat,
            origin="sca",
        )

    def _degrade_copies_to_reads(self, kind_sets) -> None:
        """Record the source fields of copy writes as plain reads.

        A ``('copy', i, p)`` write is exempt from the read set only while
        the position is a *pure* copy (the flow is modeled by ``copies``
        at bind time).  Once that modeling is off the table — the position
        also sees modify/project writes, or the site has a dynamic write —
        the copied value is still field-dependent and must count as read.
        """
        for kinds in kind_sets:
            for kind in kinds:
                if isinstance(kind, tuple) and kind[0] == "copy":
                    self.state.reads.add((kind[1], kind[2]))

    @staticmethod
    def _pure_copy(kinds: set) -> tuple[int, int] | None:
        """If the position is only ever a copy from one source field,
        return (input_index, input_pos)."""
        if len(kinds) != 1:
            return None
        (kind,) = kinds
        if isinstance(kind, tuple) and kind[0] == "copy":
            return (kind[1], kind[2])
        return None

    def _always_set(self, site: _SiteState, pos: int) -> bool:
        """True if some setField of ``pos`` dominates every emit of the site."""
        set_instrs = site.set_instrs.get(pos, [])
        if not set_instrs or not site.emit_instrs:
            return False
        for e in site.emit_instrs:
            if not any(self.cfg.instr_dominates(d, e) for d in set_instrs):
                return False
        return True

    # -- emit cardinality bounds ----------------------------------------------

    def _emit_bounds(self) -> EmitBounds:
        cfg = self.cfg
        instrs = self.fn.instructions
        emits_in_block = [
            sum(
                1
                for i in block.instruction_indices()
                if isinstance(instrs[i], Emit)
            )
            for block in cfg.blocks
        ]
        sccs = cfg.sccs()
        n_sccs = len(sccs)
        scc_emits = [sum(emits_in_block[b] for b in scc) for scc in sccs]
        cyclic = [cfg.scc_is_cyclic(i) for i in range(n_sccs)]

        # Condensation edges.
        succs: list[set[int]] = [set() for _ in range(n_sccs)]
        for block in cfg.blocks:
            s_from = cfg.scc_of(block.index)
            for nb in block.successors:
                s_to = cfg.scc_of(nb)
                if s_to != s_from:
                    succs[s_from].add(s_to)

        entry_scc = cfg.scc_of(cfg.entry)
        exit_sccs = {cfg.scc_of(b) for b in cfg.exit_blocks}

        # Topological order via DFS (condensation is a DAG).
        order: list[int] = []
        seen = [False] * n_sccs
        stack = [(entry_scc, 0)]
        seen[entry_scc] = True
        succ_lists = [sorted(s) for s in succs]
        while stack:
            v, pi = stack[-1]
            if pi < len(succ_lists[v]):
                stack[-1] = (v, pi + 1)
                w = succ_lists[v][pi]
                if not seen[w]:
                    seen[w] = True
                    stack.append((w, 0))
            else:
                order.append(v)
                stack.pop()
        order.reverse()

        INF = float("inf")
        min_to = [INF] * n_sccs
        max_to = [-1.0] * n_sccs  # -1 == unreachable

        def scc_min(i: int) -> float:
            return 0 if cyclic[i] else scc_emits[i]

        def scc_max(i: int) -> float:
            if cyclic[i]:
                return INF if scc_emits[i] > 0 else 0
            return scc_emits[i]

        min_to[entry_scc] = scc_min(entry_scc)
        max_to[entry_scc] = scc_max(entry_scc)
        for v in order:
            if max_to[v] < 0:
                continue
            for w in succs[v]:
                min_to[w] = min(min_to[w], min_to[v] + scc_min(w))
                max_to[w] = max(max_to[w], max_to[v] + scc_max(w))

        lo_candidates = [min_to[s] for s in exit_sccs if max_to[s] >= 0]
        hi_candidates = [max_to[s] for s in exit_sccs if max_to[s] >= 0]
        if not lo_candidates:
            return EmitBounds(0, None)
        lo = int(min(lo_candidates))
        hi_val = max(hi_candidates)
        hi = None if hi_val == INF else int(hi_val)
        return EmitBounds(lo, hi)


def analyze_tac(fn: TACFunction, param_kinds: tuple[ParamKind, ...]) -> UdfProperties:
    """Analyze a TAC UDF; raises :class:`AnalysisEscape` when unmodelable."""
    return _Analyzer(fn, param_kinds).run()
