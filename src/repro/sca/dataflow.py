"""Generic data-flow analysis framework (worklist algorithm).

The paper assumes an SCA framework providing "a control flow graph and two
data structures obtained by a data flow analysis" — USE-DEF and DEF-USE
chains (Section 5).  This module provides the classic *reaching
definitions* analysis those chains are built from, as a small reusable
worklist framework.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .cfg import ControlFlowGraph
from .tac import Instr

# A definition is identified by (instruction_index, variable_name).
Definition = tuple[int, str]


@dataclass(slots=True)
class ReachingDefinitions:
    """Per-instruction reaching-definition sets.

    ``reach_in[i]`` holds every definition (l, v) that may reach
    instruction ``i`` without being overwritten.
    """

    reach_in: list[frozenset[Definition]]
    reach_out: list[frozenset[Definition]]


def reaching_definitions(cfg: ControlFlowGraph) -> ReachingDefinitions:
    """Classic forward may-analysis over the CFG (block-level worklist,
    then a block-local pass to per-instruction precision)."""
    fn = cfg.fn
    instrs = fn.instructions
    n = len(instrs)

    def gen_of(i: int, instr: Instr) -> frozenset[Definition]:
        var = instr.defined_var()
        if var is None:
            return frozenset()
        return frozenset({(i, var)})

    # Block-level transfer functions.
    n_blocks = len(cfg.blocks)
    block_gen: list[dict[str, Definition]] = []
    for block in cfg.blocks:
        gens: dict[str, Definition] = {}
        for i in block.instruction_indices():
            var = instrs[i].defined_var()
            if var is not None:
                gens[var] = (i, var)
        block_gen.append(gens)

    block_in: list[set[Definition]] = [set() for _ in range(n_blocks)]
    block_out: list[set[Definition]] = [set() for _ in range(n_blocks)]

    # Parameters act as definitions reaching the entry.
    entry_defs = {(-1 - k, p) for k, p in enumerate(fn.params)}
    block_in[cfg.entry] = set(entry_defs)

    def transfer(block_index: int, inset: set[Definition]) -> set[Definition]:
        gens = block_gen[block_index]
        killed_vars = set(gens)
        out = {d for d in inset if d[1] not in killed_vars}
        out.update(gens.values())
        return out

    worklist: deque[int] = deque(range(n_blocks))
    while worklist:
        b = worklist.popleft()
        inset = set(entry_defs) if b == cfg.entry else set()
        for p in cfg.blocks[b].predecessors:
            inset |= block_out[p]
        out = transfer(b, inset)
        block_in[b] = inset
        if out != block_out[b]:
            block_out[b] = out
            for s in cfg.blocks[b].successors:
                worklist.append(s)

    # Per-instruction refinement.
    reach_in: list[frozenset[Definition]] = [frozenset()] * n
    reach_out: list[frozenset[Definition]] = [frozenset()] * n
    for block in cfg.blocks:
        current = set(block_in[block.index])
        for i in block.instruction_indices():
            reach_in[i] = frozenset(current)
            var = instrs[i].defined_var()
            if var is not None:
                current = {d for d in current if d[1] != var}
                current.add((i, var))
            reach_out[i] = frozenset(current)
    return ReachingDefinitions(reach_in, reach_out)
