"""repro: reproduction of "Opening the Black Boxes in Data Flow Optimization"
(Hueske et al., PVLDB 5(11), 2012).

A data flow optimizer that reorders operators with *black box* user-defined
functions: read/write sets are derived by static bytecode analysis
(Section 5), reorderings follow the ROC/KGP conditions (Section 4), plans
are enumerated by pairwise-reordering closure (Section 6), and a
cost-based physical optimizer plus a simulated parallel engine reproduce
the paper's experiments (Section 7).

Quickstart::

    from repro import (Source, MapOp, Sink, FieldMap, map_udf, node, chain,
                       Catalog, SourceStats, Optimizer)

    def keep_positive(rec, out):
        if rec.get_field(0) >= 0:
            out.emit(rec.copy())

See ``examples/quickstart.py`` for a complete program.
"""

from .core import (
    AnnotationMode,
    Attribute,
    Catalog,
    CoGroupOp,
    Collector,
    CrossOp,
    EmitBounds,
    FieldMap,
    FieldSet,
    InputRecord,
    KatBehavior,
    MapOp,
    MatchOp,
    Node,
    OutputRecord,
    PlanError,
    ReduceOp,
    Sink,
    Source,
    SourceStats,
    Udf,
    UdfProperties,
    attrs,
    binary_udf,
    body,
    chain,
    cogroup_udf,
    conservative_properties,
    datasets_equal,
    evaluate,
    map_udf,
    node,
    prefixed,
    projected_approx_equal,
    projected_equal,
    reduce_udf,
    render_tree,
    validate,
)
from .engine import Engine, ExecutionResult, execute_physical
from .feedback import (
    AdaptiveOptimizer,
    FeedbackEstimator,
    ObservationCollector,
    StatisticsStore,
)
from .optimizer import (
    CardinalityEstimator,
    CostParams,
    Hints,
    OptimizationResult,
    Optimizer,
    PlanContext,
    enum_alternatives_chain,
    enumerate_flows,
    optimize,
    optimize_physical,
)
from .sca import analyze_udf, compile_to_tac, parse_tac

__version__ = "1.0.0"

__all__ = [
    "AdaptiveOptimizer",
    "AnnotationMode",
    "Attribute",
    "CardinalityEstimator",
    "Catalog",
    "CoGroupOp",
    "Collector",
    "CostParams",
    "CrossOp",
    "EmitBounds",
    "Engine",
    "ExecutionResult",
    "FeedbackEstimator",
    "FieldMap",
    "FieldSet",
    "Hints",
    "InputRecord",
    "KatBehavior",
    "MapOp",
    "MatchOp",
    "Node",
    "ObservationCollector",
    "OptimizationResult",
    "Optimizer",
    "OutputRecord",
    "PlanContext",
    "PlanError",
    "ReduceOp",
    "Sink",
    "Source",
    "SourceStats",
    "StatisticsStore",
    "Udf",
    "UdfProperties",
    "analyze_udf",
    "attrs",
    "binary_udf",
    "body",
    "chain",
    "cogroup_udf",
    "compile_to_tac",
    "conservative_properties",
    "datasets_equal",
    "enum_alternatives_chain",
    "enumerate_flows",
    "evaluate",
    "execute_physical",
    "map_udf",
    "node",
    "optimize",
    "optimize_physical",
    "parse_tac",
    "prefixed",
    "projected_approx_equal",
    "projected_equal",
    "reduce_udf",
    "render_tree",
    "validate",
]
