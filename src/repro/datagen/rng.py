"""Seeded randomness helpers shared by the generators."""

from __future__ import annotations

import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def zipf_choice(rng: random.Random, n: int, skew: float = 1.1) -> int:
    """Pick an index in [0, n) with a Zipf-like skew (index 0 hottest)."""
    if n <= 1:
        return 0
    # Inverse-CDF sampling over a truncated zeta distribution.
    u = rng.random()
    total = sum(1.0 / (k + 1) ** skew for k in range(n))
    acc = 0.0
    for k in range(n):
        acc += (1.0 / (k + 1) ** skew) / total
        if u <= acc:
            return k
    return n - 1
