"""Deterministic TPC-H-shaped data generator.

The paper evaluates on a 400 GB TPC-H database; this generator produces the
same schema and integrity structure (nation/supplier/customer/orders/
lineitem with PK-FK references) at laptop scale.  Dates are integer day
numbers (0 = 1992-01-01), prices are integer cents — integer arithmetic
keeps reordered aggregations bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rng import make_rng

DAYS_7_YEARS = 2556  # 1992-01-01 .. 1998-12-31

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]


@dataclass(slots=True)
class TpchScale:
    """Row counts; defaults give a few-second experiment turnaround."""

    suppliers: int = 100
    customers: int = 300
    orders: int = 1500
    lineitems_per_order_max: int = 7

    def scaled(self, factor: float) -> "TpchScale":
        return TpchScale(
            suppliers=max(1, int(self.suppliers * factor)),
            customers=max(1, int(self.customers * factor)),
            orders=max(1, int(self.orders * factor)),
            lineitems_per_order_max=self.lineitems_per_order_max,
        )


@dataclass(slots=True)
class TpchData:
    nation: list[dict] = field(default_factory=list)
    supplier: list[dict] = field(default_factory=list)
    customer: list[dict] = field(default_factory=list)
    orders: list[dict] = field(default_factory=list)
    lineitem: list[dict] = field(default_factory=list)


def generate_tpch(scale: TpchScale | None = None, seed: int = 42) -> TpchData:
    """Generate a referentially consistent TPC-H-shaped database."""
    scale = scale or TpchScale()
    rng = make_rng(seed)
    data = TpchData()

    for key, name in enumerate(NATION_NAMES):
        data.nation.append({"nationkey": key, "name": name})
    n_nations = len(NATION_NAMES)

    for suppkey in range(scale.suppliers):
        data.supplier.append(
            {
                "suppkey": suppkey,
                "name": f"Supplier#{suppkey:06d}",
                "nationkey": rng.randrange(n_nations),
            }
        )

    for custkey in range(scale.customers):
        data.customer.append(
            {
                "custkey": custkey,
                "name": f"Customer#{custkey:06d}",
                "nationkey": rng.randrange(n_nations),
            }
        )

    for orderkey in range(scale.orders):
        orderdate = rng.randrange(DAYS_7_YEARS - 200)
        data.orders.append(
            {
                "orderkey": orderkey,
                "custkey": rng.randrange(scale.customers),
                "orderdate": orderdate,
            }
        )
        for _ in range(1 + rng.randrange(scale.lineitems_per_order_max)):
            shipdate = orderdate + rng.randrange(1, 122)
            data.lineitem.append(
                {
                    "orderkey": orderkey,
                    "suppkey": rng.randrange(scale.suppliers),
                    "extendedprice": rng.randrange(100_00, 10_000_00),  # cents
                    "discount": rng.randrange(0, 11),  # percent
                    "shipdate": shipdate,
                }
            )
    return data


def year_of(day: int) -> int:
    """Year number of an integer day (approximate 365.25-day years)."""
    return 1992 + int(day / 365.25)
