"""Synthetic web-shop clickstream generator (Section 7.2's third workload).

Produces three data sets mirroring the paper's 430 GB / 13.8 GB / 9.2 GB
inputs at laptop scale:

* ``clicks``   — one row per click: session id, ip, timestamp, url, action;
* ``logins``   — one row per *logged-in* session: session id -> user id
  (session id unique: the join with clicks is selective, which is what
  makes pushing it down profitable);
* ``users``    — detailed user information for *most* users (the reference
  is deliberately non-total: key-group preservation of the final join must
  not hold, pinning it above the Reduce operators).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .rng import make_rng

ACTIONS = ("view", "view", "view", "cart", "buy")


@dataclass(slots=True)
class ClickScale:
    sessions: int = 1200
    clicks_per_session_max: int = 12
    logged_in_fraction: float = 0.55
    buy_fraction: float = 0.35
    user_info_fraction: float = 0.9
    users: int = 700

    def scaled(self, factor: float) -> "ClickScale":
        """Row counts multiplied by ``factor``; fractions unchanged."""
        return replace(
            self,
            sessions=max(1, int(self.sessions * factor)),
            users=max(1, int(self.users * factor)),
        )


@dataclass(slots=True)
class ClickData:
    clicks: list[dict] = field(default_factory=list)
    logins: list[dict] = field(default_factory=list)
    users: list[dict] = field(default_factory=list)


def generate_clickstream(scale: ClickScale | None = None, seed: int = 17) -> ClickData:
    scale = scale or ClickScale()
    rng = make_rng(seed)
    data = ClickData()

    with_info = {
        u for u in range(scale.users) if rng.random() < scale.user_info_fraction
    }
    for user_id in sorted(with_info):
        data.users.append(
            {
                "user_id": user_id,
                "name": f"user-{user_id:05d}",
                "country": f"C{user_id % 40:02d}",
                "signup_day": rng.randrange(3650),
            }
        )

    ts = 0
    for session_id in range(scale.sessions):
        if rng.random() < scale.logged_in_fraction:
            data.logins.append(
                {
                    "session_id": session_id,
                    "user_id": rng.randrange(scale.users),
                }
            )
        is_buy = rng.random() < scale.buy_fraction
        n_clicks = 2 + rng.randrange(scale.clicks_per_session_max - 1)
        buy_at = rng.randrange(n_clicks) if is_buy else -1
        for i in range(n_clicks):
            ts += rng.randrange(1, 30)
            action = "buy" if i == buy_at else ACTIONS[rng.randrange(len(ACTIONS))]
            if not is_buy and action == "buy":
                action = "cart"
            data.clicks.append(
                {
                    "session_id": session_id,
                    "ip": f"10.{session_id % 256}.{i % 256}.{rng.randrange(256)}",
                    "ts": ts,
                    "url": f"/shop/item{rng.randrange(500):04d}?s={session_id}&a={action}",
                    "action": action,
                }
            )
    return data
