"""Deterministic synthetic data generators for the evaluation workloads."""

from .clickstream import ClickData, ClickScale, generate_clickstream
from .rng import make_rng
from .textcorpus import CorpusData, CorpusScale, generate_corpus
from .tpch import TpchData, TpchScale, generate_tpch, year_of

__all__ = [
    "ClickData",
    "ClickScale",
    "CorpusData",
    "CorpusScale",
    "TpchData",
    "TpchScale",
    "generate_clickstream",
    "generate_corpus",
    "generate_tpch",
    "make_rng",
    "year_of",
]
