"""Synthetic biomedical abstract generator (PubMed substitute).

The paper's text-mining task detects gene-drug relationships in PubMed
abstracts using third-party NLP components.  We generate abstracts with
seeded entity mentions — gene symbols, drug names, MeSH-like terms, and
species names — with configurable occurrence probabilities, so the toy
NLP annotators in the workload have the same *filtering* behavior
(configurable selectivity) the paper's components exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .rng import make_rng

_FILLER = (
    "study results analysis patients treatment clinical effect expression "
    "cells protein binding pathway response observed significant increased "
    "decreased activity levels role function mechanism therapy trial dose"
).split()

_GENES = [f"GEN{i:03d}" for i in range(60)]
_DRUGS = [f"drugazol{i:02d}" for i in range(40)]
_MESH = [f"mesh_term_{i:02d}" for i in range(30)]
_SPECIES = ["homo_sapiens", "mus_musculus", "rattus_norvegicus", "danio_rerio"]


@dataclass(slots=True)
class CorpusScale:
    documents: int = 2500
    words_min: int = 30
    words_max: int = 90
    p_gene: float = 0.22
    p_drug: float = 0.20
    p_mesh: float = 0.45
    p_species: float = 0.35

    def scaled(self, factor: float) -> "CorpusScale":
        """Document count multiplied by ``factor``; mention rates unchanged."""
        return replace(self, documents=max(1, int(self.documents * factor)))


@dataclass(slots=True)
class CorpusData:
    documents: list[dict] = field(default_factory=list)


def generate_corpus(scale: CorpusScale | None = None, seed: int = 31) -> CorpusData:
    scale = scale or CorpusScale()
    rng = make_rng(seed)
    data = CorpusData()
    for doc_id in range(scale.documents):
        n_words = rng.randrange(scale.words_min, scale.words_max + 1)
        words = [_FILLER[rng.randrange(len(_FILLER))] for _ in range(n_words)]
        if rng.random() < scale.p_gene:
            for _ in range(1 + rng.randrange(3)):
                words[rng.randrange(n_words)] = _GENES[rng.randrange(len(_GENES))]
        if rng.random() < scale.p_drug:
            for _ in range(1 + rng.randrange(2)):
                words[rng.randrange(n_words)] = _DRUGS[rng.randrange(len(_DRUGS))]
        if rng.random() < scale.p_mesh:
            words[rng.randrange(n_words)] = _MESH[rng.randrange(len(_MESH))]
        if rng.random() < scale.p_species:
            words[rng.randrange(n_words)] = _SPECIES[rng.randrange(len(_SPECIES))]
        data.documents.append({"doc_id": doc_id, "text": " ".join(words)})
    return data


# -- toy NLP components (the "third-party libraries" of the workload) ---------


def tokenize(text: str) -> tuple[str, ...]:
    return tuple(text.split())


def pos_tag(tokens: tuple[str, ...]) -> tuple[str, ...]:
    tags = []
    for t in tokens:
        if t.endswith("ed") or t.endswith("ing"):
            tags.append("VB")
        elif t[:1].isupper() or "_" in t:
            tags.append("NN")
        else:
            tags.append("XX")
    return tuple(tags)


def find_genes(tokens: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(t for t in tokens if t.startswith("GEN"))


def find_drugs(tokens: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(t for t in tokens if t.startswith("drugazol"))


def find_mesh_terms(tokens: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(t for t in tokens if t.startswith("mesh_term"))


def find_species(tokens: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(t for t in tokens if "_" in t and not t.startswith(("mesh", "drug")))


def extract_relations(
    genes: tuple[str, ...], drugs: tuple[str, ...]
) -> tuple[str, ...]:
    pairs = []
    for g in genes:
        for d in drugs:
            if (len(g) + len(d)) % 3 != 0:  # toy plausibility filter
                pairs.append(f"{g}~{d}")
    return tuple(pairs)
