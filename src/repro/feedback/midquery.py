"""Mid-query re-optimization at pipeline-stage boundaries.

The paper's premise is that a-priori estimates for UDF data flows are
unreliable — which means the plan picked *before* execution can already
be wrong by the time the first pipeline stage finishes.  The adaptive
loop (:mod:`.adaptive`) closes the feedback loop *between* executions;
this module closes it *inside* one: the engine executes a plan
stage-by-stage (:meth:`Engine.execute_staged
<repro.engine.executor.Engine.execute_staged>`), and at every blocking
stage boundary a :class:`MidQueryReoptimizer`

1. **flushes** the finished stage's observation delta into the
   :class:`~repro.feedback.store.StatisticsStore` (keyed by run id, so
   the execution's final whole-run ingest cannot double-count it),
2. **diffs** the store's ``estimator_view`` to obtain the exact dirty
   operator set and invalidates just that spine of its carried
   :class:`~repro.optimizer.memo.Memo`,
3. **re-plans the unexecuted suffix**: every executed stage is pinned as
   a :class:`~repro.core.operators.MaterializedSource` — a zero-cost,
   exactly-counted, partitioning-preserving scan over the checkpointed
   partitions — and the optimizer enumerates and costs the remaining
   flow against those ground-truth leaves,
4. **switches** iff the best re-planned suffix beats the current one by
   the configured threshold.

Switch-threshold semantics
--------------------------
``switch_threshold`` is the minimum estimated-cost ratio (current
suffix / best re-planned suffix) required to abandon the running plan:

* ``1.0`` — switch on any strict improvement,
* ``1.1`` (default) — the new suffix must be at least 10% cheaper,
* ``math.inf`` — never switch; execution is bit-identical to the plain
  engine (pinned by the staged parity suite),
* values below ``1.0`` deliberately force a switch at every boundary
  even without improvement — a diagnostic/stress knob (the parity suite
  uses ``0.0`` to exercise the checkpoint-handoff machinery); note that
  switched runs are hybrids, so their whole-plan runtimes are never
  recorded in the statistics store.

The current suffix is priced *optimistically* — at the cost of the best
physical plan for its logical flow under the fresh statistics, which is
one of the ranked alternatives — so a switch only fires when the
re-planned suffix is a genuinely different (cheaper) flow, never on
estimation jitter against a strawman.  Consequence: the best re-planned
cost can never exceed the kept suffix's priced cost (it is the minimum
over a set containing it), which the suffix property test pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.catalog import Catalog
from ..core.dataset import datasets_equal
from ..core.errors import FeedbackError
from ..core.operators import MaterializedSource, UdfOperator
from ..core.plan import Node, resolved_signature
from ..core.schema import Attribute
from ..core.udf import AnnotationMode
from ..engine.executor import Engine, ExecutionResult, StageRun
from ..engine.partition import Partitions
from ..obs.tracer import NOOP_TRACER
from ..optimizer.cardinality import CardinalityEstimator, Hints
from ..optimizer.context import PlanContext
from ..optimizer.cost import CostParams
from ..optimizer.optimizer import OptimizationResult, Optimizer, RankedPlan
from ..optimizer.physical import PhysNode
from ..workloads.base import Workload, source_stats
from .estimator import FeedbackEstimator
from .observation import ObservationCollector, observe_stage
from .store import StatisticsStore

#: Default minimum improvement ratio before a running plan is abandoned.
DEFAULT_SWITCH_THRESHOLD = 1.1


@dataclass(frozen=True, slots=True)
class SwitchDecision:
    """One boundary's re-optimization outcome."""

    run_id: str  # engine execution this boundary belonged to
    boundary: int  # stage index the boundary followed (execution order)
    stage_name: str  # stage-top operator that just finished
    changed_ops: frozenset[str]  # dirty set from the estimator-view diff
    current_cost: float  # est. remaining cost of the running suffix flow
    best_cost: float  # est. remaining cost of the best re-planned suffix
    switched: bool

    @property
    def improvement(self) -> float:
        """Estimated cost ratio current/best (>= 1.0 by construction)."""
        if self.best_cost <= 0.0:
            return 1.0 if self.current_cost <= 0.0 else math.inf
        return self.current_cost / self.best_cost


class MidQueryReoptimizer:
    """Stage-boundary controller for :meth:`Engine.execute_staged`.

    One instance may drive many staged executions (the adaptive loop
    reuses it across rounds).  The carried memo keeps entries warm
    across the boundaries of one run; per-run state — the memo, the
    boundary-leaf cache, and the overlay catalog's synthetic sources —
    is reset when a new run begins, because suffix entries are keyed on
    run-specific boundary leaves (no cross-run reuse) while their
    references would keep every stage's materialized partitions alive
    for the controller's lifetime.
    """

    def __init__(
        self,
        catalog: Catalog,
        hints: dict[str, Hints] | None = None,
        mode: AnnotationMode = AnnotationMode.SCA,
        params: CostParams | None = None,
        store: StatisticsStore | None = None,
        switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
        tracer=None,
    ) -> None:
        if not (switch_threshold >= 0.0):  # rejects NaN too
            raise FeedbackError(
                f"switch_threshold must be >= 0 (or inf), got {switch_threshold}"
            )
        self.store = store if store is not None else StatisticsStore()
        self.store.check_compatible(catalog)
        self.switch_threshold = switch_threshold
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        if tracer is not None:
            self.store.tracer = tracer
        # Overlay catalog: synthetic boundary sources are registered here,
        # never on the caller's catalog.
        self.catalog = catalog.clone()
        self.optimizer = Optimizer(
            self.catalog,
            hints,
            mode,
            params,
            estimator_factory=self._make_estimator,
            tracer=tracer,
        )
        self.ctx = self.optimizer.ctx
        self.memo = self.optimizer.new_memo()
        self.decisions: list[SwitchDecision] = []
        self._view = self.store.estimator_view()
        self._boundary_ops: dict[PhysNode, Node] = {}
        self._stage_sources: list[str] = []
        self._run_id: str | None = None
        self._seq = 0

    def _make_estimator(
        self, ctx: PlanContext, hints: dict[str, Hints]
    ) -> CardinalityEstimator:
        return FeedbackEstimator(ctx, hints, self.store)

    # -- engine callback ---------------------------------------------------

    def on_boundary(
        self,
        engine: Engine,
        plan: PhysNode,
        stage: StageRun,
        completed: dict[PhysNode, Partitions],
        run_id: str,
    ) -> PhysNode | None:
        """Ingest the stage delta, re-plan the suffix, decide the switch.

        Returns the replacement physical plan, or ``None`` to continue
        with the running one.
        """
        if run_id != self._run_id:
            self._begin_run(run_id)
        boundary_span = self.tracer.span(
            "feedback.boundary",
            category="feedback",
            stage=stage.top.name,
            boundary=stage.index,
        )
        with boundary_span:
            # 0. Incorporate foreign commits to a shared backend before
            # folding this stage's delta; the view diff below then covers
            # foreign and local changes in one pass.  No-op without a
            # backend or concurrent writers.
            self.store.sync()
            # 1. Flush the stage's observation delta into the store — and
            # into the engine's collector, so drivers that bulk-ingest
            # collected observations later see it too (deduped there by
            # run id).
            observation = observe_stage(stage, engine.true_costs, run_id)
            if engine.collector is not None:
                engine.collector.executions.append(observation)
            if observation.ops:
                self.store.ingest(observation)

            # 2. Exact dirty set: the per-name estimator-view diff.
            view = self.store.estimator_view()
            changed = frozenset(
                name
                for name in view.keys() | self._view.keys()
                if view.get(name) != self._view.get(name)
            )
            self._view = view

            # 3. Re-plan the unexecuted suffix over the pinned boundaries.
            suffix = self._suffix_body(plan, completed)
            if changed:
                result = self.optimizer.reoptimize(suffix, self.memo, changed)
            else:
                result = self.optimizer.optimize(suffix, memo=self.memo)
            current = self._rank_of_flow(result.ranked, suffix)
            best = result.best

            # 4. Switch iff the improvement clears the threshold.
            switched = current.cost > self.switch_threshold * best.cost
            self.decisions.append(
                SwitchDecision(
                    run_id=run_id,
                    boundary=stage.index,
                    stage_name=stage.top.name,
                    changed_ops=changed,
                    current_cost=current.cost,
                    best_cost=best.cost,
                    switched=switched,
                )
            )
        # Kept-vs-replanned estimated costs on the decision span — the
        # trace alone answers "why did (n't) it switch here?".
        boundary_span.set(
            changed=len(changed),
            kept_cost=current.cost,
            best_cost=best.cost,
            switched=switched,
        )
        self.tracer.count("feedback.boundaries")
        if switched:
            self.tracer.count("feedback.switches")
        return best.physical if switched else None

    def decisions_for(self, run_id: str) -> list[SwitchDecision]:
        return [d for d in self.decisions if d.run_id == run_id]

    def _begin_run(self, run_id: str) -> None:
        """Retire the previous run's per-run state.

        Boundary leaves strongly reference their checkpointed partitions
        (through the memo's tables and the leaf cache); releasing them
        here bounds the controller's footprint to one run's checkpoints
        no matter how many staged executions it drives.
        """
        self._run_id = run_id
        self._boundary_ops.clear()
        self.memo = self.optimizer.new_memo()
        for name in self._stage_sources:
            self.catalog.remove_source(name)
        self._stage_sources.clear()

    # -- suffix construction -----------------------------------------------

    @staticmethod
    def _rank_of_flow(ranked: list[RankedPlan], flow: Node) -> RankedPlan:
        for plan in ranked:
            if plan.body is flow:  # interned: structural equality is identity
                return plan
        raise FeedbackError(
            "running suffix missing from its own enumerated closure"
        )  # pragma: no cover - enumeration always includes the input flow

    def _suffix_body(
        self, plan: PhysNode, completed: dict[PhysNode, Partitions]
    ) -> Node:
        """The unexecuted remainder of ``plan`` as a logical flow whose
        leaves are the pinned stage boundaries."""

        def build(phys: PhysNode) -> Node:
            if phys in completed:
                return self._boundary_leaf(phys, completed[phys])
            return Node(
                phys.logical.op, tuple(build(c) for c in phys.children)
            )

        return build(plan)

    def _boundary_leaf(self, phys: PhysNode, parts: Partitions) -> Node:
        """A :class:`MaterializedSource` leaf pinning one executed stage."""
        logical = phys.logical
        if isinstance(logical.op, MaterializedSource):
            # A checkpoint-handoff stage from an earlier switch: already a
            # boundary leaf, reuse it verbatim.
            return logical
        cached = self._boundary_ops.get(phys)
        if cached is not None:
            return cached
        attrs = self.ctx.out_attrs(logical)
        schema = tuple(sorted(attrs, key=lambda a: (a.name, id(a))))
        self._seq += 1
        op = MaterializedSource(
            f"stage:{logical.op.name}:{self._seq}",
            schema,
            parts,
            origin_signature=resolved_signature(logical),
            partitioning=phys.partitioning,
            unique_keys=self.ctx.unique_keys(logical),
            preserves_rows=self.ctx.row_preserving(logical),
            written_attrs=self._written_below(logical),
        )
        rows = [r for part in parts for r in part]
        self.catalog.add_source(op.name, source_stats(rows))
        self._stage_sources.append(op.name)
        leaf = Node(op, ())
        self._boundary_ops[phys] = leaf
        return leaf

    def _written_below(self, node: Node) -> frozenset[Attribute]:
        """Write set of the executed subtree (nested boundaries included)."""
        out: set[Attribute] = set()
        stack = [node]
        while stack:
            n = stack.pop()
            op = n.op
            if isinstance(op, MaterializedSource):
                out |= op.written_attrs
            elif isinstance(op, UdfOperator):
                out |= self.ctx.props(op).writes
            stack.extend(n.children)
        return frozenset(out)


# ---------------------------------------------------------------------------
# Convenience driver (CLI / bench / tests)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class MidQueryExperiment:
    """Baseline-vs-mid-query comparison of one workload's picked plan."""

    workload: str
    plan_count: int
    pick_cost: float  # estimated cost of the initially picked plan
    baseline: ExecutionResult  # the pick executed to completion, no switching
    adaptive: ExecutionResult  # the pick executed with mid-query re-opt
    decisions: list[SwitchDecision] = field(default_factory=list)

    @property
    def baseline_seconds(self) -> float:
        return self.baseline.seconds

    @property
    def adaptive_seconds(self) -> float:
        return self.adaptive.seconds

    @property
    def switched(self) -> bool:
        return any(d.switched for d in self.decisions)

    @property
    def modeled_speedup(self) -> float:
        """End-to-end modeled-time ratio baseline/adaptive (1.0 = no gain)."""
        if self.adaptive_seconds <= 0.0:
            return 1.0
        return self.baseline_seconds / self.adaptive_seconds

    @property
    def records_match(self) -> bool:
        """Mid-query switching must never change the result set."""
        return datasets_equal(self.baseline.records, self.adaptive.records)

    def describe(self) -> str:
        lines = [
            f"mid-query re-optimization — {self.workload}",
            f"  initial pick: estimated cost {self.pick_cost:.3f}s "
            f"({self.plan_count} alternatives)",
            f"  baseline (no switching): {self.baseline_seconds:.3f}s modeled",
            f"  mid-query:               {self.adaptive_seconds:.3f}s modeled "
            f"({self.modeled_speedup:.2f}x)",
        ]
        for d in self.decisions:
            verdict = "SWITCHED" if d.switched else "kept"
            lines.append(
                f"  boundary {d.boundary} (after {d.stage_name}): "
                f"remaining est {d.current_cost:.3f}s vs re-planned "
                f"{d.best_cost:.3f}s -> {verdict}"
            )
        if not self.decisions:
            lines.append("  (no re-optimization boundaries fired)")
        return "\n".join(lines)


def run_midquery(
    workload: Workload,
    mode: AnnotationMode = AnnotationMode.SCA,
    params: CostParams | None = None,
    store: StatisticsStore | None = None,
    switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
    hints: dict[str, Hints] | None = None,
    optimization: "OptimizationResult | None" = None,
    baseline: ExecutionResult | None = None,
    engine_jobs: int = 1,
    tracer=None,
) -> MidQueryExperiment:
    """Optimize a workload, then race the pick with and without mid-query.

    ``hints`` overrides the workload's hints (benches mis-hint on purpose);
    ``store`` warm-starts both the initial optimization (through a
    :class:`FeedbackEstimator`; an empty store is bit-identical to plain
    hints) and the in-flight controller, and receives everything learned.
    Callers that already optimized the workload under the same hints —
    the experiment harness — can pass their ``optimization`` (and a
    plain execution of its rank-1 pick as ``baseline``) to skip the
    redundant re-enumeration and baseline run.
    """
    params = params or workload.params
    hints = hints if hints is not None else workload.hints
    store = store if store is not None else StatisticsStore()
    if tracer is not None:
        store.tracer = tracer
    result = optimization
    if result is None:
        optimizer = Optimizer(
            workload.catalog,
            hints,
            mode,
            params,
            estimator_factory=lambda ctx, h: FeedbackEstimator(ctx, h, store),
            tracer=tracer,
        )
        result = optimizer.optimize(workload.plan)
    pick = result.best

    if baseline is None:
        baseline_engine = Engine(
            params, workload.true_costs, engine_jobs=engine_jobs,
            tracer=tracer,
        )
        baseline = baseline_engine.execute(pick.physical, workload.data)

    controller = MidQueryReoptimizer(
        workload.catalog,
        hints,
        mode,
        params,
        store=store,
        switch_threshold=switch_threshold,
        tracer=tracer,
    )
    staged_engine = Engine(
        params,
        workload.true_costs,
        collector=ObservationCollector(),
        engine_jobs=engine_jobs,
        tracer=tracer,
    )
    adaptive = staged_engine.execute_staged(
        pick.physical, workload.data, controller
    )
    for observation in staged_engine.collector.executions:
        store.ingest(observation)  # stage deltas dedupe by run id

    return MidQueryExperiment(
        workload=workload.name,
        plan_count=result.plan_count,
        pick_cost=pick.cost,
        baseline=baseline,
        adaptive=adaptive,
        decisions=list(controller.decisions),
    )
