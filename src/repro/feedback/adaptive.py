"""The adaptive re-optimization loop: optimize, execute, learn, repeat.

Each round mirrors how a feedback-driven optimizer serves traffic:

1. **optimize** the workload with a :class:`FeedbackEstimator` over the
   current statistics store (round 0 on a cold store is bit-identical to
   the plain optimizer — nothing learned yet, nothing changes);
2. **execute** the estimator's pick plus rank-spread evaluation picks on
   the engine with an :class:`ObservationCollector` attached;
3. **measure** estimate quality (per-node q-error of the round's own
   estimates against what execution observed);
4. **ingest** the observations into the store — learned hints, exact
   per-signature cardinalities, source stats, measured plan runtimes;
5. **choose** the round's pick with *decision-time* knowledge — the
   store as it stood when the round optimized, i.e. what the system
   would deploy entering this round.  With no measurements yet (a cold
   round 0) the pick is the estimator's rank-1 plan, exactly the
   feedback-free behavior.  Once measurements exist, the pick is the
   measured-fastest alternative: a plan observed to be slower is never
   re-deployed on the strength of a flattering estimate, and estimated
   costs are never compared against measured seconds across plans
   (estimates carry systematic model error — skew, sort constants —
   that would otherwise let optimistic estimates perpetually outbid
   real measurements).  Exploration comes from the estimator instead:
   its rank-1 pick under the latest learned statistics is always
   executed, so an alternative that learning re-ranks upward gets
   measured and can win the deployment on evidence the next round.

The loop stops at a fixed point (the estimator's pick and the chosen
pick both repeat) or after a round limit.  The classic payoff: when
cardinality mis-estimates make round 0 pick a plan that is *not* the
measured-fastest, one feedback round moves the pick to (or strictly
toward) the measured-fastest alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import FeedbackError
from ..core.plan import Node, body as plan_body, signature_key
from ..core.udf import AnnotationMode
from ..engine.executor import Engine, ExecutionResult
from ..obs.tracer import NOOP_TRACER
from ..optimizer.cardinality import CardinalityEstimator, Hints
from ..optimizer.context import PlanContext
from ..optimizer.cost import CostParams
from ..optimizer.optimizer import OptimizationResult, Optimizer, RankedPlan
from ..workloads.base import Workload
from .estimator import FeedbackEstimator, QErrorReport, qerror_report
from .midquery import (
    DEFAULT_SWITCH_THRESHOLD,
    MidQueryReoptimizer,
    SwitchDecision,
)
from .observation import ObservationCollector
from .store import StatisticsStore


@dataclass(slots=True)
class ExecutedRound:
    """One plan executed during a feedback round."""

    plan: RankedPlan
    seconds: float
    result: ExecutionResult


@dataclass(slots=True)
class AdaptiveRound:
    """Everything one optimize-execute-learn round produced."""

    index: int  # 0 = cold round, 1.. = feedback rounds
    optimization: OptimizationResult
    estimator_pick: RankedPlan  # rank-1 plan under this round's estimates
    pick: RankedPlan  # chosen plan after measured-runtime preference
    pick_seconds: float  # modeled runtime of the chosen plan
    pick_measured_rank: int  # 1 = fastest among all measured plans so far
    pick_wall_seconds: float = 0.0  # wall-clock of the chosen plan's run
    executed: list[ExecutedRound] = field(default_factory=list)
    qerror: QErrorReport = field(default_factory=lambda: QErrorReport({}))
    converged: bool = False
    # Boundary decisions made while executing the deployed pick under
    # mid-query re-optimization (empty when the feature is off).
    midquery: list[SwitchDecision] = field(default_factory=list)


@dataclass(slots=True)
class AdaptiveReport:
    """Outcome of a full adaptive-optimization run."""

    workload: str
    rounds: list[AdaptiveRound] = field(default_factory=list)

    @property
    def final(self) -> AdaptiveRound:
        return self.rounds[-1]

    @property
    def converged(self) -> bool:
        return self.final.converged

    def describe(self) -> str:
        lines = [f"adaptive optimization — {self.workload}"]
        for r in self.rounds:
            lines.append(
                f"  round {r.index}: pick est-rank={r.pick.rank} "
                f"measured {r.pick_seconds:.3f}s (measured-rank {r.pick_measured_rank}, "
                f"wall {r.pick_wall_seconds * 1e3:.1f}ms), "
                f"q-error median {r.qerror.median:.3f} max {r.qerror.max:.3f}"
                f"{'  [converged]' if r.converged else ''}"
            )
            if r.midquery:
                switches = sum(1 for d in r.midquery if d.switched)
                lines.append(
                    f"    mid-query: {len(r.midquery)} boundaries, "
                    f"{switches} switch(es)"
                )
        return "\n".join(lines)


class AdaptiveOptimizer:
    """Drives the optimize -> execute -> observe -> re-optimize loop.

    Re-optimization is *incremental*: the first round's optimization
    leaves its :class:`~repro.optimizer.memo.Memo` — physical options,
    estimates, and the enumerated closure — in place, and every later
    round first invalidates only the dirty spine above the operators
    whose learned statistics actually changed (the diff of the store's
    :meth:`~repro.feedback.store.StatisticsStore.estimator_view` across
    the round's ingests), then re-costs just those entries.  Results are
    bit-identical to rebuilding from scratch each round; a converged
    round (no view change) re-costs nothing.  ``jobs > 1`` additionally
    shards each round's costing across forked worker processes.
    """

    def __init__(
        self,
        workload: Workload,
        store: StatisticsStore | None = None,
        mode: AnnotationMode = AnnotationMode.SCA,
        params: CostParams | None = None,
        picks: int = 5,
        streaming: bool = True,
        jobs: int = 1,
        midquery: bool = False,
        switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
        engine_jobs: int = 1,
        tracer=None,
    ) -> None:
        self.workload = workload
        self.store = store if store is not None else StatisticsStore()
        # A warm store learned on different data (another scale or seed)
        # must fail loudly instead of silently mis-estimating.
        self.store.check_compatible(workload.catalog)
        self.mode = mode
        self.params = params or workload.params
        self.picks = picks
        # One tracer threads the whole loop: optimizer spans, engine
        # stage/partition spans, and the store's ingest/sync spans all
        # land on the same timeline.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        if tracer is not None:
            self.store.tracer = tracer
        self.collector = ObservationCollector()
        self.engine = Engine(
            self.params,
            workload.true_costs,
            reuse_subtree_results=True,
            streaming=streaming,
            collector=self.collector,
            engine_jobs=engine_jobs,
            tracer=tracer,
        )
        self.optimizer = Optimizer(
            workload.catalog,
            workload.hints,
            mode,
            self.params,
            estimator_factory=self._make_estimator,
            jobs=jobs,
            tracer=tracer,
        )
        # Carried across rounds; invalidated along the dirty spine of the
        # estimator-view diff before each re-optimization.
        self.memo = self.optimizer.new_memo()
        self._view = self.store.estimator_view()
        # In-flight path: when enabled, each round's deployed pick runs
        # stage-by-stage with suffix re-optimization at every boundary;
        # the controller shares this loop's store, so stage deltas land
        # mid-run and the round's bulk ingest dedupes them by run id.
        self.midquery: MidQueryReoptimizer | None = None
        if midquery:
            if not streaming:
                raise FeedbackError(
                    "mid-query re-optimization executes pipeline stages; "
                    "it requires the streaming engine"
                )
            self.midquery = MidQueryReoptimizer(
                workload.catalog,
                workload.hints,
                mode,
                self.params,
                store=self.store,
                switch_threshold=switch_threshold,
                tracer=tracer,
            )

    def _make_estimator(
        self, ctx: PlanContext, hints: dict[str, Hints]
    ) -> CardinalityEstimator:
        return FeedbackEstimator(ctx, hints, self.store)

    # -- the loop ----------------------------------------------------------

    def run(self, feedback_rounds: int = 1) -> AdaptiveReport:
        """Round 0 plus up to ``feedback_rounds`` re-optimization rounds."""
        if feedback_rounds < 0:
            raise FeedbackError(
                f"feedback_rounds must be >= 0, got {feedback_rounds}"
            )
        report = AdaptiveReport(workload=self.workload.name)
        previous: AdaptiveRound | None = None
        for index in range(feedback_rounds + 1):
            round_span = self.tracer.span(
                "feedback.round", category="feedback", round=index
            )
            with round_span:
                round_ = self._run_round(index)
            if previous is not None:
                round_.converged = (
                    _plan_key(round_.pick.body) == _plan_key(previous.pick.body)
                    and _plan_key(round_.estimator_pick.body)
                    == _plan_key(previous.estimator_pick.body)
                )
            round_span.set(
                pick_rank=round_.pick.rank,
                executed=len(round_.executed),
                converged=round_.converged,
            )
            self.tracer.count("feedback.rounds")
            report.rounds.append(round_)
            previous = round_
            if round_.converged:
                break
        return report

    def _run_round(self, index: int) -> AdaptiveRound:
        # Incorporate any foreign commits to a shared backend first, so
        # this round optimizes over the freshest learned statistics; the
        # dirty-spine diff below evicts exactly the affected memo
        # entries.  Backend-less (and single-writer) runs see an empty
        # diff and proceed bit-identically to the seed loop.
        self.store.sync()
        fresh_view = self.store.estimator_view()
        foreign_changed = {
            name
            for name in fresh_view.keys() | self._view.keys()
            if fresh_view.get(name) != self._view.get(name)
        }
        if foreign_changed:
            self._view = fresh_view
            with self.tracer.span(
                "optimizer.invalidate",
                category="optimizer",
                changed=len(foreign_changed),
            ) as span:
                evicted = self.memo.invalidate(foreign_changed)
            span.set(evicted=evicted)
            self.tracer.count("optimizer.memo_evictions", evicted)
        optimization = self.optimizer.optimize(self.workload.plan, memo=self.memo)
        estimator_pick = optimization.best
        # Deployment decision uses what the store knew when this round
        # optimized — the round's own executions inform the *next* round.
        pick = self._choose(optimization, estimator_pick)

        executed: list[ExecutedRound] = []
        seen: dict[str, ExecutedRound] = {}
        mq_start = (
            len(self.midquery.decisions) if self.midquery is not None else 0
        )

        def execute(plan: RankedPlan) -> ExecutedRound:
            if self.midquery is not None and plan.body is pick.body:
                # The deployment runs stage-by-stage with in-flight suffix
                # re-optimization; everything else stays a plain measured
                # execution (switching an evaluation run would conflate
                # exploration with the plan being measured).
                result = self.engine.execute_staged(
                    plan.physical, self.workload.data, self.midquery
                )
            else:
                result = self.engine.execute(plan.physical, self.workload.data)
            run = ExecutedRound(plan=plan, seconds=result.seconds, result=result)
            executed.append(run)
            seen[_plan_key(plan.body)] = run
            return run

        for plan in optimization.picks(self.picks):
            if _plan_key(plan.body) not in seen:
                execute(plan)
        # The estimator's pick is the explorer: always measured, so a plan
        # that learning re-ranked upward earns (or loses) the deployment
        # on evidence.  The deployed pick is re-measured too, keeping its
        # store entry fresh under the staleness horizon.
        for plan in (estimator_pick, pick):
            if _plan_key(plan.body) not in seen:
                execute(plan)

        # Estimate quality is judged *before* learning from this round:
        # the cached estimates are exactly what ranked the plans above.
        estimator = self.optimizer.last_estimator
        bodies = {_plan_key(run.plan.body): run.plan.body for run in executed}
        qerror = qerror_report(estimator, self.collector.executions, bodies)

        for execution in self.collector.executions:
            self.store.ingest(execution)
        self.collector.clear()

        # Dirty-spine invalidation for the next round: evict exactly the
        # memo entries whose subtree contains an operator whose learned
        # view this round's ingests changed.  Everything else — and the
        # enumerated closure — is reused verbatim by the next optimize.
        view = self.store.estimator_view()
        changed = {
            name
            for name in view.keys() | self._view.keys()
            if view.get(name) != self._view.get(name)
        }
        self._view = view
        if changed:
            with self.tracer.span(
                "optimizer.invalidate",
                category="optimizer",
                changed=len(changed),
            ) as span:
                evicted = self.memo.invalidate(changed)
            span.set(evicted=evicted)
            self.tracer.count("optimizer.memo_evictions", evicted)

        pick_run = seen[_plan_key(pick.body)]
        pick_seconds = pick_run.seconds
        return AdaptiveRound(
            index=index,
            optimization=optimization,
            estimator_pick=estimator_pick,
            pick=pick,
            pick_seconds=pick_seconds,
            pick_measured_rank=self._measured_rank(pick_seconds),
            pick_wall_seconds=pick_run.result.wall_seconds,
            executed=executed,
            qerror=qerror,
            midquery=(
                list(self.midquery.decisions[mq_start:])
                if self.midquery is not None
                else []
            ),
        )

    # -- pick selection ----------------------------------------------------

    def _choose(
        self, optimization: OptimizationResult, estimator_pick: RankedPlan
    ) -> RankedPlan:
        """Measured-fastest known alternative; estimator pick on a cold store.

        Measured seconds and estimated costs are never compared across
        plans: estimates carry systematic model error, so an optimistic
        estimate could outbid a real measurement forever.  Ranked order
        (ascending estimated cost) breaks exact measurement ties
        deterministically via strict <.
        """
        best: RankedPlan | None = None
        best_seconds = 0.0
        for plan in optimization.ranked:
            seconds = self.store.plan_seconds(_plan_key(plan.body))
            if seconds is None:
                continue
            if best is None or seconds < best_seconds:
                best, best_seconds = plan, seconds
        return best if best is not None else estimator_pick

    def _measured_rank(self, seconds: float) -> int:
        """1 + number of plans measured strictly faster than ``seconds``."""
        faster = sum(
            1
            for plan in self.store.plans.values()
            if self.store.plan_seconds(plan.key) is not None
            and plan.seconds < seconds - 1e-12
        )
        return faster + 1


def _plan_key(node: Node) -> str:
    return signature_key(plan_body(node))
