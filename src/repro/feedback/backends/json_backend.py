"""Crash-safe, advisory-locked JSON persistence (the seed store format).

The file layout is exactly ``StatisticsStore.to_dict()`` plus one extra
top-level key, ``"generation"`` — the monotonic commit counter the
optimistic-concurrency contract (:mod:`.base`) is built on.  The loader
tolerates files without it (a plain ``StatisticsStore.save()`` export
reads as generation 0).

Two guarantees the seed's ``write_text`` rewrite did not have:

* **Torn-write safety** — every write lands in a same-directory temp
  file that is fsynced and then :func:`os.replace`\\ d over the target,
  so a reader (or a crash at any instant) sees either the complete old
  state or the complete new state, never a half-written file.
* **Advisory exclusion** — commits take an exclusive ``flock`` on a
  sidecar ``<name>.lock`` file for the read-check-write critical
  section, so concurrent writers serialize instead of clobbering each
  other's updates; the generation check inside the lock turns a lost
  race into a clean :class:`~.base.BackendConflict`.

On platforms without ``fcntl`` the lock degrades to a no-op (single
-process use stays correct; concurrent writers need POSIX).
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path

from ...core.errors import FeedbackError
from .base import BackendConflict, CommitDelta

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


def write_json_atomic(path: str | Path, payload: dict) -> None:
    """Serialize ``payload`` and atomically replace ``path`` with it."""
    path = Path(path)
    text = json.dumps(payload, indent=1, sort_keys=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)


def read_json_payload(path: str | Path) -> dict:
    """Parse a statistics-store JSON file, failing with clean errors."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise FeedbackError(
            f"statistics store {str(path)!r} is unreadable: {exc}"
        ) from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FeedbackError(
            f"statistics store {str(path)!r} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise FeedbackError(
            f"statistics store {str(path)!r} must hold a JSON object"
        )
    return payload


class JsonBackend:
    """File-per-store JSON backend (current format, now concurrent-safe)."""

    name = "json"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock_path = self.path.parent / f"{self.path.name}.lock"

    @contextlib.contextmanager
    def _locked(self):
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self._lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _read_unlocked(self) -> tuple[dict | None, int]:
        if not self.path.exists():
            return None, 0
        payload = read_json_payload(self.path)
        return payload, int(payload.get("generation", 0))

    # -- StatsBackend ------------------------------------------------------

    def load(self) -> tuple[dict | None, int]:
        with self._locked():
            return self._read_unlocked()

    def generation(self) -> int:
        with self._locked():
            return self._read_unlocked()[1]

    def commit(
        self, payload: dict, delta: CommitDelta, expected_generation: int
    ) -> int:
        # Whole-file format: the delta is subsumed by the payload.
        del delta
        with self._locked():
            _, current = self._read_unlocked()
            if current != expected_generation:
                raise BackendConflict(
                    f"statistics store {str(self.path)!r} moved to "
                    f"generation {current} (expected {expected_generation})"
                )
            out = dict(payload)
            out["generation"] = current + 1
            write_json_atomic(self.path, out)
            return out["generation"]

    def close(self) -> None:
        pass  # nothing held open between calls
