"""The persistence contract under the statistics policy layer.

:class:`~repro.feedback.store.StatisticsStore` owns all aggregation
*policy* — EMA decay, staleness horizons, precedence, the
``estimator_view()`` fingerprint.  Everything about *where bytes live*
is behind the :class:`StatsBackend` protocol defined here, so the same
policy code runs over an in-memory dict, a crash-safe JSON file, or a
sqlite database in WAL mode.

The contract is optimistic concurrency over whole-store snapshots:

* ``load()`` returns the current persisted payload (the store's
  ``to_dict()`` shape) plus a **generation** — a monotonic counter
  bumped by every committed write, by any process.
* ``commit(payload, delta, expected_generation)`` atomically publishes
  a new state *iff* the persisted generation still equals
  ``expected_generation``; otherwise it raises :class:`BackendConflict`
  and changes nothing.  The caller (the store's transactional
  ``ingest``) then reloads, re-folds its observation over the fresh
  state, and retries — so two processes ingesting concurrently can
  never double-fold an EMA or tear a file, and every committed
  generation corresponds to exactly one ingested execution.
* ``generation()`` is the cheap foreign-write probe: a process compares
  it against the generation it last incorporated and, on mismatch,
  pulls the new state and invalidates exactly the dirty operator set
  (``StatisticsStore.sync()``).

``payload`` is always the full serialized store; ``delta`` narrows the
commit to the rows one ingest actually touched, for backends (sqlite)
that can write incrementally.  Backends that persist whole files (JSON)
may ignore the delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


class BackendConflict(Exception):
    """A commit lost the optimistic generation race; reload and retry."""


@dataclass(frozen=True, slots=True)
class CommitDelta:
    """The rows one ingested execution touched, as plain payload dicts.

    ``run_ingested`` is the *full* post-trim (signature, run-id) dedupe
    map — it is tiny (bounded by the store's run-dedupe limit) and
    replaced wholesale on every commit, which keeps eviction trivially
    consistent across backends.
    """

    version: int  # the store's logical clock after the fold
    nodes: dict[str, dict] = field(default_factory=dict)
    sources: dict[str, dict] = field(default_factory=dict)
    plans: dict[str, dict] = field(default_factory=dict)
    run_ingested: list[tuple[str, list[str]]] = field(default_factory=list)


@runtime_checkable
class StatsBackend(Protocol):
    """Transactional persistence for one statistics store."""

    def load(self) -> tuple[dict | None, int]:
        """Return ``(payload, generation)``; payload None when fresh."""
        ...  # pragma: no cover - protocol

    def generation(self) -> int:
        """The currently persisted generation (0 when fresh)."""
        ...  # pragma: no cover - protocol

    def commit(
        self, payload: dict, delta: CommitDelta, expected_generation: int
    ) -> int:
        """Atomically publish ``payload``/``delta``; return the new
        generation.  Raises :class:`BackendConflict` when the persisted
        generation no longer equals ``expected_generation``."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release OS resources (connections, lock handles)."""
        ...  # pragma: no cover - protocol
