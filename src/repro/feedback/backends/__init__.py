"""Pluggable, concurrent-safe persistence under the statistics store.

Two implementations of the :class:`~.base.StatsBackend` protocol ship:

* :class:`~.json_backend.JsonBackend` — the seed's JSON format, made
  crash-safe (temp-file + atomic rename) and advisory-locked;
* :class:`~.sqlite_backend.SqliteBackend` — WAL-mode sqlite with one
  transaction per ingested execution and schema migrations.

:func:`open_backend` picks one by file extension (``.sqlite`` /
``.sqlite3`` / ``.db`` → sqlite, anything else → JSON) unless an
explicit name overrides the sniff.
"""

from __future__ import annotations

from pathlib import Path

from ...core.errors import FeedbackError
from .base import BackendConflict, CommitDelta, StatsBackend
from .json_backend import JsonBackend, read_json_payload, write_json_atomic
from .sqlite_backend import SqliteBackend

#: Extensions that sniff as the sqlite backend.
SQLITE_SUFFIXES = frozenset({".sqlite", ".sqlite3", ".db"})

#: Names accepted as an explicit backend override.
BACKEND_NAMES = ("json", "sqlite")


def sniff_backend(path: str | Path) -> str:
    """Backend name implied by a store path's extension."""
    return "sqlite" if Path(path).suffix.lower() in SQLITE_SUFFIXES else "json"


def open_backend(path: str | Path, name: str | None = None) -> StatsBackend:
    """Open (creating on first commit) the backend for ``path``.

    ``name`` forces ``"json"`` or ``"sqlite"`` regardless of extension;
    ``None`` sniffs the extension via :func:`sniff_backend`.
    """
    if name is None:
        name = sniff_backend(path)
    if name == "json":
        return JsonBackend(path)
    if name == "sqlite":
        return SqliteBackend(path)
    raise FeedbackError(
        f"unknown statistics backend {name!r} (expected one of "
        f"{', '.join(BACKEND_NAMES)})"
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendConflict",
    "CommitDelta",
    "JsonBackend",
    "SQLITE_SUFFIXES",
    "SqliteBackend",
    "StatsBackend",
    "open_backend",
    "read_json_payload",
    "sniff_backend",
    "write_json_atomic",
]
