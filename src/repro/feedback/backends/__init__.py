"""Pluggable, concurrent-safe persistence under the statistics store.

Two implementations of the :class:`~.base.StatsBackend` protocol ship:

* :class:`~.json_backend.JsonBackend` — the seed's JSON format, made
  crash-safe (temp-file + atomic rename) and advisory-locked;
* :class:`~.sqlite_backend.SqliteBackend` — WAL-mode sqlite with one
  transaction per ingested execution and schema migrations.

:func:`open_backend` picks one by file extension (``.sqlite`` /
``.sqlite3`` / ``.db`` → sqlite, anything else → JSON) unless an
explicit name overrides the sniff.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from ...core.errors import FeedbackError
from .base import BackendConflict, CommitDelta, StatsBackend
from .json_backend import JsonBackend, read_json_payload, write_json_atomic
from .sqlite_backend import SqliteBackend

#: Extensions that sniff as the sqlite backend.
SQLITE_SUFFIXES = frozenset({".sqlite", ".sqlite3", ".db"})

#: Extensions that sniff as the JSON backend *silently*; anything not
#: listed here or in :data:`SQLITE_SUFFIXES` still opens as JSON but
#: warns, so a typo like ``stats.sqlte`` cannot silently change the
#: persistence format.
JSON_SUFFIXES = frozenset({".json"})

#: Names accepted as an explicit backend override.
BACKEND_NAMES = ("json", "sqlite")


def sniff_backend(path: str | Path) -> str:
    """Backend name implied by a store path's extension."""
    return "sqlite" if Path(path).suffix.lower() in SQLITE_SUFFIXES else "json"


def open_backend(path: str | Path, name: str | None = None) -> StatsBackend:
    """Open (creating on first commit) the backend for ``path``.

    ``name`` forces ``"json"`` or ``"sqlite"`` regardless of extension;
    ``None`` sniffs the extension via :func:`sniff_backend`.  Sniffing an
    extension that names neither backend warns before defaulting to JSON
    — a misspelled ``.sqlte`` must not silently change the persistence
    format.
    """
    if name is None:
        suffix = Path(path).suffix.lower()
        if suffix not in SQLITE_SUFFIXES and suffix not in JSON_SUFFIXES:
            warnings.warn(
                f"statistics-store path {str(path)!r} has unknown extension "
                f"{suffix!r}: defaulting to the JSON backend (use "
                ".json/.sqlite/.sqlite3/.db, or force a backend explicitly "
                "to silence this)",
                stacklevel=2,
            )
        name = sniff_backend(path)
    if name == "json":
        return JsonBackend(path)
    if name == "sqlite":
        return SqliteBackend(path)
    raise FeedbackError(
        f"unknown statistics backend {name!r} (expected one of "
        f"{', '.join(BACKEND_NAMES)})"
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendConflict",
    "CommitDelta",
    "JSON_SUFFIXES",
    "JsonBackend",
    "SQLITE_SUFFIXES",
    "SqliteBackend",
    "StatsBackend",
    "open_backend",
    "read_json_payload",
    "sniff_backend",
    "write_json_atomic",
]
