"""Sqlite persistence in WAL mode: one transaction per ingested execution.

Concurrency model
-----------------
The database runs in write-ahead-log mode (readers never block the
writer, the writer never blocks readers) and every ``commit()`` is one
``BEGIN IMMEDIATE`` transaction: take the write lock, re-check the
persisted generation against the caller's expectation, upsert exactly
the rows the ingest touched, bump the generation, commit.  A stale
expectation rolls back untouched and surfaces as
:class:`~.base.BackendConflict`, which the store's transactional ingest
answers by reloading and re-folding — the optimistic-retry loop.  Lock
contention (not staleness) is absorbed by sqlite's busy timeout.

Schema migrations
-----------------
``PRAGMA user_version`` records the schema generation; :data:`_MIGRATIONS`
is an ordered chain of idempotent upgrade steps applied inside one
transaction on open.  A fresh database walks the whole chain; an old
file resumes from its recorded version; a *newer* file than this code
understands fails loudly instead of guessing.

Values round-trip exactly: floats are bound as 8-byte IEEE ``REAL``,
counters as ``INTEGER``, and store-level config (decay, staleness
horizon, the run-dedupe map) as JSON text in the ``meta`` table — so a
state written by one process re-loads bit-identically in another.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from ...core.errors import FeedbackError
from .base import BackendConflict, CommitDelta

#: Current schema generation (PRAGMA user_version).
SCHEMA_VERSION = 2

#: Store format the payloads speak (mirrors the JSON format version).
_FORMAT = 2


def _migrate_v1(con: sqlite3.Connection) -> None:
    """v1: the original tables — meta kv, nodes, sources, plans."""
    con.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
    con.execute(
        "CREATE TABLE nodes (key TEXT PRIMARY KEY, op_name TEXT NOT NULL,"
        " kind TEXT NOT NULL, rows_in REAL NOT NULL, rows_out REAL NOT NULL,"
        " udf_calls REAL NOT NULL, cpu_per_call REAL NOT NULL,"
        " runs INTEGER NOT NULL, last_seen INTEGER NOT NULL)"
    )
    con.execute(
        "CREATE TABLE sources (name TEXT PRIMARY KEY, rows REAL NOT NULL,"
        " scan_bytes REAL NOT NULL, runs INTEGER NOT NULL,"
        " last_seen INTEGER NOT NULL)"
    )
    con.execute(
        "CREATE TABLE plans (key TEXT PRIMARY KEY, seconds REAL NOT NULL,"
        " runs INTEGER NOT NULL, last_seen INTEGER NOT NULL)"
    )


def _migrate_v2(con: sqlite3.Connection) -> None:
    """v2: measured wall-clock runtimes alongside modeled seconds."""
    con.execute(
        "ALTER TABLE plans ADD COLUMN wall_seconds REAL NOT NULL DEFAULT 0"
    )
    con.execute(
        "ALTER TABLE plans ADD COLUMN wall_runs INTEGER NOT NULL DEFAULT 0"
    )


#: Ordered upgrade chain: step i migrates user_version i -> i+1.
_MIGRATIONS = (_migrate_v1, _migrate_v2)


class SqliteBackend:
    """WAL-mode sqlite backend with per-execution transactions."""

    name = "sqlite"

    def __init__(self, path: str | Path, busy_timeout: float = 30.0) -> None:
        self.path = Path(path)
        try:
            # check_same_thread off: a store is single-owner but not
            # thread-pinned — the planning server opens it on the event
            # loop and syncs/ingests from executor threads, serialized
            # by its per-tenant lock.  Concurrent *processes* are the
            # supported concurrency model (WAL + per-commit IMMEDIATE
            # transactions); concurrent threads on one handle stay the
            # caller's responsibility, exactly as before.
            self._con = sqlite3.connect(
                str(self.path),
                timeout=busy_timeout,
                isolation_level=None,
                check_same_thread=False,
            )
        except sqlite3.Error as exc:
            raise FeedbackError(
                f"cannot open sqlite statistics store {str(path)!r}: {exc}"
            ) from None
        self._con.execute("PRAGMA journal_mode=WAL")
        self._con.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    def _migrate(self) -> None:
        con = self._con
        con.execute("BEGIN IMMEDIATE")
        try:
            (version,) = con.execute("PRAGMA user_version").fetchone()
            if version > SCHEMA_VERSION:
                raise FeedbackError(
                    f"statistics store {str(self.path)!r} has schema "
                    f"version {version}, newer than this build "
                    f"({SCHEMA_VERSION}) — upgrade the code, not the file"
                )
            for step in _MIGRATIONS[version:]:
                step(con)
            if version < SCHEMA_VERSION:
                con.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            con.execute("COMMIT")
        except BaseException:
            con.execute("ROLLBACK")
            raise

    # -- meta helpers ------------------------------------------------------

    def _meta(self) -> dict[str, str]:
        return dict(self._con.execute("SELECT key, value FROM meta"))

    def _generation_row(self) -> int:
        row = self._con.execute(
            "SELECT value FROM meta WHERE key = 'generation'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    # -- StatsBackend ------------------------------------------------------

    def load(self) -> tuple[dict | None, int]:
        meta = self._meta()
        generation = int(meta.get("generation", 0))
        if "version" not in meta:
            return None, generation
        payload: dict = {
            "format": _FORMAT,
            "decay": json.loads(meta["decay"]),
            "staleness_horizon": json.loads(meta["staleness_horizon"]),
            "version": int(meta["version"]),
            # Sorted row order mirrors the JSON format's sort_keys
            # serialization, so a reload is bit-identical across backends
            # (learned-hint folds iterate entries in store order).
            "nodes": {
                key: {
                    "op_name": op_name,
                    "kind": kind,
                    "rows_in": rows_in,
                    "rows_out": rows_out,
                    "udf_calls": udf_calls,
                    "cpu_per_call": cpu_per_call,
                    "runs": runs,
                    "last_seen": last_seen,
                }
                for (
                    key, op_name, kind, rows_in, rows_out,
                    udf_calls, cpu_per_call, runs, last_seen,
                ) in self._con.execute(
                    "SELECT key, op_name, kind, rows_in, rows_out,"
                    " udf_calls, cpu_per_call, runs, last_seen"
                    " FROM nodes ORDER BY key"
                )
            },
            "sources": {
                name: {
                    "rows": rows,
                    "scan_bytes": scan_bytes,
                    "runs": runs,
                    "last_seen": last_seen,
                }
                for name, rows, scan_bytes, runs, last_seen in self._con.execute(
                    "SELECT name, rows, scan_bytes, runs, last_seen"
                    " FROM sources ORDER BY name"
                )
            },
            "plans": {
                key: {
                    "seconds": seconds,
                    "wall_seconds": wall_seconds,
                    "wall_runs": wall_runs,
                    "runs": runs,
                    "last_seen": last_seen,
                }
                for key, seconds, wall_seconds, wall_runs, runs, last_seen
                in self._con.execute(
                    "SELECT key, seconds, wall_seconds, wall_runs, runs,"
                    " last_seen FROM plans ORDER BY key"
                )
            },
            "run_ingested": json.loads(meta.get("run_ingested", "[]")),
        }
        return payload, generation

    def generation(self) -> int:
        return self._generation_row()

    def commit(
        self, payload: dict, delta: CommitDelta, expected_generation: int
    ) -> int:
        con = self._con
        con.execute("BEGIN IMMEDIATE")
        try:
            current = self._generation_row()
            if current != expected_generation:
                raise BackendConflict(
                    f"statistics store {str(self.path)!r} moved to "
                    f"generation {current} (expected {expected_generation})"
                )
            for key, row in delta.nodes.items():
                con.execute(
                    "INSERT OR REPLACE INTO nodes (key, op_name, kind,"
                    " rows_in, rows_out, udf_calls, cpu_per_call, runs,"
                    " last_seen) VALUES (?,?,?,?,?,?,?,?,?)",
                    (
                        key, row["op_name"], row["kind"], row["rows_in"],
                        row["rows_out"], row["udf_calls"],
                        row["cpu_per_call"], row["runs"], row["last_seen"],
                    ),
                )
            for name, row in delta.sources.items():
                con.execute(
                    "INSERT OR REPLACE INTO sources (name, rows, scan_bytes,"
                    " runs, last_seen) VALUES (?,?,?,?,?)",
                    (
                        name, row["rows"], row["scan_bytes"], row["runs"],
                        row["last_seen"],
                    ),
                )
            for key, row in delta.plans.items():
                con.execute(
                    "INSERT OR REPLACE INTO plans (key, seconds,"
                    " wall_seconds, wall_runs, runs, last_seen)"
                    " VALUES (?,?,?,?,?,?)",
                    (
                        key, row["seconds"], row["wall_seconds"],
                        row["wall_runs"], row["runs"], row["last_seen"],
                    ),
                )
            meta_rows = (
                ("generation", str(current + 1)),
                ("version", str(delta.version)),
                ("decay", json.dumps(payload["decay"])),
                ("staleness_horizon", json.dumps(payload["staleness_horizon"])),
                ("run_ingested", json.dumps(delta.run_ingested)),
            )
            con.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?,?)",
                meta_rows,
            )
            con.execute("COMMIT")
        except BaseException:
            con.execute("ROLLBACK")
            raise
        return current + 1

    def close(self) -> None:
        self._con.close()
