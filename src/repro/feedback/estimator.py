"""Learned cardinality estimation and q-error accounting.

:class:`FeedbackEstimator` is a drop-in
:class:`~repro.optimizer.cardinality.CardinalityEstimator` whose
estimates prefer runtime observations, with precedence

    exact per-signature observation
      > learned per-operator hints (aggregated across positions)
        > user/SCA-provided hints
          > paper defaults (emit bounds + catalog statistics)

A node whose logical signature was executed before gets its *observed*
output cardinality and call count verbatim — correlation-proof, since
the observation is conditioned on exactly the operators below it.  A
node in a never-executed position falls back to hints whose selectivity
and CPU cost were *measured* (averaged over the positions the operator
was seen in) rather than guessed.  Without a store (or with an empty
one), behavior is identical to the base estimator by construction.

The q-error helpers quantify how wrong a set of estimates was against
what an execution then observed — ``max(est/actual, actual/est)``, the
standard optimizer-quality metric — so every feedback round can report
whether learning actually tightened the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from ..core.operators import Sink, Source, UdfOperator
from ..core.plan import Node, iter_nodes, resolved_signature_key
from ..optimizer.cardinality import CardinalityEstimator, EstStats, Hints
from ..optimizer.context import PlanContext
from .observation import ExecutionObservation
from .store import StatisticsStore


def merge_hints(
    base: dict[str, Hints], learned: dict[str, Hints]
) -> dict[str, Hints]:
    """Field-wise overlay: learned values win, absent fields fall back."""
    merged = dict(base)
    for name, new in learned.items():
        old = merged.get(name)
        if old is None:
            merged[name] = new
            continue
        merged[name] = Hints(
            selectivity=(
                new.selectivity if new.selectivity is not None else old.selectivity
            ),
            cpu_per_call=new.cpu_per_call,
            distinct_keys=(
                new.distinct_keys
                if new.distinct_keys is not None
                else old.distinct_keys
            ),
        )
    return merged


class FeedbackEstimator(CardinalityEstimator):
    """Cardinality estimator that prefers learned runtime statistics."""

    def __init__(
        self,
        ctx: PlanContext,
        hints: dict[str, Hints] | None = None,
        store: StatisticsStore | None = None,
    ) -> None:
        self.store = store or StatisticsStore()
        base = hints or {}
        super().__init__(ctx, merge_hints(base, self.store.learned_hints()))
        self.base_hints = base
        self._source_rows = {
            name: float(stats.row_count)
            for name, stats in self.store.source_overrides().items()
        }

    def source_rows(self, op: Source) -> float:
        observed = self._source_rows.get(op.name)
        if observed is not None:
            return observed
        return super().source_rows(op)

    def _estimate(self, node: Node) -> EstStats:
        if isinstance(node.op, UdfOperator):
            # Resolved keys make observations transfer both ways across
            # materialized stage boundaries (identical to the plain
            # signature key for ordinary plans).
            stats = self.store.node_stats(resolved_signature_key(node))
            if stats is not None:
                # Children still estimate normally (their own observations
                # apply recursively); the node's output is pinned to what
                # the engine measured for this exact logical sub-flow.
                for child in node.children:
                    self.estimate(child)
                return EstStats(
                    rows=stats.rows_out,
                    width=self._width(node),
                    calls=stats.udf_calls,
                )
        return super()._estimate(node)

    def bound_stats_via(self, node: Node, child_stats) -> EstStats:
        # Mirror the observation pinning above: the guided search's lower
        # bound must see the same output cardinality the estimate will,
        # otherwise a pinned-low node could make the bound *exceed* the
        # true cost and break admissibility.
        if isinstance(node.op, UdfOperator):
            stats = self.store.node_stats(resolved_signature_key(node))
            if stats is not None:
                return EstStats(
                    rows=stats.rows_out,
                    width=self._width(node),
                    calls=stats.udf_calls,
                )
        return super().bound_stats_via(node, child_stats)


# ---------------------------------------------------------------------------
# q-error
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class QErrorReport:
    """Estimate-vs-observation divergence for one set of executions."""

    per_node: dict[str, float]  # signature key -> q-error

    @property
    def count(self) -> int:
        return len(self.per_node)

    @property
    def max(self) -> float:
        return max(self.per_node.values(), default=1.0)

    @property
    def median(self) -> float:
        if not self.per_node:
            return 1.0
        return median(self.per_node.values())


def qerror(estimated: float, observed: float) -> float:
    """``max(est/actual, actual/est)``, safe at zero (floor of one row)."""
    est = max(float(estimated), 1.0)
    act = max(float(observed), 1.0)
    return max(est / act, act / est)


def qerror_report(
    estimator: CardinalityEstimator,
    executions: list[ExecutionObservation],
    bodies: dict[str, Node],
) -> QErrorReport:
    """Compare an estimator's row estimates against observed rows.

    ``bodies`` maps each execution's ``plan_key`` to the logical body
    that was optimized (sink stripped); estimates come from the same
    estimator instance the optimizer used, so cached values reflect
    exactly what the cost model believed when it ranked the plans.
    Sources and sinks are excluded — only UDF operators are estimated
    quantities.
    """
    per_node: dict[str, float] = {}
    for execution in executions:
        body = bodies.get(execution.plan_key)
        if body is None:
            continue
        estimates = {
            resolved_signature_key(n): estimator.estimate(n).rows
            for n in iter_nodes(body)
            if not isinstance(n.op, (Source, Sink))
        }
        for obs in execution.ops:
            if obs.kind == "source":
                continue
            est = estimates.get(obs.key)
            if est is None:
                continue
            per_node[obs.key] = qerror(est, obs.rows_out)
    return QErrorReport(per_node=per_node)
