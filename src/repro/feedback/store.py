"""The statistics store: aggregated runtime observations across runs.

Aggregation model
-----------------
Every ingested execution bumps the store ``version`` (a logical clock —
no wall time, so replays are deterministic).  Per-node statistics merge
by exponential moving average with weight ``decay`` on the newest
observation, so drifting data shifts the learned statistics while
one-off outliers wash out; entries unseen for more than
``staleness_horizon`` ingests are treated as stale and excluded from
learned hints and overrides (they are kept in the store so a later
sighting revives their history).

What is learned
---------------
* per-signature node statistics (exact observed cardinalities for a
  logical sub-flow, the strongest override),
* per-operator-name :class:`~repro.optimizer.cardinality.Hints`
  (selectivity, CPU cost per call, distinct keys) aggregated across all
  positions the operator was observed in — these generalize to plan
  alternatives that were never executed,
* per-source row counts and scan volumes
  (:class:`~repro.core.catalog.SourceStats` overrides),
* per-plan measured runtimes, which let the adaptive driver prefer a
  plan it has *measured* to be fastest over one it merely estimates.

The store round-trips through JSON (:meth:`save` / :meth:`load`):
persist -> reload -> re-optimize is bit-deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.catalog import Catalog, SourceStats
from ..core.errors import FeedbackError
from ..optimizer.cardinality import Hints
from .observation import GROUPING_KINDS, ExecutionObservation

_FORMAT_VERSION = 1


@dataclass(slots=True)
class NodeStats:
    """Aggregated observations of one logical sub-flow (signature key)."""

    key: str
    op_name: str
    kind: str
    rows_in: float = 0.0
    rows_out: float = 0.0
    udf_calls: float = 0.0
    cpu_per_call: float = 1.0
    runs: int = 0
    last_seen: int = 0

    @property
    def selectivity(self) -> float | None:
        if self.udf_calls <= 0:
            return None
        return self.rows_out / self.udf_calls

    @property
    def distinct_keys(self) -> int | None:
        if self.kind in GROUPING_KINDS and self.udf_calls > 0:
            return max(1, round(self.udf_calls))
        return None


@dataclass(slots=True)
class SourceObservation:
    """Aggregated scan statistics of one data source."""

    name: str
    rows: float = 0.0
    scan_bytes: float = 0.0
    runs: int = 0
    last_seen: int = 0

    @property
    def avg_record_bytes(self) -> float | None:
        if self.rows <= 0:
            return None
        return self.scan_bytes / self.rows


@dataclass(slots=True)
class PlanStats:
    """Measured runtime of one logical plan body."""

    key: str
    seconds: float = 0.0
    runs: int = 0
    last_seen: int = 0


def _ema(old: float, new: float, weight: float, first: bool) -> float:
    if first:
        return new
    return weight * new + (1.0 - weight) * old


@dataclass(slots=True)
class StatisticsStore:
    """In-memory + JSON-persisted aggregate of runtime observations."""

    decay: float = 0.5  # EMA weight of the newest observation
    staleness_horizon: int | None = None  # ingests before an entry goes stale
    version: int = 0  # logical clock, bumped per ingested execution
    nodes: dict[str, NodeStats] = field(default_factory=dict)
    sources: dict[str, SourceObservation] = field(default_factory=dict)
    plans: dict[str, PlanStats] = field(default_factory=dict)
    # Transient (never persisted): run id -> signature keys already folded
    # in for that engine execution.  A staged execution ingests each
    # stage's delta in flight and then the whole-run observation at the
    # end; without this, every stage op would be EMA-folded twice per run.
    _run_ingested: dict[str, set[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not (0.0 < self.decay <= 1.0):
            raise FeedbackError(f"decay must be in (0, 1], got {self.decay}")
        if self.staleness_horizon is not None and self.staleness_horizon < 0:
            raise FeedbackError(
                "staleness_horizon must be None or >= 0, got "
                f"{self.staleness_horizon}"
            )

    # -- ingestion ---------------------------------------------------------

    #: Run-dedupe sets retained at once; staged runs ingest their deltas
    #: immediately, so old runs' sets are dead weight after a handful of
    #: executions.
    _RUN_DEDUP_LIMIT = 64

    def ingest(self, execution: ExecutionObservation) -> None:
        """Fold one execution's observations into the aggregates.

        Observations carrying a ``run_id`` are deduplicated per
        (signature, run): an operator already ingested for that engine
        execution — e.g. by an in-flight stage delta — is skipped when the
        same execution's whole-run observation arrives, so mid-query
        ingestion never double-counts.  ``partial`` observations (stage
        deltas, switched hybrid runs) update node and source statistics
        but never the per-plan measured runtimes: their ``seconds`` are
        not a whole-plan runtime.
        """
        self.version += 1
        w = self.decay
        ingested: set[str] | None = None
        if execution.run_id is not None:
            ingested = self._run_ingested.get(execution.run_id)
            if ingested is None:
                while len(self._run_ingested) >= self._RUN_DEDUP_LIMIT:
                    self._run_ingested.pop(next(iter(self._run_ingested)))
                ingested = self._run_ingested[execution.run_id] = set()
        for obs in execution.ops:
            if ingested is not None:
                if obs.key in ingested:
                    continue
                ingested.add(obs.key)
            if obs.kind == "source":
                src = self.sources.get(obs.op_name)
                if src is None:
                    src = SourceObservation(name=obs.op_name)
                    self.sources[obs.op_name] = src
                first = src.runs == 0
                src.rows = _ema(src.rows, float(obs.rows_out), w, first)
                src.scan_bytes = _ema(src.scan_bytes, obs.disk_bytes, w, first)
                src.runs += 1
                src.last_seen = self.version
                continue
            node = self.nodes.get(obs.key)
            if node is None:
                node = NodeStats(key=obs.key, op_name=obs.op_name, kind=obs.kind)
                self.nodes[obs.key] = node
            first = node.runs == 0
            node.rows_in = _ema(node.rows_in, float(obs.rows_in), w, first)
            node.rows_out = _ema(node.rows_out, float(obs.rows_out), w, first)
            node.udf_calls = _ema(node.udf_calls, float(obs.udf_calls), w, first)
            node.cpu_per_call = _ema(node.cpu_per_call, obs.cpu_per_call, w, first)
            node.runs += 1
            node.last_seen = self.version
        if execution.partial:
            return
        plan = self.plans.get(execution.plan_key)
        if plan is None:
            plan = PlanStats(key=execution.plan_key)
            self.plans[execution.plan_key] = plan
        first = plan.runs == 0
        plan.seconds = _ema(plan.seconds, execution.seconds, w, first)
        plan.runs += 1
        plan.last_seen = self.version

    # -- staleness ---------------------------------------------------------

    def _fresh(self, last_seen: int) -> bool:
        if self.staleness_horizon is None:
            return True
        return (self.version - last_seen) <= self.staleness_horizon

    # -- compatibility -----------------------------------------------------

    def check_compatible(self, catalog: Catalog) -> None:
        """Fail loudly when the store was learned on different data.

        Store keys are pure logical signatures, identical across datagen
        scales — warm-starting against rescaled or regenerated sources
        would silently apply wrong cardinalities and stale measured
        runtimes.  The observed per-source row counts act as the data
        fingerprint: any source known to both the store and the catalog
        must match exactly (observations on unchanged data are exact,
        EMA or not).  Sources only one side knows are ignored, so stores
        may accumulate several workloads.
        """
        for name, observed in self.sources.items():
            if not self._fresh(observed.last_seen) or observed.runs == 0:
                continue
            if not catalog.has_source(name):
                continue
            expected = catalog.stats(name).row_count
            if round(observed.rows) != expected:
                raise FeedbackError(
                    f"statistics store observed {round(observed.rows)} rows "
                    f"for source {name!r} but the catalog reports {expected}: "
                    "the store was learned on different data (other scale or "
                    "seed) — use a fresh store path"
                )

    # -- learned views -----------------------------------------------------

    def estimator_view(self) -> dict[str, tuple]:
        """Per-operator-name fingerprint of everything an estimator reads.

        For each name this folds in the learned :class:`Hints` (all
        fields — selectivity and distinct keys shape estimates, CPU cost
        shapes costs), the fresh per-signature observations *rooted* at
        the name (the estimator pins exactly the node whose signature
        matches, and every entry above that node contains its root
        operator), and the source row-count override.  Because a node's
        estimate and cost depend only on the operators inside its
        subtree, two store states whose views agree on a name produce
        bit-identical results for every sub-plan not containing that
        name — so the *diff* of this view between feedback rounds is
        exactly the dirty set for
        :meth:`~repro.optimizer.memo.Memo.invalidate`.  Staleness
        transitions are captured too: an entry crossing the horizon
        drops out of the view and flags its name.
        """
        view: dict[str, list] = {}
        for name, hint in self.learned_hints().items():
            view.setdefault(name, []).append(("hints", hint))
        for name, stats in self.source_overrides().items():
            view.setdefault(name, []).append(("source", stats.row_count))
        for key in sorted(self.nodes):
            node = self.node_stats(key)
            if node is not None:
                view.setdefault(node.op_name, []).append(
                    ("node", key, node.rows_out, node.udf_calls)
                )
        return {name: tuple(entries) for name, entries in view.items()}

    def node_stats(self, key: str) -> NodeStats | None:
        """Fresh per-signature statistics, or None if unknown/stale."""
        node = self.nodes.get(key)
        if node is None or not self._fresh(node.last_seen):
            return None
        return node

    def plan_seconds(self, key: str) -> float | None:
        """Fresh measured runtime of a plan body, or None."""
        plan = self.plans.get(key)
        if plan is None or not self._fresh(plan.last_seen):
            return None
        return plan.seconds

    def learned_hints(self) -> dict[str, Hints]:
        """Per-operator hints aggregated across every observed position.

        Selectivity is the ratio of run-weighted emitted rows to UDF
        calls (a per-call average, exactly the paper's "Average Number of
        Records Emitted per UDF Call" — measured instead of guessed);
        distinct keys average the observed group counts of grouping
        operators.  Sorted by operator name for deterministic output.
        """
        rows: dict[str, float] = {}
        calls: dict[str, float] = {}
        cpu: dict[str, float] = {}
        keys: dict[str, float] = {}
        key_runs: dict[str, float] = {}
        runs: dict[str, float] = {}
        for node in self.nodes.values():
            if not self._fresh(node.last_seen):
                continue
            name = node.op_name
            weight = float(node.runs)
            rows[name] = rows.get(name, 0.0) + weight * node.rows_out
            calls[name] = calls.get(name, 0.0) + weight * node.udf_calls
            cpu[name] = cpu.get(name, 0.0) + weight * node.cpu_per_call
            runs[name] = runs.get(name, 0.0) + weight
            dk = node.distinct_keys
            if dk is not None:
                keys[name] = keys.get(name, 0.0) + weight * dk
                key_runs[name] = key_runs.get(name, 0.0) + weight
        out: dict[str, Hints] = {}
        for name in sorted(runs):
            selectivity = rows[name] / calls[name] if calls[name] > 0 else None
            distinct = (
                max(1, round(keys[name] / key_runs[name]))
                if key_runs.get(name)
                else None
            )
            out[name] = Hints(
                selectivity=selectivity,
                cpu_per_call=cpu[name] / runs[name],
                distinct_keys=distinct,
            )
        return out

    def source_overrides(self) -> dict[str, SourceStats]:
        """Observed per-source row counts as catalog-stat overrides."""
        out: dict[str, SourceStats] = {}
        for name in sorted(self.sources):
            src = self.sources[name]
            if not self._fresh(src.last_seen) or src.runs == 0:
                continue
            out[name] = SourceStats(row_count=max(0, round(src.rows)))
        return out

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT_VERSION,
            "decay": self.decay,
            "staleness_horizon": self.staleness_horizon,
            "version": self.version,
            "nodes": {
                k: {
                    "op_name": n.op_name,
                    "kind": n.kind,
                    "rows_in": n.rows_in,
                    "rows_out": n.rows_out,
                    "udf_calls": n.udf_calls,
                    "cpu_per_call": n.cpu_per_call,
                    "runs": n.runs,
                    "last_seen": n.last_seen,
                }
                for k, n in sorted(self.nodes.items())
            },
            "sources": {
                k: {
                    "rows": s.rows,
                    "scan_bytes": s.scan_bytes,
                    "runs": s.runs,
                    "last_seen": s.last_seen,
                }
                for k, s in sorted(self.sources.items())
            },
            "plans": {
                k: {
                    "seconds": p.seconds,
                    "runs": p.runs,
                    "last_seen": p.last_seen,
                }
                for k, p in sorted(self.plans.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StatisticsStore":
        try:
            if payload["format"] != _FORMAT_VERSION:
                raise FeedbackError(
                    f"unsupported statistics-store format {payload['format']!r}"
                )
            store = cls(
                decay=payload["decay"],
                staleness_horizon=payload["staleness_horizon"],
                version=payload["version"],
            )
            for key, n in payload["nodes"].items():
                store.nodes[key] = NodeStats(key=key, **n)
            for name, s in payload["sources"].items():
                store.sources[name] = SourceObservation(name=name, **s)
            for key, p in payload["plans"].items():
                store.plans[key] = PlanStats(key=key, **p)
        except (KeyError, TypeError) as exc:
            raise FeedbackError(
                f"malformed statistics-store payload: {exc!r}"
            ) from None
        return store

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "StatisticsStore":
        text = Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FeedbackError(
                f"statistics store {str(path)!r} is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise FeedbackError(
                f"statistics store {str(path)!r} must hold a JSON object"
            )
        return cls.from_dict(payload)

    @classmethod
    def open(cls, path: str | Path, **kwargs) -> "StatisticsStore":
        """Load an existing store, or create a fresh one for the path."""
        if Path(path).exists():
            return cls.load(path)
        return cls(**kwargs)
