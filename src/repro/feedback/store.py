"""The statistics store: aggregated runtime observations across runs.

Aggregation model (the policy layer)
------------------------------------
Every ingested execution bumps the store ``version`` (a logical clock —
no wall time, so replays are deterministic).  Per-node statistics merge
by exponential moving average with weight ``decay`` on the newest
observation, so drifting data shifts the learned statistics while
one-off outliers wash out; entries unseen for more than
``staleness_horizon`` ingests are treated as stale and excluded from
learned hints and overrides (they are kept in the store so a later
sighting revives their history).

What is learned
---------------
* per-signature node statistics (exact observed cardinalities for a
  logical sub-flow, the strongest override),
* per-operator-name :class:`~repro.optimizer.cardinality.Hints`
  (selectivity, CPU cost per call, distinct keys) aggregated across all
  positions the operator was observed in — these generalize to plan
  alternatives that were never executed,
* per-source row counts and scan volumes
  (:class:`~repro.core.catalog.SourceStats` overrides),
* per-plan measured runtimes — both the engine's *modeled* seconds and
  the measured *wall-clock* seconds — which let the adaptive driver
  prefer a plan it has measured to be fastest over one it merely
  estimates.

Persistence (the backend layer)
-------------------------------
All policy above is persistence-agnostic.  A store may run purely in
memory (``backend=None``, the default — behavior identical to the seed)
or attach a :class:`~.backends.StatsBackend` (:meth:`open`), in which
case **every ingest is one transaction**: incorporate foreign commits
(cheap generation probe), fold the execution, and atomically publish the
result with an optimistic generation check — a lost race reloads and
re-folds, so concurrent writers can never double-fold an EMA or tear a
file.  The ``(signature, run-id)`` ingest-dedupe map is persisted with
the state, so a whole-run ingest cannot double-count stage deltas even
across process boundaries.  :meth:`sync` pulls foreign writes on demand
and returns exactly the dirty operator-name set (the
:meth:`estimator_view` diff), which is precisely what
:meth:`~repro.optimizer.memo.Memo.invalidate` wants.

The store also round-trips through plain JSON (:meth:`save` /
:meth:`load` — now torn-write-safe via atomic replace): persist ->
reload -> re-optimize is bit-deterministic, across backends too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.catalog import Catalog, SourceStats
from ..core.errors import FeedbackError
from ..obs.tracer import NOOP_TRACER
from ..optimizer.cardinality import Hints
from .backends import (
    BackendConflict,
    CommitDelta,
    StatsBackend,
    open_backend,
    read_json_payload,
    write_json_atomic,
)
from .observation import GROUPING_KINDS, ExecutionObservation

#: Current payload format; version 1 (no run-dedupe map, no wall-clock
#: plan stats) still loads.
_FORMAT_VERSION = 2


@dataclass(slots=True)
class NodeStats:
    """Aggregated observations of one logical sub-flow (signature key)."""

    key: str
    op_name: str
    kind: str
    rows_in: float = 0.0
    rows_out: float = 0.0
    udf_calls: float = 0.0
    cpu_per_call: float = 1.0
    runs: int = 0
    last_seen: int = 0

    @property
    def selectivity(self) -> float | None:
        if self.udf_calls <= 0:
            return None
        return self.rows_out / self.udf_calls

    @property
    def distinct_keys(self) -> int | None:
        if self.kind in GROUPING_KINDS and self.udf_calls > 0:
            return max(1, round(self.udf_calls))
        return None


@dataclass(slots=True)
class SourceObservation:
    """Aggregated scan statistics of one data source."""

    name: str
    rows: float = 0.0
    scan_bytes: float = 0.0
    runs: int = 0
    last_seen: int = 0

    @property
    def avg_record_bytes(self) -> float | None:
        if self.rows <= 0:
            return None
        return self.scan_bytes / self.rows


@dataclass(slots=True)
class PlanStats:
    """Measured runtimes of one logical plan body.

    ``seconds`` is the engine's modeled time (deterministic, the basis
    of deployment decisions); ``wall_seconds`` is the measured
    wall-clock of the same executions (hardware truth, fed by
    ``StageRun.wall_seconds`` / ``ExecutionResult.wall_seconds``) —
    tracked separately because wall clocks only exist for runs this
    machine actually performed.
    """

    key: str
    seconds: float = 0.0
    runs: int = 0
    last_seen: int = 0
    wall_seconds: float = 0.0
    wall_runs: int = 0


def _ema(old: float, new: float, weight: float, first: bool) -> float:
    if first:
        return new
    return weight * new + (1.0 - weight) * old


@dataclass(slots=True)
class StatisticsStore:
    """Aggregate of runtime observations over a pluggable backend."""

    decay: float = 0.5  # EMA weight of the newest observation
    staleness_horizon: int | None = None  # ingests before an entry goes stale
    version: int = 0  # logical clock, bumped per ingested execution
    nodes: dict[str, NodeStats] = field(default_factory=dict)
    sources: dict[str, SourceObservation] = field(default_factory=dict)
    plans: dict[str, PlanStats] = field(default_factory=dict)
    #: Transactional persistence; None = in-memory only (seed behavior).
    backend: StatsBackend | None = field(
        default=None, repr=False, compare=False
    )
    # run id -> signature keys already folded in for that engine
    # execution.  A staged execution ingests each stage's delta in
    # flight and then the whole-run observation at the end; without
    # this, every stage op would be EMA-folded twice per run.  Persisted
    # by backends so the guarantee holds across processes too.
    _run_ingested: dict[str, set[str]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Backend generation this process has incorporated (0 = fresh).
    _generation: int = field(default=0, repr=False, compare=False)
    #: Wall-clock observability (repro.obs); never part of store state —
    #: excluded from repr/compare and from every persisted payload.
    tracer: object = field(default=NOOP_TRACER, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.decay <= 1.0):
            raise FeedbackError(f"decay must be in (0, 1], got {self.decay}")
        if self.staleness_horizon is not None and self.staleness_horizon < 0:
            raise FeedbackError(
                "staleness_horizon must be None or >= 0, got "
                f"{self.staleness_horizon}"
            )

    # -- ingestion ---------------------------------------------------------

    #: Run-dedupe sets retained at once; staged runs ingest their deltas
    #: immediately, so old runs' sets are dead weight after a handful of
    #: executions.
    _RUN_DEDUP_LIMIT = 64

    #: Optimistic-commit attempts before an ingest gives up.  Conflicts
    #: only repeat while other writers keep winning the race; each retry
    #: re-folds over their committed state, so progress is global even
    #: when one process loops.
    _COMMIT_RETRIES = 64

    def ingest(self, execution: ExecutionObservation) -> None:
        """Fold one execution's observations into the aggregates.

        Observations carrying a ``run_id`` are deduplicated per
        (signature, run): an operator already ingested for that engine
        execution — e.g. by an in-flight stage delta — is skipped when the
        same execution's whole-run observation arrives, so mid-query
        ingestion never double-counts.  ``partial`` observations (stage
        deltas, switched hybrid runs) update node and source statistics
        but never the per-plan measured runtimes: their ``seconds`` are
        not a whole-plan runtime.

        With a backend attached the fold is transactional: foreign
        commits are incorporated first, and the folded state is
        published atomically under an optimistic generation check — on
        conflict the fold is discarded, re-applied over the winner's
        state, and retried, so no concurrent ingest is ever lost or
        double-counted.
        """
        span = self.tracer.span(
            "feedback.ingest",
            category="feedback",
            ops=len(execution.ops),
            partial=execution.partial,
        )
        with span:
            if self.backend is None:
                self._fold(execution)
                self.tracer.count("feedback.ingests")
                return
            conflicts = 0
            for attempt in range(self._COMMIT_RETRIES):
                if self.backend.generation() != self._generation:
                    self._reload()
                delta = self._fold(execution)
                try:
                    self._generation = self.backend.commit(
                        self.to_dict(), delta, self._generation
                    )
                    span.set(commit_attempts=attempt + 1, conflicts=conflicts)
                    self.tracer.count("feedback.ingests")
                    return
                except BackendConflict:
                    # Our fold raced a foreign commit: drop it, take the
                    # winner's state, re-fold on the next pass.  Brief
                    # backoff after repeated losses to break livelock.
                    conflicts += 1
                    self.tracer.count("feedback.commit_conflicts")
                    self._reload()
                    if attempt >= 2:
                        time.sleep(0.001 * min(attempt, 20))
            span.set(commit_attempts=self._COMMIT_RETRIES, conflicts=conflicts)
        raise FeedbackError(
            f"statistics backend kept conflicting for "
            f"{self._COMMIT_RETRIES} commit attempts — writer storm or a "
            "stuck lock; retry the ingest"
        )

    def _fold(self, execution: ExecutionObservation) -> CommitDelta:
        """Apply one execution to the in-memory aggregates.

        Pure policy — no IO.  Returns the delta (touched rows plus the
        post-trim run-dedupe map) a transactional backend commit needs.
        """
        self.version += 1
        w = self.decay
        touched_nodes: set[str] = set()
        touched_sources: set[str] = set()
        touched_plans: set[str] = set()
        ingested: set[str] | None = None
        if execution.run_id is not None:
            ingested = self._run_ingested.get(execution.run_id)
            if ingested is None:
                while len(self._run_ingested) >= self._RUN_DEDUP_LIMIT:
                    self._run_ingested.pop(next(iter(self._run_ingested)))
                ingested = self._run_ingested[execution.run_id] = set()
        for obs in execution.ops:
            if ingested is not None:
                if obs.key in ingested:
                    continue
                ingested.add(obs.key)
            if obs.kind == "source":
                src = self.sources.get(obs.op_name)
                if src is None:
                    src = SourceObservation(name=obs.op_name)
                    self.sources[obs.op_name] = src
                first = src.runs == 0
                src.rows = _ema(src.rows, float(obs.rows_out), w, first)
                src.scan_bytes = _ema(src.scan_bytes, obs.disk_bytes, w, first)
                src.runs += 1
                src.last_seen = self.version
                touched_sources.add(obs.op_name)
                continue
            node = self.nodes.get(obs.key)
            if node is None:
                node = NodeStats(key=obs.key, op_name=obs.op_name, kind=obs.kind)
                self.nodes[obs.key] = node
            first = node.runs == 0
            node.rows_in = _ema(node.rows_in, float(obs.rows_in), w, first)
            node.rows_out = _ema(node.rows_out, float(obs.rows_out), w, first)
            node.udf_calls = _ema(node.udf_calls, float(obs.udf_calls), w, first)
            node.cpu_per_call = _ema(node.cpu_per_call, obs.cpu_per_call, w, first)
            node.runs += 1
            node.last_seen = self.version
            touched_nodes.add(obs.key)
        if not execution.partial:
            plan = self.plans.get(execution.plan_key)
            if plan is None:
                plan = PlanStats(key=execution.plan_key)
                self.plans[execution.plan_key] = plan
            first = plan.runs == 0
            plan.seconds = _ema(plan.seconds, execution.seconds, w, first)
            plan.runs += 1
            plan.last_seen = self.version
            if execution.wall_seconds > 0.0:
                first_wall = plan.wall_runs == 0
                plan.wall_seconds = _ema(
                    plan.wall_seconds, execution.wall_seconds, w, first_wall
                )
                plan.wall_runs += 1
            touched_plans.add(execution.plan_key)
        return CommitDelta(
            version=self.version,
            nodes={k: _node_row(self.nodes[k]) for k in touched_nodes},
            sources={n: _source_row(self.sources[n]) for n in touched_sources},
            plans={k: _plan_row(self.plans[k]) for k in touched_plans},
            run_ingested=self._run_ingested_payload(),
        )

    # -- backend synchronization -------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of the persisted state this process holds.

        Backends bump it once per committed ingest (by *any* process);
        comparing two readings is a constant-cost foreign-write probe.
        Backend-less stores expose their logical clock, which bumps
        identically — one per ingest.
        """
        if self.backend is None:
            return self.version
        return self._generation

    def sync(self) -> frozenset[str]:
        """Incorporate foreign commits; return the dirty operator set.

        Probes the backend's generation and, when another process has
        committed since this store last looked, reloads the persisted
        state and returns exactly the operator names whose
        :meth:`estimator_view` entry changed — the set
        :meth:`~repro.optimizer.memo.Memo.invalidate` needs to evict the
        stale memo spine.  Cheap no-op (empty set) when nothing foreign
        happened or no backend is attached.
        """
        if self.backend is None or self.backend.generation() == self._generation:
            return frozenset()
        with self.tracer.span("feedback.sync", category="feedback") as span:
            before = self.estimator_view()
            self._reload()
            after = self.estimator_view()
            dirty = frozenset(
                name
                for name in before.keys() | after.keys()
                if before.get(name) != after.get(name)
            )
        span.set(dirty=len(dirty))
        self.tracer.count("feedback.syncs")
        return dirty

    def _reload(self) -> None:
        """Replace all in-memory state with the backend's current state."""
        payload, generation = self.backend.load()
        self._generation = generation
        if payload is None:
            self.version = 0
            self.nodes.clear()
            self.sources.clear()
            self.plans.clear()
            self._run_ingested.clear()
            return
        other = StatisticsStore.from_dict(payload)
        self.decay = other.decay
        self.staleness_horizon = other.staleness_horizon
        self.version = other.version
        self.nodes = other.nodes
        self.sources = other.sources
        self.plans = other.plans
        self._run_ingested = other._run_ingested

    def _run_ingested_payload(self) -> list[tuple[str, list[str]]]:
        """Dedupe map as ordered pairs (insertion order is eviction order)."""
        return [
            (run_id, sorted(keys))
            for run_id, keys in self._run_ingested.items()
        ]

    # -- staleness ---------------------------------------------------------

    def _fresh(self, last_seen: int) -> bool:
        if self.staleness_horizon is None:
            return True
        return (self.version - last_seen) <= self.staleness_horizon

    # -- compatibility -----------------------------------------------------

    def check_compatible(self, catalog: Catalog) -> None:
        """Fail loudly when the store was learned on different data.

        Store keys are pure logical signatures, identical across datagen
        scales — warm-starting against rescaled or regenerated sources
        would silently apply wrong cardinalities and stale measured
        runtimes.  The observed per-source row counts act as the data
        fingerprint: any source known to both the store and the catalog
        must match exactly (observations on unchanged data are exact,
        EMA or not).  Sources only one side knows are ignored, so stores
        may accumulate several workloads.
        """
        for name, observed in self.sources.items():
            if not self._fresh(observed.last_seen) or observed.runs == 0:
                continue
            if not catalog.has_source(name):
                continue
            expected = catalog.stats(name).row_count
            if round(observed.rows) != expected:
                raise FeedbackError(
                    f"statistics store observed {round(observed.rows)} rows "
                    f"for source {name!r} but the catalog reports {expected}: "
                    "the store was learned on different data (other scale or "
                    "seed) — use a fresh store path"
                )

    # -- learned views -----------------------------------------------------

    def estimator_view(self) -> dict[str, tuple]:
        """Per-operator-name fingerprint of everything an estimator reads.

        For each name this folds in the learned :class:`Hints` (all
        fields — selectivity and distinct keys shape estimates, CPU cost
        shapes costs), the fresh per-signature observations *rooted* at
        the name (the estimator pins exactly the node whose signature
        matches, and every entry above that node contains its root
        operator), and the source row-count override.  Because a node's
        estimate and cost depend only on the operators inside its
        subtree, two store states whose views agree on a name produce
        bit-identical results for every sub-plan not containing that
        name — so the *diff* of this view between feedback rounds is
        exactly the dirty set for
        :meth:`~repro.optimizer.memo.Memo.invalidate`.  Staleness
        transitions are captured too: an entry crossing the horizon
        drops out of the view and flags its name.  (:meth:`sync` applies
        the same diff across *processes*, keyed off the backend's
        generation counter.)
        """
        view: dict[str, list] = {}
        for name, hint in self.learned_hints().items():
            view.setdefault(name, []).append(("hints", hint))
        for name, stats in self.source_overrides().items():
            view.setdefault(name, []).append(("source", stats.row_count))
        for key in sorted(self.nodes):
            node = self.node_stats(key)
            if node is not None:
                view.setdefault(node.op_name, []).append(
                    ("node", key, node.rows_out, node.udf_calls)
                )
        return {name: tuple(entries) for name, entries in view.items()}

    def node_stats(self, key: str) -> NodeStats | None:
        """Fresh per-signature statistics, or None if unknown/stale."""
        node = self.nodes.get(key)
        if node is None or not self._fresh(node.last_seen):
            return None
        return node

    def plan_seconds(self, key: str) -> float | None:
        """Fresh *modeled* runtime of a plan body, or None."""
        plan = self.plans.get(key)
        if plan is None or not self._fresh(plan.last_seen):
            return None
        return plan.seconds

    def plan_wall_seconds(self, key: str) -> float | None:
        """Fresh *measured wall-clock* runtime of a plan body, or None."""
        plan = self.plans.get(key)
        if plan is None or plan.wall_runs == 0 or not self._fresh(plan.last_seen):
            return None
        return plan.wall_seconds

    def learned_hints(self) -> dict[str, Hints]:
        """Per-operator hints aggregated across every observed position.

        Selectivity is the ratio of run-weighted emitted rows to UDF
        calls (a per-call average, exactly the paper's "Average Number of
        Records Emitted per UDF Call" — measured instead of guessed);
        distinct keys average the observed group counts of grouping
        operators.  Sorted by operator name for deterministic output.
        """
        rows: dict[str, float] = {}
        calls: dict[str, float] = {}
        cpu: dict[str, float] = {}
        keys: dict[str, float] = {}
        key_runs: dict[str, float] = {}
        runs: dict[str, float] = {}
        for node in self.nodes.values():
            if not self._fresh(node.last_seen):
                continue
            name = node.op_name
            weight = float(node.runs)
            rows[name] = rows.get(name, 0.0) + weight * node.rows_out
            calls[name] = calls.get(name, 0.0) + weight * node.udf_calls
            cpu[name] = cpu.get(name, 0.0) + weight * node.cpu_per_call
            runs[name] = runs.get(name, 0.0) + weight
            dk = node.distinct_keys
            if dk is not None:
                keys[name] = keys.get(name, 0.0) + weight * dk
                key_runs[name] = key_runs.get(name, 0.0) + weight
        out: dict[str, Hints] = {}
        for name in sorted(runs):
            selectivity = rows[name] / calls[name] if calls[name] > 0 else None
            distinct = (
                max(1, round(keys[name] / key_runs[name]))
                if key_runs.get(name)
                else None
            )
            out[name] = Hints(
                selectivity=selectivity,
                cpu_per_call=cpu[name] / runs[name],
                distinct_keys=distinct,
            )
        return out

    def source_overrides(self) -> dict[str, SourceStats]:
        """Observed per-source row counts as catalog-stat overrides."""
        out: dict[str, SourceStats] = {}
        for name in sorted(self.sources):
            src = self.sources[name]
            if not self._fresh(src.last_seen) or src.runs == 0:
                continue
            out[name] = SourceStats(row_count=max(0, round(src.rows)))
        return out

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT_VERSION,
            "decay": self.decay,
            "staleness_horizon": self.staleness_horizon,
            "version": self.version,
            "nodes": {
                k: _node_row(n) for k, n in sorted(self.nodes.items())
            },
            "sources": {
                k: _source_row(s) for k, s in sorted(self.sources.items())
            },
            "plans": {
                k: _plan_row(p) for k, p in sorted(self.plans.items())
            },
            "run_ingested": self._run_ingested_payload(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StatisticsStore":
        try:
            if payload["format"] not in (1, _FORMAT_VERSION):
                raise FeedbackError(
                    f"unsupported statistics-store format {payload['format']!r}"
                )
            store = cls(
                decay=payload["decay"],
                staleness_horizon=payload["staleness_horizon"],
                version=payload["version"],
            )
            for key, n in payload["nodes"].items():
                store.nodes[key] = NodeStats(key=key, **n)
            for name, s in payload["sources"].items():
                store.sources[name] = SourceObservation(name=name, **s)
            for key, p in payload["plans"].items():
                store.plans[key] = PlanStats(key=key, **p)
            for run_id, keys in payload.get("run_ingested", []):
                store._run_ingested[run_id] = set(keys)
        except (KeyError, TypeError, ValueError) as exc:
            raise FeedbackError(
                f"malformed statistics-store payload: {exc!r}"
            ) from None
        return store

    def save(self, path: str | Path) -> None:
        """Export the state as plain JSON (atomic temp-file + rename).

        A crash at any instant leaves either the complete previous file
        or the complete new one — never a half-written store.
        """
        write_json_atomic(path, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "StatisticsStore":
        return cls.from_dict(read_json_payload(path))

    @classmethod
    def open(
        cls,
        path: str | Path,
        backend: str | StatsBackend | None = None,
        **kwargs,
    ) -> "StatisticsStore":
        """Open a backend-attached store at ``path``.

        The backend is sniffed from the extension (``.sqlite`` /
        ``.sqlite3`` / ``.db`` → sqlite-WAL, anything else → JSON)
        unless ``backend`` names one explicitly (or passes an instance).
        Existing state is loaded (warm start, persisted policy config
        wins); a fresh path starts empty with ``kwargs`` as the policy
        config and is created immediately, so concurrent openers agree
        on the file from the start.
        """
        if isinstance(backend, str) or backend is None:
            backend = open_backend(path, backend)
        payload, generation = backend.load()
        if payload is not None:
            store = cls.from_dict(payload)
            store.backend = backend
            store._generation = generation
            return store
        store = cls(backend=backend, **kwargs)
        store._generation = generation
        try:
            store._generation = backend.commit(
                store.to_dict(), CommitDelta(version=0), generation
            )
        except BackendConflict:
            # Another process created the store first: adopt its state.
            store._reload()
        return store

    def close(self) -> None:
        """Release the backend's resources (idempotent).

        Long-lived multi-tenant processes (the planning server) open one
        backend per tenant; evicting a tenant must close its sqlite
        connection instead of waiting for garbage collection.  Backends
        without a ``close`` (JSON) and in-memory stores are no-ops.
        """
        backend = self.backend
        if backend is not None:
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()

    def migrate_to(
        self, path: str | Path, backend: str | None = None
    ) -> "StatisticsStore":
        """Copy the full current state into a (new) backend at ``path``.

        The write is one transactional commit on the destination (all
        rows as the delta, so incremental backends materialize every
        table).  Returns the freshly opened destination store — callers
        can diff ``estimator_view()`` against the source to verify the
        migration was lossless.
        """
        destination = open_backend(path, backend)
        payload = self.to_dict()
        full = CommitDelta(
            version=self.version,
            nodes=payload["nodes"],
            sources=payload["sources"],
            plans=payload["plans"],
            run_ingested=self._run_ingested_payload(),
        )
        _, generation = destination.load()
        try:
            destination.commit(payload, full, generation)
        except BackendConflict:
            raise FeedbackError(
                f"destination store {str(path)!r} changed mid-migration — "
                "stop its writers and retry"
            ) from None
        return StatisticsStore.open(path, backend=destination)


def _node_row(n: NodeStats) -> dict:
    return {
        "op_name": n.op_name,
        "kind": n.kind,
        "rows_in": n.rows_in,
        "rows_out": n.rows_out,
        "udf_calls": n.udf_calls,
        "cpu_per_call": n.cpu_per_call,
        "runs": n.runs,
        "last_seen": n.last_seen,
    }


def _source_row(s: SourceObservation) -> dict:
    return {
        "rows": s.rows,
        "scan_bytes": s.scan_bytes,
        "runs": s.runs,
        "last_seen": s.last_seen,
    }


def _plan_row(p: PlanStats) -> dict:
    return {
        "seconds": p.seconds,
        "runs": p.runs,
        "last_seen": p.last_seen,
        "wall_seconds": p.wall_seconds,
        "wall_runs": p.wall_runs,
    }
