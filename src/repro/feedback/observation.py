"""Runtime observations: what the engine actually saw per operator.

The engine's :class:`~repro.engine.metrics.OpMetrics` already measure the
true per-operator cardinalities, UDF call counts, and IO of every
execution — and the seed system threw them away after reporting.  The
:class:`ObservationCollector` turns each execution into a set of
:class:`OpObservation` records keyed by the *logical* plan signature of
each operator's node (:func:`repro.core.plan.signature_key`), so an
observation made while executing one physical plan transfers to every
physically different plan that contains the same logical sub-flow —
across executions, optimizer rounds, and (via the JSON statistics store)
processes.

Only physical-plan-invariant quantities are used for learning:
``rows_out`` and ``udf_calls`` are properties of the logical operator
over its logical input (identical whether a join broadcast or
repartitioned), whereas ``rows_in`` counts post-ship records and is
recorded for diagnostics only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
)
from ..core.plan import Node, resolved_signature_key
from ..engine.executor import StageRun
from ..engine.metrics import ExecutionReport, OpMetrics
from ..optimizer.physical import PhysNode

#: Operator kinds whose ``udf_calls`` count key groups — for these, one
#: observation also yields a distinct-key count.
GROUPING_KINDS = frozenset({"reduce", "cogroup"})

_KIND_OF = {
    Source: "source",
    Sink: "sink",
    MapOp: "map",
    ReduceOp: "reduce",
    MatchOp: "match",
    CrossOp: "cross",
    CoGroupOp: "cogroup",
}


@dataclass(frozen=True, slots=True)
class OpObservation:
    """One operator's measured behavior in one execution."""

    key: str  # signature_key of the operator's logical node
    op_name: str
    kind: str  # "source" | "map" | "reduce" | "match" | "cross" | "cogroup"
    rows_in: int
    rows_out: int
    udf_calls: int
    cpu_per_call: float  # measured cost units per UDF call
    disk_bytes: float  # scan volume for sources (learned widths)

    @property
    def selectivity(self) -> float | None:
        """Observed records emitted per UDF call (None without calls)."""
        if self.udf_calls <= 0:
            return None
        return self.rows_out / self.udf_calls

    @property
    def distinct_keys(self) -> int | None:
        """Observed key-group count for grouping operators."""
        if self.kind in GROUPING_KINDS:
            return self.udf_calls
        return None


@dataclass(frozen=True, slots=True)
class ExecutionObservation:
    """Everything observed while executing one physical plan.

    ``run_id`` ties observations of the *same* engine execution together:
    a staged execution emits one partial observation per completed stage
    (ingested in flight) plus the usual whole-run observation at the end,
    and the statistics store counts each (signature, run) only once.
    ``partial`` marks stage deltas and switched hybrid runs, whose
    ``seconds`` are not a whole-plan runtime and must not enter the
    per-plan measured-runtime statistics.
    """

    plan_key: str  # signature_key of the executed plan's logical body
    seconds: float  # measured (simulated) runtime of the whole plan
    ops: tuple[OpObservation, ...]
    run_id: str | None = None  # shared by all observations of one execution
    partial: bool = False  # a stage delta / hybrid run, not a full plan
    # Measured wall-clock of the whole plan (0 = unknown).  Excluded from
    # equality: wall time is hardware noise, not part of the logical
    # observation (engine-mode parity compares observations directly).
    wall_seconds: float = field(default=0.0, compare=False)


def observe_plan(
    plan: PhysNode,
    report: ExecutionReport,
    true_costs: dict[str, float] | None = None,
    run_id: str | None = None,
    partial: bool = False,
    wall_seconds: float = 0.0,
) -> ExecutionObservation:
    """Pair an execution report with the plan's logical structure.

    Walks the physical plan once to map each (unique) operator name to
    its logical node, then lifts every reported :class:`OpMetrics` into a
    signature-keyed :class:`OpObservation`.  Works identically for
    streaming and materializing executions and for cache-replayed
    subtrees — the report is the single source of truth.
    """
    true_costs = true_costs or {}
    logical = {}
    stack = [plan]
    while stack:
        node = stack.pop()
        logical[node.logical.op.name] = node.logical
        stack.extend(node.children)
    ops = _lift_ops(logical, report.per_op, true_costs)
    # The sink contributes no metrics; key the plan by its logical body
    # (sink stripped) so optimizer-ranked bodies and executed plans agree.
    body = plan.logical
    if isinstance(body.op, Sink):
        body = body.only_child
    return ExecutionObservation(
        plan_key=resolved_signature_key(body),
        seconds=report.seconds,
        ops=tuple(ops),
        run_id=run_id,
        partial=partial,
        wall_seconds=wall_seconds,
    )


def _lift_ops(
    logical: dict[str, Node],
    per_op: list[OpMetrics] | tuple[OpMetrics, ...],
    true_costs: dict[str, float],
) -> list[OpObservation]:
    """Lift metrics rows into signature-keyed observations.

    Keys use :func:`~repro.core.plan.resolved_signature_key`, so a suffix
    node executed over a materialized stage boundary is recorded under the
    same key as the equivalent sub-flow of an ordinary plan (identical to
    the plain signature key when no boundaries are involved).
    """
    ops = []
    for metrics in per_op:
        node = logical.get(metrics.name)
        if node is None:  # a metrics row for an op outside this plan
            continue
        kind = _KIND_OF.get(type(node.op))
        if kind is None or kind == "sink":
            continue
        ops.append(
            OpObservation(
                key=resolved_signature_key(node),
                op_name=metrics.name,
                kind=kind,
                rows_in=metrics.rows_in,
                rows_out=metrics.rows_out,
                udf_calls=metrics.udf_calls,
                cpu_per_call=true_costs.get(metrics.name, 1.0),
                disk_bytes=metrics.disk_bytes if kind == "source" else 0.0,
            )
        )
    return ops


def observe_stage(
    stage: StageRun,
    true_costs: dict[str, float] | None = None,
    run_id: str | None = None,
) -> ExecutionObservation:
    """Partial observation of one executed pipeline stage.

    Covers exactly the stage's operators (breaker + fused chain) with the
    metrics that stage reported; ``seconds`` is the stage's elapsed
    simulated time, and the observation is marked ``partial`` so it never
    enters whole-plan runtime statistics.  This is what mid-query
    re-optimization ingests at each stage boundary.
    """
    true_costs = true_costs or {}
    logical = {node.logical.op.name: node.logical for node in stage.nodes}
    ops = _lift_ops(logical, stage.metrics, true_costs)
    top = stage.top.logical
    if isinstance(top.op, Sink):
        top = top.only_child
    return ExecutionObservation(
        plan_key=resolved_signature_key(top),
        seconds=sum(m.seconds for m in stage.metrics),
        ops=tuple(ops),
        run_id=run_id,
        partial=True,
    )


@dataclass(slots=True)
class ObservationCollector:
    """Accumulates per-execution observations for the statistics store.

    Attach to an engine (``Engine(collector=...)``); the engine calls
    :meth:`observe_execution` once per ``execute()`` with the finished
    report, covering both streaming and materializing modes.
    """

    executions: list[ExecutionObservation] = field(default_factory=list)

    def observe_execution(
        self,
        plan: PhysNode,
        report: ExecutionReport,
        true_costs: dict[str, float] | None = None,
        run_id: str | None = None,
        partial: bool = False,
        wall_seconds: float = 0.0,
    ) -> ExecutionObservation:
        observation = observe_plan(
            plan, report, true_costs, run_id, partial, wall_seconds
        )
        self.executions.append(observation)
        return observation

    def observe_stage(
        self,
        stage: StageRun,
        true_costs: dict[str, float] | None = None,
        run_id: str | None = None,
    ) -> ExecutionObservation:
        """Record a partial observation of one executed pipeline stage."""
        observation = observe_stage(stage, true_costs, run_id)
        self.executions.append(observation)
        return observation

    def op_observations(self) -> dict[str, OpObservation]:
        """Latest observation per logical-node signature key."""
        out: dict[str, OpObservation] = {}
        for execution in self.executions:
            for op in execution.ops:
                out[op.key] = op
        return out

    def clear(self) -> None:
        self.executions.clear()
