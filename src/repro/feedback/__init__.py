"""Adaptive feedback: runtime statistics, learned hints, re-optimization.

The counterpart to the paper's *static* opening of UDF black boxes: the
engine already measures every operator's true cardinalities while
executing — this subsystem closes the loop by collecting those
measurements (:mod:`.observation`), aggregating them across runs with
decay and JSON persistence (:mod:`.store`), preferring them over hinted
defaults during estimation (:mod:`.estimator`), and driving an
optimize -> execute -> learn -> re-optimize fixed-point loop
(:mod:`.adaptive`).
"""

from .adaptive import (
    AdaptiveOptimizer,
    AdaptiveReport,
    AdaptiveRound,
    ExecutedRound,
)
from .estimator import FeedbackEstimator, QErrorReport, merge_hints, qerror, qerror_report
from .midquery import (
    DEFAULT_SWITCH_THRESHOLD,
    MidQueryExperiment,
    MidQueryReoptimizer,
    SwitchDecision,
    run_midquery,
)
from .observation import (
    ExecutionObservation,
    ObservationCollector,
    OpObservation,
    observe_plan,
    observe_stage,
)
from .store import NodeStats, PlanStats, SourceObservation, StatisticsStore

__all__ = [
    "AdaptiveOptimizer",
    "AdaptiveReport",
    "AdaptiveRound",
    "DEFAULT_SWITCH_THRESHOLD",
    "ExecutedRound",
    "ExecutionObservation",
    "FeedbackEstimator",
    "MidQueryExperiment",
    "MidQueryReoptimizer",
    "NodeStats",
    "ObservationCollector",
    "OpObservation",
    "PlanStats",
    "QErrorReport",
    "SourceObservation",
    "StatisticsStore",
    "SwitchDecision",
    "merge_hints",
    "observe_plan",
    "observe_stage",
    "qerror",
    "qerror_report",
    "run_midquery",
]
