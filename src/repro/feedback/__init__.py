"""Adaptive feedback: runtime statistics, learned hints, re-optimization.

The counterpart to the paper's *static* opening of UDF black boxes: the
engine already measures every operator's true cardinalities while
executing — this subsystem closes the loop by collecting those
measurements (:mod:`.observation`), aggregating them across runs with
decay over a pluggable transactional persistence layer (:mod:`.store`
policy over :mod:`.backends` — crash-safe JSON or sqlite-WAL),
preferring them over hinted defaults during estimation
(:mod:`.estimator`), and driving an optimize -> execute -> learn ->
re-optimize fixed-point loop (:mod:`.adaptive`).
"""

from .adaptive import (
    AdaptiveOptimizer,
    AdaptiveReport,
    AdaptiveRound,
    ExecutedRound,
)
from .backends import (
    BackendConflict,
    CommitDelta,
    JsonBackend,
    SqliteBackend,
    StatsBackend,
    open_backend,
    sniff_backend,
)
from .estimator import FeedbackEstimator, QErrorReport, merge_hints, qerror, qerror_report
from .midquery import (
    DEFAULT_SWITCH_THRESHOLD,
    MidQueryExperiment,
    MidQueryReoptimizer,
    SwitchDecision,
    run_midquery,
)
from .observation import (
    ExecutionObservation,
    ObservationCollector,
    OpObservation,
    observe_plan,
    observe_stage,
)
from .store import NodeStats, PlanStats, SourceObservation, StatisticsStore

__all__ = [
    "AdaptiveOptimizer",
    "AdaptiveReport",
    "AdaptiveRound",
    "BackendConflict",
    "CommitDelta",
    "DEFAULT_SWITCH_THRESHOLD",
    "ExecutedRound",
    "ExecutionObservation",
    "FeedbackEstimator",
    "JsonBackend",
    "MidQueryExperiment",
    "MidQueryReoptimizer",
    "NodeStats",
    "ObservationCollector",
    "OpObservation",
    "PlanStats",
    "QErrorReport",
    "SourceObservation",
    "SqliteBackend",
    "StatisticsStore",
    "StatsBackend",
    "SwitchDecision",
    "merge_hints",
    "observe_plan",
    "observe_stage",
    "open_backend",
    "qerror",
    "qerror_report",
    "run_midquery",
    "sniff_backend",
]
