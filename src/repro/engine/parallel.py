"""Partition-parallel stage execution over a fork-based worker pool.

The streaming engine's unit of work is one *partition* of one pipeline
stage: a fused Map chain streams each partition independently, and every
local strategy (reduce, join, cross, co-group) evaluates partition ``i``
of its shipped inputs without looking at partition ``j``.  With
``Engine(engine_jobs=N)`` those per-partition evaluations run
concurrently across ``N`` forked worker processes.

Worker discipline (mirroring :mod:`repro.optimizer.parallel`)
-------------------------------------------------------------
Workers are **forked**, never spawned: each parallel region publishes its
state — the operators, the input partitions, the batch size, and an
optional scatter spec — in a module global and forks the pool *after*
that state exists, so everything is inherited by address.  Operators and
UDF callables never cross the process boundary; the only things shipped
back are primitives: output records (plain ``Attribute``-keyed dicts),
integer row/group/pair counts, and per-partition byte totals.

Determinism rule
----------------
A worker computes exactly what the serial engine would compute for its
partition — the same helper functions run on the same rows — and ships
back the per-partition *facts* (rows, counts, byte totals).  All metric
float arithmetic stays in the parent and is applied in partition-index
order, identical expression for expression to the serial code, so
records, per-op :class:`~repro.engine.metrics.OpMetrics`, and modeled
seconds are bit-identical to ``engine_jobs=1`` (pinned by
``tests/engine/test_parallel_parity.py``).

Breaker -> ship streaming
-------------------------
When a stage's output is consumed through a hash-partition ship, the
consumer passes a *scatter spec* down to the producing region: each
worker scatters its finished partition straight into the ship's target
buckets (counting boundary crossings and pre-scatter bytes as it goes)
and the parent concatenates buckets in origin order.  The fully buffered
pre-ship output partitions never exist in the parent, and the shuffle's
cost accounting is reconstructed from the shipped primitives, equal to
the serial ``repartition_by_key`` path.

Errors raised inside a pooled partition are marshalled back as
primitives (operator name, partition index, formatted traceback) and
re-raised in the parent as :class:`~repro.core.errors.ExecutionError` —
a UDF bug never surfaces as a bare ``BrokenProcessPool``.

On platforms without ``fork`` the engine falls back to serial execution
(``available()`` gates the dispatch, with a warning at construction).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..core.errors import ExecutionError
from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    ReduceOp,
)
from ..core.record import RawRecord, record_bytes
from ..core.reference import (
    apply_cogroup,
    apply_cross,
    apply_map,
    apply_match,
    apply_reduce,
    group_by,
)
from ..obs.tracer import clock
from .partition import Partitions, hash_key

#: Fork-inherited region state; layout depends on the worker function.
_REGION: tuple | None = None

#: A scatter spec: (ship key attributes, target partition count).
ScatterSpec = tuple


def available() -> bool:
    """Partition-parallel execution needs fork-style process inheritance."""
    return "fork" in multiprocessing.get_all_start_methods()


def bytes_of(rows: list[RawRecord]) -> float:
    """Byte total of one partition, identical to the serial accounting."""
    return float(sum(record_bytes(r) for r in rows))


@dataclass(slots=True)
class ScatteredOutput:
    """A stage output the producing workers hash-scattered into ship buckets.

    Carries everything the consumer's ship accounting needs — boundary
    crossings and per-origin pre-scatter byte totals — so the consumer
    charges the shuffle without ever holding the unscattered partitions.
    """

    parts: Partitions  # post-scatter target partitions, origin order
    moved: int  # records that crossed instance boundaries
    rows: int  # total records produced (pre-scatter)
    pre_bytes: list[float]  # per-origin byte totals, origin order


# -- shared per-partition evaluation (serial path and workers) ---------------


def run_chain_partition(
    ops: list[tuple[str, MapOp]],
    rows: list[RawRecord],
    batch: int,
    active: list | None = None,
) -> tuple[list[RawRecord], list[int], list[int]]:
    """Stream one partition through a fused Map chain in bounded batches.

    Returns the collected output rows plus per-operator input/output row
    counts — the integer facts the chain's metric arithmetic consumes.
    ``active`` (a one-element list) tracks the operator currently
    executing, for error attribution inside pooled workers.
    """
    count = len(ops)
    in_rows = [0] * count
    out_rows = [0] * count
    collected: list[RawRecord] = []
    for start in range(0, len(rows), batch):
        cur = rows[start : start + batch]
        for k, (name, op) in enumerate(ops):
            if not cur:
                break
            if active is not None:
                active[0] = name
            in_rows[k] += len(cur)
            cur = apply_map(op, cur)
            out_rows[k] += len(cur)
        collected.extend(cur)
    return collected, in_rows, out_rows


def eval_local_partition(
    op, rows_by_input: tuple[list[RawRecord], ...], need_bytes: bool
) -> tuple[list[RawRecord], tuple]:
    """Evaluate one partition of a local strategy.

    Returns the output rows plus the auxiliary scalars the parent's
    metric arithmetic needs for this partition (group/key counts, and —
    for Reduce without precomputed sizes — the partition's byte total).
    """
    if isinstance(op, MapOp):
        (rows,) = rows_by_input
        return apply_map(op, rows), ()
    if isinstance(op, ReduceOp):
        (rows,) = rows_by_input
        groups = len(group_by(rows, op.key_attr_tuple())) if rows else 0
        result = apply_reduce(op, rows)
        return result, (groups, bytes_of(rows) if need_bytes else None)
    if isinstance(op, MatchOp):
        l_rows, r_rows = rows_by_input
        return apply_match(op, l_rows, r_rows), ()
    if isinstance(op, CrossOp):
        l_rows, r_rows = rows_by_input
        return apply_cross(op, l_rows, r_rows), ()
    if isinstance(op, CoGroupOp):
        l_rows, r_rows = rows_by_input
        result = apply_cogroup(op, l_rows, r_rows)
        keys = len(
            set(group_by(l_rows, op.left_key_attrs()))
            | set(group_by(r_rows, op.right_key_attrs()))
        )
        return result, (keys,)
    raise ExecutionError(f"cannot execute {op!r}")


# -- scatter packing ----------------------------------------------------------


def scatter_partition(
    rows: list[RawRecord], origin: int, scatter: ScatterSpec | None
):
    """Pack one finished partition for shipping back to the parent.

    Without a scatter spec the rows ship back as-is.  With one, the rows
    are hash-scattered into the ship's target buckets exactly as
    ``repartition_by_key`` would route them, and the pack carries the
    primitives the parent's ship accounting needs: boundary crossings
    and the pre-scatter byte total.
    """
    if scatter is None:
        return rows, None
    key, degree = scatter
    buckets: Partitions = [[] for _ in range(degree)]
    moved = 0
    for row in rows:
        target = hash_key(row, key) % degree
        if target != origin:
            moved += 1
        buckets[target].append(row)
    return buckets, (moved, bytes_of(rows), len(rows))


def assemble(packed, scatter: ScatterSpec | None):
    """Merge per-partition packs (in origin order) into the region output.

    Plain packs concatenate into ordinary partitions; scattered packs
    concatenate bucket-by-bucket in origin order — the exact row order
    ``repartition_by_key`` produces — into a :class:`ScatteredOutput`.
    """
    if scatter is None:
        return [rows for rows, _ in packed]
    _, degree = scatter
    parts: Partitions = [[] for _ in range(degree)]
    moved = 0
    rows_total = 0
    pre_bytes: list[float] = []
    for buckets, (part_moved, part_bytes, part_rows) in packed:
        for target in range(degree):
            parts[target].extend(buckets[target])
        moved += part_moved
        rows_total += part_rows
        pre_bytes.append(part_bytes)
    return ScatteredOutput(
        parts=parts, moved=moved, rows=rows_total, pre_bytes=pre_bytes
    )


# -- worker bodies ------------------------------------------------------------


def _error_payload(op_name: str, index: int, exc: Exception) -> tuple:
    return (
        "error",
        op_name,
        index,
        f"{type(exc).__name__}: {exc}",
        traceback.format_exc(),
    )


def _chain_worker(index: int) -> tuple:
    ops, base, batch, scatter, trace = _REGION
    active = [ops[0][0]]
    start = clock() if trace else 0.0
    try:
        collected, in_rows, out_rows = run_chain_partition(
            ops, base[index], batch, active
        )
        pack = scatter_partition(collected, index, scatter)
    except Exception as exc:
        return _error_payload(active[0], index, exc)
    # Span primitive for the parent's tracer: CLOCK_MONOTONIC readings
    # are comparable across fork on Linux, so raw (start, end) plus the
    # worker pid is everything the parent needs to place this partition
    # on the worker's own timeline lane.  Never a Span object — workers
    # ship primitives only.
    span = (start, clock(), os.getpid()) if trace else None
    return ("ok", pack, in_rows, out_rows, span)


def _local_worker(index: int) -> tuple:
    op, inputs, need_bytes, scatter, trace = _REGION
    start = clock() if trace else 0.0
    try:
        result, aux = eval_local_partition(
            op, tuple(inp[index] for inp in inputs), need_bytes
        )
        pack = scatter_partition(result, index, scatter)
    except Exception as exc:
        return _error_payload(op.name, index, exc)
    span = (start, clock(), os.getpid()) if trace else None
    return ("ok", pack, aux, span)


# -- the pool -----------------------------------------------------------------


def _run_region(
    state: tuple, worker, count: int, jobs: int, label: str
) -> list[tuple]:
    """Fork a pool over ``count`` partitions; return payloads in order.

    The pool is created *after* the region state is published, so workers
    inherit operators and input partitions by address; it is torn down
    when the region completes.  Worker-reported errors re-raise as
    :class:`ExecutionError`; a worker dying without a Python exception
    (OOM, interpreter crash) surfaces the same way instead of a bare
    ``BrokenProcessPool``.
    """
    global _REGION
    _REGION = state
    try:
        fork = multiprocessing.get_context("fork")
        workers = max(1, min(jobs, count))
        with ProcessPoolExecutor(max_workers=workers, mp_context=fork) as pool:
            payloads = list(pool.map(worker, range(count)))
    except BrokenProcessPool as exc:
        raise ExecutionError(
            f"worker pool died while executing {label}: a pooled partition "
            "terminated abnormally (out of memory or interpreter crash) "
            "without raising a Python exception"
        ) from exc
    finally:
        _REGION = None
    for payload in payloads:
        if payload[0] == "error":
            _, op_name, index, message, tb = payload
            raise ExecutionError(
                f"operator {op_name!r} failed in partition {index} of a "
                f"pooled stage: {message}\n"
                f"--- worker traceback ---\n{tb}"
            )
    return payloads


def run_chain(
    ops: list[tuple[str, MapOp]],
    base: Partitions,
    batch: int,
    scatter: ScatterSpec | None,
    jobs: int,
    trace: bool = False,
):
    """Run a fused Map chain's partitions across the worker pool.

    Returns ``(output, in_rows, out_rows, spans)`` where the count
    arrays are indexed ``[operator][partition]`` exactly as the serial
    path builds them, ``output`` is partitions or a
    :class:`ScatteredOutput`, and ``spans`` holds one ``(op_name,
    partition, start, end, pid)`` wall-clock primitive per partition
    when ``trace`` is set (empty otherwise).
    """
    count = len(base)
    payloads = _run_region(
        (ops, base, batch, scatter, trace),
        _chain_worker,
        count,
        jobs,
        f"fused chain starting at operator {ops[0][0]!r}",
    )
    in_rows = [[0] * count for _ in ops]
    out_rows = [[0] * count for _ in ops]
    packed = []
    spans = []
    for i, (_, pack, part_in, part_out, span) in enumerate(payloads):
        for k in range(len(ops)):
            in_rows[k][i] = part_in[k]
            out_rows[k][i] = part_out[k]
        packed.append(pack)
        if span is not None:
            spans.append((ops[0][0], i, *span))
    return assemble(packed, scatter), in_rows, out_rows, spans


def run_local(
    op,
    inputs: tuple[Partitions, ...],
    need_bytes: bool,
    scatter: ScatterSpec | None,
    jobs: int,
    degree: int,
    trace: bool = False,
):
    """Run one local strategy's partitions across the worker pool.

    Returns ``(output, evaled, spans)`` where ``evaled[i]`` is
    ``(result_len, aux)`` for partition ``i`` — the same facts the
    serial evaluation loop hands the metric arithmetic — and ``spans``
    carries per-partition wall-clock primitives as in :func:`run_chain`.
    """
    payloads = _run_region(
        (op, inputs, need_bytes, scatter, trace),
        _local_worker,
        degree,
        jobs,
        f"operator {op.name!r}",
    )
    packed = []
    evaled = []
    spans = []
    for i, (_, pack, aux, span) in enumerate(payloads):
        rows_or_buckets, ship_info = pack
        length = ship_info[2] if ship_info is not None else len(rows_or_buckets)
        evaled.append((length, aux))
        packed.append(pack)
        if span is not None:
            spans.append((op.name, i, *span))
    return assemble(packed, scatter), evaled, spans
