"""Simulated parallel execution engine (the Nephele substitute)."""

from .executor import Engine, ExecutionResult, StageRun, execute_physical
from .metrics import ExecutionReport, OpMetrics
from .partition import (
    broadcast,
    gather,
    hash_key,
    repartition_by_key,
    round_robin,
    stable_hash,
)

__all__ = [
    "Engine",
    "ExecutionReport",
    "ExecutionResult",
    "OpMetrics",
    "StageRun",
    "broadcast",
    "execute_physical",
    "gather",
    "hash_key",
    "repartition_by_key",
    "round_robin",
    "stable_hash",
]
