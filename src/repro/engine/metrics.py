"""Execution metrics and the simulated-time report.

One :class:`OpMetrics` is reported per *logical* operator regardless of
how the engine schedules it: operators fused into one streaming pipeline
stage still report individually, with the same values the materializing
path derives from fully built partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class OpMetrics:
    """Measured behavior of one physical operator."""

    name: str
    strategy: str = ""
    rows_in: int = 0
    rows_out: int = 0
    udf_calls: int = 0
    net_bytes: float = 0.0
    disk_bytes: float = 0.0
    cpu_units_max: float = 0.0  # max over instances (makespan driver)
    cpu_units_total: float = 0.0
    ship_seconds: float = 0.0
    local_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return self.ship_seconds + self.local_seconds


@dataclass(slots=True)
class ExecutionReport:
    """Simulated execution outcome of one plan."""

    per_op: list[OpMetrics] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return sum(m.seconds for m in self.per_op)

    @property
    def net_bytes(self) -> float:
        return sum(m.net_bytes for m in self.per_op)

    @property
    def disk_bytes(self) -> float:
        return sum(m.disk_bytes for m in self.per_op)

    @property
    def udf_calls(self) -> int:
        return sum(m.udf_calls for m in self.per_op)

    @property
    def rows_scanned(self) -> int:
        """Rows read by all source scans — the plan's input volume."""
        return sum(m.rows_out for m in self.per_op if m.strategy == "scan")

    def op_by_name(self) -> dict[str, OpMetrics]:
        """Per-operator metrics keyed by operator name.

        Plan validation guarantees unique operator names within one plan,
        so the mapping is lossless for a single execution's report.
        """
        return {m.name: m for m in self.per_op}

    def minutes_label(self) -> str:
        """Human label like the paper's bar annotations, e.g. ``6:23 min``."""
        total = self.seconds
        minutes = int(total // 60)
        seconds = int(round(total - minutes * 60))
        if seconds == 60:
            minutes, seconds = minutes + 1, 0
        return f"{minutes}:{seconds:02d} min"

    def describe(self) -> str:
        lines = [f"total simulated time: {self.minutes_label()}"]
        for m in self.per_op:
            lines.append(
                f"  {m.name:<28} {m.strategy:<18} rows_out={m.rows_out:<9} "
                f"net={m.net_bytes / 1e6:8.2f}MB  time={m.seconds:8.3f}s"
            )
        return "\n".join(lines)
