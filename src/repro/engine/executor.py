"""The simulated shared-nothing execution engine (Nephele substitute).

Executes a physical plan over ``degree`` logical instances.  Data really
is partitioned, shipped, joined, and grouped partition-by-partition — the
output is exact — while a deterministic time model charges every byte
shipped and every UDF call, producing the simulated runtimes the
experiments report.

Estimated costs (optimizer) and measured times (engine) share
:class:`~repro.optimizer.cost.CostParams`; they diverge only through
cardinality-estimation error, hint error, and skew — the same reasons the
paper's estimates diverge from its cluster runtimes.

Pipeline-stage model
--------------------
The default (streaming) execution path runs the plan as a DAG of
*pipeline stages* (see :meth:`PhysNode.pipeline_stages`): each stage is a
pipeline breaker — a source scan, an operator behind a non-forward ship,
or a blocking local strategy (sort-based Reduce/CoGroup, hash-join build,
nested-loop cross) — plus the maximal chain of forward-shipped Map
operators (and the collecting Sink) fused on top of it.  A fused chain
streams each partition through every Map in bounded record batches
(``stream_batch_rows``), so the intermediate partition lists the
materializing engine allocates per operator never exist: peak transient
memory is O(batch), not O(dataset), which is what lets much larger
datagen scales run in the same footprint.

Blocking stages still buffer whole partitions; when a blocking stage's
per-instance share exceeds ``CostParams.memory_per_instance``, the spill
to disk is charged via ``CostParams.spill_bytes`` exactly as before.  The
time model is bit-identical between the streaming and materializing
paths: per-operator :class:`OpMetrics` are reported per logical operator
in the same order with the same float arithmetic, only the intermediate
buffering differs.  ``streaming=False`` selects the seed materializing
path, kept as the parity reference.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass

from ..core.errors import ExecutionConfigError, ExecutionError
from ..core.operators import (
    CoGroupOp,
    CrossOp,
    MapOp,
    MatchOp,
    MaterializedSource,
    ReduceOp,
    Sink,
    Source,
)
from ..core.record import RawRecord, record_bytes
from ..obs.tracer import NOOP_TRACER, clock
from ..optimizer.cost import CostParams
from ..optimizer.physical import (
    PhysNode,
    Ship,
    ShipKind,
    pipelineable,
)
from . import parallel as _pool
from .metrics import ExecutionReport, OpMetrics
from .parallel import ScatteredOutput, ScatterSpec
from .partition import (
    Partitions,
    broadcast,
    empty_partitions,
    gather,
    repartition_by_key,
    round_robin,
)

SourceData = dict[str, list[RawRecord]]

_run_seq = 0


def _next_run_id() -> str:
    """Globally unique id for one engine execution.

    Ties a staged execution's in-flight stage-delta observations to its
    final whole-run observation, so the statistics store can refuse to
    count the same (signature, run) twice.  The pid qualifier keeps ids
    from concurrent processes distinct — the dedupe map is persisted by
    backend-attached stores, so a collision across writers would
    silently drop another process's observations."""
    global _run_seq
    _run_seq += 1
    return f"run-{os.getpid()}-{_run_seq}"


@dataclass(slots=True)
class ExecutionResult:
    records: list[RawRecord]
    report: ExecutionReport
    wall_seconds: float = 0.0  # measured wall-clock of the whole execution

    @property
    def seconds(self) -> float:
        return self.report.seconds


@dataclass(slots=True)
class StageRun:
    """One executed pipeline stage of a staged execution."""

    index: int  # 0-based position in execution order, across switches
    nodes: tuple[PhysNode, ...]  # (breaker, *fused chain), upstream-first
    metrics: tuple[OpMetrics, ...]  # this stage's slice of the report
    output: Partitions  # the stage's materialized output
    wall_seconds: float = 0.0  # measured wall-clock, not modeled time

    @property
    def top(self) -> PhysNode:
        return self.nodes[-1]

    @property
    def rows_out(self) -> int:
        return sum(len(p) for p in self.output)


def _bytes_of(rows: list[RawRecord]) -> float:
    return float(sum(record_bytes(r) for r in rows))


def _part_bytes(parts: Partitions) -> list[float]:
    """Per-partition byte totals, computed in one walk over the records."""
    return [_bytes_of(p) for p in parts]


class Engine:
    """Executes physical plans on partitioned in-memory data.

    With ``streaming`` (the default) fused Map chains are executed as
    per-partition batched pipelines and intermediate partition lists are
    never materialized; ``streaming=False`` runs the materializing
    reference path.  Records and simulated times are bit-identical
    between the two.

    With ``reuse_subtree_results`` the engine memoizes the (deterministic)
    outcome of every executed physical subtree — output partitions plus
    the per-operator metrics — and replays it when another plan of the
    same experiment contains an identical subtree over the same source
    data.  The shared Volcano memo in the optimizer hands structurally
    shared sub-plans to the engine as the *same* ``PhysNode`` objects, so
    the rank-picked plans of one experiment hit this cache heavily.  In
    streaming mode the cache keys on pipeline-stage boundaries (breakers
    and the chains fused onto them) instead of every node.  Reported
    records and simulated times are bit-identical either way.
    """

    def __init__(
        self,
        params: CostParams | None = None,
        true_costs: dict[str, float] | None = None,
        reuse_subtree_results: bool = False,
        streaming: bool = True,
        stream_batch_rows: int = 1024,
        collector: "ObservationCollector | None" = None,
        engine_jobs: int = 1,
        tracer=None,
    ) -> None:
        self.params = params or CostParams()
        self.true_costs = true_costs or {}
        self.reuse_subtree_results = reuse_subtree_results
        self.streaming = streaming
        self.stream_batch_rows = max(1, stream_batch_rows)
        if (
            not isinstance(engine_jobs, int)
            or isinstance(engine_jobs, bool)
            or engine_jobs < 1
        ):
            raise ExecutionConfigError(
                f"engine_jobs must be an integer >= 1, got {engine_jobs!r}"
            )
        if engine_jobs > 1 and not _pool.available():
            warnings.warn(
                f"engine_jobs={engine_jobs} requires fork-based process "
                "pools, which this platform does not provide; executing "
                "serially instead",
                RuntimeWarning,
                stacklevel=2,
            )
            engine_jobs = 1
        self.engine_jobs = engine_jobs
        # Wall-clock observability (repro.obs).  Tracing reads the wall
        # clock only: records, OpMetrics, and modeled seconds are
        # bit-identical with the tracer on or off (pinned by the tracing
        # parity suite).  Default is the shared near-zero-overhead no-op.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        # Measured (top node name, wall seconds) per stage of the most
        # recent execute_staged() run — the hardware-time axis the soak
        # bench reports; modeled seconds live in the ExecutionReport.
        self.last_stage_walls: list[tuple[str, float]] = []
        # Optional runtime-statistics hook (the feedback subsystem's
        # ObservationCollector): notified once per execute() with the plan
        # and the finished report, covering every stage boundary — fused
        # chains, breakers, and cache-replayed subtrees alike — in both
        # streaming and materializing modes.
        self.collector = collector
        self._subtree_cache: dict[
            PhysNode, tuple[Partitions, tuple[OpMetrics, ...]]
        ] = {}
        self._cache_data: SourceData | None = None
        # Stage-boundary checkpoints of the staged execution in flight:
        # stage-top PhysNode -> materialized output partitions.  Consulted
        # before any other resolution so already-executed stages are never
        # re-run (and their metrics never re-reported) after a plan switch.
        self._stage_results: dict[PhysNode, Partitions] | None = None

    def _cost_per_call(self, op_name: str) -> float:
        return self.true_costs.get(op_name, 1.0)

    # -- public -----------------------------------------------------------------

    def execute(self, plan: PhysNode, data: SourceData) -> ExecutionResult:
        report = ExecutionReport()
        if self.reuse_subtree_results and self._cache_data is not data:
            self._subtree_cache.clear()
            self._cache_data = data  # strong ref: no id-reuse hazard
        span = self.tracer.span("engine.execute", category="engine", plan=plan.name)
        wall_start = clock()
        with span:
            parts = self._run(plan, data, report)
            # Internally, records flow by reference (filter-style UDFs
            # forward the input dicts, the subtree cache replays
            # partitions); copy at the API boundary so callers that mutate
            # returned records cannot corrupt source data or cached
            # results.
            records = [dict(r) for r in gather(parts)]
        wall = clock() - wall_start
        span.set(rows_out=len(records), modeled_seconds=report.seconds)
        self.tracer.count("engine.executions")
        result = ExecutionResult(
            records=records, report=report, wall_seconds=wall
        )
        if self.collector is not None:
            self.collector.observe_execution(
                plan, report, self.true_costs, wall_seconds=wall
            )
        return result

    def execute_staged(
        self,
        plan: PhysNode,
        data: SourceData,
        controller=None,
    ) -> ExecutionResult:
        """Execute ``plan`` stage-by-stage with optional mid-query switching.

        The plan's :meth:`PhysNode.pipeline_stages` run one at a time in
        execution order; each stage's output is checkpointed.  After every
        stage that did real work (except the final one), ``controller.
        on_boundary(engine=, plan=, stage=, completed=, run_id=)`` may
        return a replacement physical plan for the *unexecuted suffix* —
        its leaves are :class:`~repro.core.operators.MaterializedSource`
        operators carrying the checkpointed partitions — and execution
        continues under the new plan.  Checkpoint-handoff stages (a bare
        materialized source) report no metrics and fire no boundary, so a
        switch decision always follows actual progress.

        With ``controller=None`` (or a controller that never switches)
        records, per-operator metrics, and simulated seconds are
        bit-identical to :meth:`execute` — pinned by the staged parity
        suite.  The cross-plan subtree cache is bypassed for the duration:
        stage checkpoints are this execution's only replay mechanism.
        """
        if not self.streaming:
            raise ExecutionError(
                "staged execution is defined over the streaming engine's "
                "pipeline stages; use Engine(streaming=True)"
            )
        if self._stage_results is not None:
            raise ExecutionError("staged execution is not re-entrant")
        report = ExecutionReport()
        run_id = _next_run_id()
        self.last_stage_walls = []
        stage_outputs: dict[PhysNode, Partitions] = {}
        saved_reuse = self.reuse_subtree_results
        self.reuse_subtree_results = False
        self._stage_results = stage_outputs
        current = plan
        switched = False
        parts: Partitions = []
        root_span = self.tracer.span(
            "engine.execute_staged", category="engine", plan=plan.name
        )
        root_span.__enter__()
        try:
            stage_index = 0
            while True:
                pending = [
                    s
                    for s in current.pipeline_stages()
                    if s[-1] not in stage_outputs
                ]
                replanned = False
                for pos, stage in enumerate(pending):
                    top = stage[-1]
                    stage_report = ExecutionReport()
                    stage_span = self.tracer.span(
                        "engine.stage",
                        category="engine",
                        stage=top.name,
                        index=stage_index,
                    )
                    wall_start = clock()
                    with stage_span:
                        parts = self._run_subtree(top, data, stage_report)
                    wall = clock() - wall_start
                    stage_span.set(
                        rows_out=sum(len(p) for p in parts),
                        ops=len(stage_report.per_op),
                    )
                    self.tracer.count("engine.stages")
                    self.last_stage_walls.append((top.name, wall))
                    report.per_op.extend(stage_report.per_op)
                    stage_outputs[top] = parts
                    run = StageRun(
                        index=stage_index,
                        nodes=stage,
                        metrics=tuple(stage_report.per_op),
                        output=parts,
                        wall_seconds=wall,
                    )
                    stage_index += 1
                    last = pos == len(pending) - 1
                    if controller is None or last or not run.metrics:
                        continue
                    replacement = controller.on_boundary(
                        engine=self,
                        plan=current,
                        stage=run,
                        completed=stage_outputs,
                        run_id=run_id,
                    )
                    if replacement is not None:
                        current = replacement
                        switched = True
                        replanned = True
                        break
                if not replanned:
                    break
            records = [dict(r) for r in gather(parts)]
        finally:
            self._stage_results = None
            self.reuse_subtree_results = saved_reuse
            root_span.__exit__(None, None, None)
        root_span.set(
            stages=len(self.last_stage_walls),
            switched=switched,
            modeled_seconds=report.seconds,
        )
        self.tracer.count("engine.executions")
        total_wall = sum(wall for _, wall in self.last_stage_walls)
        result = ExecutionResult(
            records=records, report=report, wall_seconds=total_wall
        )
        if self.collector is not None:
            # A switched run is a hybrid of two plans: its metrics are
            # real per-op observations (already keyed transferably), but
            # its total seconds belong to no single plan — mark partial.
            self.collector.observe_execution(
                current, report, self.true_costs, run_id=run_id,
                partial=switched, wall_seconds=total_wall,
            )
        return result

    # -- recursion -----------------------------------------------------------------

    def _run(
        self,
        node: PhysNode,
        data: SourceData,
        report: ExecutionReport,
        scatter: ScatterSpec | None = None,
    ) -> Partitions:
        # ``scatter`` is a downstream partition-ship's request to have
        # this subtree's producing workers hash-scatter their output
        # straight into the ship's target buckets (breaker -> ship
        # streaming).  It is only ever set inside a parallel region and
        # never when the output is also a cache or checkpoint candidate,
        # so the memoized paths below always see plain partitions.
        if self._stage_results is not None:
            # A completed stage of the staged execution: hand back the
            # checkpoint without replaying metrics — they were reported
            # once, when the stage actually ran.
            checkpoint = self._stage_results.get(node)
            if checkpoint is not None:
                return checkpoint
        if not self.reuse_subtree_results:
            return self._run_subtree(node, data, report, scatter)
        hit = self._subtree_cache.get(node)
        if hit is not None:
            parts, metrics = hit
            report.per_op.extend(metrics)
            return parts
        sub_report = ExecutionReport()
        parts = self._run_subtree(node, data, sub_report)
        self._subtree_cache[node] = (parts, tuple(sub_report.per_op))
        report.per_op.extend(sub_report.per_op)
        return parts

    def _run_subtree(
        self,
        node: PhysNode,
        data: SourceData,
        report: ExecutionReport,
        scatter: ScatterSpec | None = None,
    ) -> Partitions:
        if self.streaming and pipelineable(node):
            # Fused stage chain: collect the forward-shipped Maps (and
            # Sink) down to the stage's pipeline breaker, run the breaker,
            # then stream its output through the whole chain at once.  A
            # cached interior node (another plan's stage boundary) also
            # stops the descent, so shared chain prefixes replay instead
            # of re-executing.
            cache = self._subtree_cache if self.reuse_subtree_results else None
            staged = self._stage_results
            chain = [node]
            below = node.children[0]
            while (
                pipelineable(below)
                and (cache is None or below not in cache)
                and (staged is None or below not in staged)
            ):
                chain.append(below)
                below = below.children[0]
            base = self._run(below, data, report)
            chain.reverse()
            return self._run_chain(chain, base, report, scatter)
        return self._run_breaker(node, data, report, scatter)

    # -- fused map chains ---------------------------------------------------------

    def _run_chain(
        self,
        chain: list[PhysNode],
        base: Partitions,
        report: ExecutionReport,
        scatter: ScatterSpec | None = None,
    ) -> Partitions:
        """Stream partitions through a fused chain of Map operators.

        Each partition flows through every Map of the chain in bounded
        batches, so no intermediate partition list is ever built.  The
        per-operator accounting accumulates the same integer row counts
        the materializing path derives from full partitions, keeping the
        reported metrics bit-identical.  A Sink in the chain collects
        without transforming or reporting, as on the materializing path.

        With ``engine_jobs > 1`` the per-partition streaming loops run
        across the fork pool; workers ship back rows and integer counts,
        and the metric arithmetic below consumes them in partition order
        exactly as the serial loop fills them.
        """
        stages = [
            (n, n.logical.op) for n in chain if not isinstance(n.logical.op, Sink)
        ]
        if not stages:
            return base
        degree = len(base)
        batch = self.stream_batch_rows
        ops = [(op.name, op) for _, op in stages]
        tracer = self.tracer
        chain_span = tracer.span(
            "engine.chain",
            category="engine",
            first=ops[0][0],
            ops=len(stages),
            jobs=self.engine_jobs,
        )
        with chain_span:
            if self.engine_jobs > 1:
                out, in_rows, out_rows, wspans = _pool.run_chain(
                    ops, base, batch, scatter, self.engine_jobs,
                    trace=tracer.enabled,
                )
                for name, i, w_start, w_end, w_pid in wspans:
                    tracer.add_span(
                        "engine.partition", "engine", w_start, w_end,
                        tid=w_pid, attrs={"op": name, "partition": i},
                    )
            else:
                in_rows = [[0] * degree for _ in stages]
                out_rows = [[0] * degree for _ in stages]
                out = empty_partitions(degree)
                for i, rows in enumerate(base):
                    with tracer.span(
                        "engine.partition",
                        category="engine",
                        op=ops[0][0],
                        partition=i,
                    ):
                        collected, part_in, part_out = _pool.run_chain_partition(
                            ops, rows, batch
                        )
                    out[i] = collected
                    for k in range(len(stages)):
                        in_rows[k][i] = part_in[k]
                        out_rows[k][i] = part_out[k]
        params = self.params
        for k, (stage_node, op) in enumerate(stages):
            metrics = OpMetrics(name=op.name, strategy=stage_node.local.value)
            cost_call = self._cost_per_call(op.name)
            cpu_per_instance = [
                in_rows[k][i] * cost_call + out_rows[k][i] * params.record_overhead
                for i in range(degree)
            ]
            metrics.rows_in = sum(in_rows[k])
            metrics.rows_out = sum(out_rows[k])
            metrics.udf_calls = metrics.rows_in
            metrics.cpu_units_max = max(cpu_per_instance)
            metrics.cpu_units_total = sum(cpu_per_instance)
            metrics.local_seconds += metrics.cpu_units_max / params.cpu_rate
            report.per_op.append(metrics)
        return out

    # -- pipeline breakers --------------------------------------------------------

    def _run_breaker(
        self,
        node: PhysNode,
        data: SourceData,
        report: ExecutionReport,
        scatter: ScatterSpec | None = None,
    ) -> Partitions:
        op = node.logical.op
        params = self.params
        if isinstance(op, MaterializedSource):
            # Checkpointed stage handoff: the partitions were materialized
            # (and their production charged) when the original stage ran,
            # so re-reading them is free and reports no metrics.
            return op.partitions
        if isinstance(op, Source):
            try:
                rows = data[op.name]
            except KeyError:
                raise ExecutionError(f"no data bound for source {op.name!r}") from None
            with self.tracer.span(
                "engine.scan", category="engine", source=op.name
            ) as scan_span:
                parts = round_robin(rows, params.degree)
                metrics = OpMetrics(name=op.name, strategy="scan")
                metrics.rows_out = len(rows)
                metrics.disk_bytes = _bytes_of(rows)
                metrics.local_seconds = params.disk_seconds(metrics.disk_bytes)
                report.per_op.append(metrics)
            scan_span.set(rows_out=len(rows))
            return parts
        if isinstance(op, Sink):
            return self._run(node.children[0], data, report)

        # Inside a parallel region (and only when neither the subtree
        # cache nor staged checkpoints will hold the producer's output),
        # ask each hash-partition-shipped child to stream its output
        # straight into the ship's scatter instead of buffering the
        # pre-ship partitions first.
        want_scatter = (
            self.engine_jobs > 1
            and not self.reuse_subtree_results
            and self._stage_results is None
        )
        inputs = []
        for i, child in enumerate(node.children):
            child_ship = node.ships[i]
            spec: ScatterSpec | None = None
            if (
                want_scatter
                and child_ship.kind is ShipKind.PARTITION
                and child_ship.key is not None
            ):
                spec = (child_ship.key, params.degree)
            inputs.append(self._run(child, data, report, spec))
        # The operator span covers shipping plus local evaluation only —
        # child recursion above traces under its own spans.
        op_span = self.tracer.span(
            "engine.op",
            category="engine",
            op=op.name,
            strategy=node.local.value,
        )
        with op_span:
            out = self._ship_and_local(node, op, inputs, scatter, report)
        op_span.set(
            rows_out=report.per_op[-1].rows_out,
            modeled_seconds=report.per_op[-1].seconds,
        )
        return out

    def _ship_and_local(
        self,
        node: PhysNode,
        op,
        inputs: list[Partitions],
        scatter: ScatterSpec | None,
        report: ExecutionReport,
    ) -> Partitions:
        """Ship the collected inputs and evaluate the local strategy.

        Split out of :meth:`_run_breaker` so the operator span cleanly
        covers exactly this region; the metric arithmetic is unchanged.
        """
        params = self.params
        metrics = OpMetrics(
            name=op.name,
            strategy=node.local.value,
        )
        # Partition byte totals are computed at most once per operator input
        # and shared between ship costing and (for Reduce) spill accounting,
        # instead of re-walking every record per use.
        spill_sizes = isinstance(op, ReduceOp)
        shipped: list[Partitions] = []
        shipped_sizes: list[list[float] | None] = []
        for i in range(len(inputs)):
            ship = node.ships[i]
            inp = inputs[i]
            if isinstance(inp, ScatteredOutput):
                # The producing workers already routed this input through
                # the ship's hash-scatter; charge the shuffle from the
                # primitives they shipped back.  ``avg``/``moved_bytes``
                # mirror _ship()'s expressions exactly.
                avg = sum(inp.pre_bytes) / inp.rows if inp.rows else 0.0
                moved_bytes = inp.moved * avg
                metrics.net_bytes += moved_bytes
                metrics.ship_seconds += params.net_seconds(moved_bytes)
                shipped.append(inp.parts)
                shipped_sizes.append(None)
                continue
            sizes: list[float] | None = None
            if ship.kind is not ShipKind.FORWARD or spill_sizes:
                sizes = _part_bytes(inp)
            out_parts = self._ship(ship, inp, sizes, node, metrics)
            # Only Reduce consumes post-ship sizes, and Reduce ships are
            # forward or partition; a repartition redistributes records so
            # its per-partition sizes are unknown without a re-walk.
            shipped.append(out_parts)
            shipped_sizes.append(sizes if ship.kind is ShipKind.FORWARD else None)
        out = self._local(node, shipped, shipped_sizes, metrics, scatter)
        if isinstance(out, ScatteredOutput):
            metrics.rows_out = out.rows
        else:
            metrics.rows_out = sum(len(p) for p in out)
        report.per_op.append(metrics)
        return out

    # -- shipping ----------------------------------------------------------------

    def _ship(
        self,
        ship: Ship,
        parts: Partitions,
        sizes: list[float] | None,
        node: PhysNode,
        metrics: OpMetrics,
    ) -> Partitions:
        params = self.params
        if ship.kind is ShipKind.FORWARD:
            return parts
        assert sizes is not None
        rows = sum(len(p) for p in parts)
        avg = sum(sizes) / rows if rows else 0.0
        if ship.kind is ShipKind.PARTITION:
            if ship.key is None:
                raise ExecutionError(f"{node.name}: partition ship without key")
            out, moved = repartition_by_key(parts, ship.key, params.degree)
        elif ship.kind is ShipKind.BROADCAST:
            out, moved = broadcast(parts, params.degree)
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unknown ship kind {ship.kind}")
        moved_bytes = moved * avg
        metrics.net_bytes += moved_bytes
        metrics.ship_seconds += params.net_seconds(moved_bytes)
        return out

    # -- local strategies -------------------------------------------------------------

    def _local(
        self,
        node: PhysNode,
        inputs: list[Partitions],
        input_sizes: list[list[float] | None],
        metrics: OpMetrics,
        scatter: ScatterSpec | None = None,
    ) -> Partitions:
        """Evaluate a local strategy partition-by-partition.

        The per-partition evaluation (shared with the pooled workers as
        :func:`repro.engine.parallel.eval_local_partition`) is separated
        from the metric arithmetic: workers — or the serial loop — hand
        back output rows plus integer facts, and every float operation
        happens here, in partition-index order, identically for
        ``engine_jobs`` 1 and N.
        """
        op = node.logical.op
        params = self.params
        cost_call = self._cost_per_call(op.name)
        degree = params.degree
        cpu_per_instance = [0.0] * degree
        calls_total = 0

        need_bytes = isinstance(op, ReduceOp) and input_sizes[0] is None
        tracer = self.tracer
        if self.engine_jobs > 1:
            out, evaled, wspans = _pool.run_local(
                op, tuple(inputs), need_bytes, scatter, self.engine_jobs,
                degree, trace=tracer.enabled,
            )
            for name, i, w_start, w_end, w_pid in wspans:
                tracer.add_span(
                    "engine.partition", "engine", w_start, w_end,
                    tid=w_pid, attrs={"op": name, "partition": i},
                )
        else:
            out = empty_partitions(degree)
            evaled = []
            for i in range(degree):
                with tracer.span(
                    "engine.partition",
                    category="engine",
                    op=op.name,
                    partition=i,
                ):
                    result, aux = _pool.eval_local_partition(
                        op, tuple(inp[i] for inp in inputs), need_bytes
                    )
                out[i] = result
                evaled.append((len(result), aux))

        if isinstance(op, MapOp):
            (parts,) = inputs
            metrics.rows_in = sum(len(p) for p in parts)
            for i in range(degree):
                result_len, _ = evaled[i]
                calls = len(parts[i])
                calls_total += calls
                cpu_per_instance[i] = (
                    calls * cost_call + result_len * params.record_overhead
                )
        elif isinstance(op, ReduceOp):
            (parts,) = inputs
            (sizes,) = input_sizes
            metrics.rows_in = sum(len(p) for p in parts)
            for i in range(degree):
                result_len, (groups, part_bytes) = evaled[i]
                calls_total += groups
                n = len(parts[i])
                sort_units = n * math.log2(max(n, 2)) * params.sort_unit
                cpu_per_instance[i] = (
                    sort_units
                    + groups * cost_call
                    + result_len * params.record_overhead
                )
                rows_bytes = sizes[i] if sizes is not None else part_bytes
                spill = params.spill_bytes(rows_bytes * degree) / degree
                metrics.disk_bytes += spill
                metrics.local_seconds += params.disk_seconds(spill)
        elif isinstance(op, MatchOp):
            left, right = inputs
            metrics.rows_in = sum(len(p) for p in left) + sum(len(p) for p in right)
            build = node.build_side if node.build_side is not None else 0
            for i in range(degree):
                pairs, _ = evaled[i]
                build_rows = left[i] if build == 0 else right[i]
                probe_rows = right[i] if build == 0 else left[i]
                calls_total += pairs
                cpu_per_instance[i] = (
                    len(build_rows) * params.build_unit
                    + len(probe_rows) * params.probe_unit
                    + pairs * cost_call
                    + pairs * params.record_overhead
                )
        elif isinstance(op, CrossOp):
            left, right = inputs
            metrics.rows_in = sum(len(p) for p in left) + sum(len(p) for p in right)
            for i in range(degree):
                result_len, _ = evaled[i]
                pairs = len(left[i]) * len(right[i])
                calls_total += pairs
                cpu_per_instance[i] = (
                    pairs * (params.cross_unit + cost_call)
                    + result_len * params.record_overhead
                )
        elif isinstance(op, CoGroupOp):
            left, right = inputs
            metrics.rows_in = sum(len(p) for p in left) + sum(len(p) for p in right)
            for i in range(degree):
                result_len, (keys,) = evaled[i]
                calls_total += keys
                n, m = len(left[i]), len(right[i])
                cpu_per_instance[i] = (
                    n * math.log2(max(n, 2)) * params.sort_unit
                    + m * math.log2(max(m, 2)) * params.sort_unit
                    + keys * cost_call
                    + result_len * params.record_overhead
                )
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"cannot execute {op!r}")

        metrics.udf_calls = calls_total
        metrics.cpu_units_max = max(cpu_per_instance)
        metrics.cpu_units_total = sum(cpu_per_instance)
        metrics.local_seconds += metrics.cpu_units_max / params.cpu_rate
        return out


def execute_physical(
    plan: PhysNode,
    data: SourceData,
    params: CostParams | None = None,
    true_costs: dict[str, float] | None = None,
) -> ExecutionResult:
    """Convenience wrapper: run one physical plan on source data."""
    return Engine(params, true_costs).execute(plan, data)
