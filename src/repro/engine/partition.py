"""Deterministic partitioning primitives for the simulated cluster.

Python's built-in ``hash`` is randomized per process for strings, which
would make simulated runtimes non-reproducible; we use a small stable
hash instead.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

from ..core.record import RawRecord
from ..core.reference import key_of
from ..core.schema import Attribute

Partitions = list[list[RawRecord]]


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for record values.

    Values that compare equal as Python dict keys must hash equally here,
    mirroring the builtin ``hash`` invariant: ``True == 1 == 1.0``, so all
    three must land in the same hash bucket.  Group-by and join semantics
    key on dict equality, so if equal keys hashed differently a hash
    repartition would split an equal-key group across instances and the
    parallel engine would silently diverge from the reference oracle.
    """
    if value is None:
        return 0x9E3779B1
    if isinstance(value, bool):
        value = int(value)  # bools equal their int value as dict keys
    elif isinstance(value, float):
        if value.is_integer():
            value = int(value)  # int-valued floats equal their int value
        else:
            return zlib.crc32(repr(value).encode())
    if isinstance(value, int):
        return (value * 0x9E3779B1) & 0xFFFFFFFF
    if isinstance(value, str):
        return zlib.crc32(value.encode())
    if isinstance(value, (tuple, list)):
        acc = 0x811C9DC5
        for item in value:
            acc = ((acc ^ stable_hash(item)) * 0x01000193) & 0xFFFFFFFF
        return acc
    return zlib.crc32(repr(value).encode())


def hash_key(row: RawRecord, key: tuple[Attribute, ...]) -> int:
    """Stable hash of a record's key tuple; a missing key attribute raises
    the same ``ExecutionError`` as the reference oracle's ``key_of``."""
    return stable_hash(key_of(row, key))


def empty_partitions(degree: int) -> Partitions:
    return [[] for _ in range(degree)]


def round_robin(rows: Iterable[RawRecord], degree: int) -> Partitions:
    parts = empty_partitions(degree)
    for i, row in enumerate(rows):
        parts[i % degree].append(row)
    return parts


def repartition_by_key(
    parts: Partitions, key: tuple[Attribute, ...], degree: int
) -> tuple[Partitions, int]:
    """Hash-repartition; returns the new partitions and the number of
    records that crossed instance boundaries."""
    out = empty_partitions(degree)
    moved = 0
    for origin, rows in enumerate(parts):
        for row in rows:
            target = hash_key(row, key) % degree
            if target != origin:
                moved += 1
            out[target].append(row)
    return out, moved


def broadcast(parts: Partitions, degree: int) -> tuple[Partitions, int]:
    """Replicate every record to every instance; returns partitions and the
    number of records that crossed instance boundaries."""
    all_rows = [row for rows in parts for row in rows]
    out = [list(all_rows) for _ in range(degree)]
    moved = len(all_rows) * (degree - 1)
    return out, moved


def gather(parts: Partitions) -> list[RawRecord]:
    return [row for rows in parts for row in rows]
