"""Admission control: bounded queue + per-tenant caps reject with 429."""

from __future__ import annotations

import threading

import pytest

from repro.serve import ADMISSION_REJECTED, ServeError, ServerConfig


class BlockingPlanner:
    """Monkeypatch stand-in for ``_plan_cold`` that parks until released.

    Planning runs in worker threads, so parking it holds the request —
    and its admission slot — open for as long as the test wants.
    """

    def __init__(self) -> None:
        self.started = threading.Semaphore(0)
        self.release = threading.Event()

    def __call__(self, tenant, req, tracer) -> dict:
        self.started.release()
        assert self.release.wait(timeout=30), "planner never released"
        return {"ok": True, "workload": req.workload, "cost": 1.0}

    def install(self, monkeypatch, server) -> None:
        monkeypatch.setattr(server.server, "_plan_cold", self)


def _plan_async(server, tenant: str, workload: str = "tpch_q7"):
    """Fire one plan request on its own connection + thread."""
    box: dict = {}

    def work():
        try:
            with server.connect() as client:
                box["response"] = client.plan(workload, tenant=tenant)
        except ServeError as exc:
            box["error"] = exc

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread, box


def test_tenant_inflight_cap_rejects(make_server, monkeypatch):
    server = make_server(
        ServerConfig(reopt_interval=0, tenant_inflight=1, max_queue=16)
    )
    planner = BlockingPlanner()
    planner.install(monkeypatch, server)

    thread, first = _plan_async(server, "capped")
    assert planner.started.acquire(timeout=30)
    # Same tenant while one request is in flight: structured rejection,
    # not queueing — the client sees the 429-style error immediately.
    with server.connect() as client:
        with pytest.raises(ServeError) as rejected:
            client.plan("tpch_q7", tenant="capped")
        assert rejected.value.code == ADMISSION_REJECTED
        assert "in-flight" in str(rejected.value)
        # A different tenant is unaffected by this tenant's cap.
        other_thread, other = _plan_async(server, "other")
        assert planner.started.acquire(timeout=30)
        planner.release.set()
        thread.join(timeout=30)
        other_thread.join(timeout=30)
        assert first["response"]["cost"] == 1.0
        assert other["response"]["cost"] == 1.0
        counters = client.metrics()["counters"]
    assert counters["serve.rejected"] == 1
    assert counters["serve.rejected_tenant"] == 1


def test_global_queue_cap_rejects(make_server, monkeypatch):
    server = make_server(
        ServerConfig(reopt_interval=0, tenant_inflight=8, max_queue=2)
    )
    planner = BlockingPlanner()
    planner.install(monkeypatch, server)

    threads = []
    for tenant in ("a", "b"):
        threads.append(_plan_async(server, tenant)[0])
        assert planner.started.acquire(timeout=30)
    # Two admitted requests fill the queue; a third tenant bounces.
    with server.connect() as client:
        with pytest.raises(ServeError) as rejected:
            client.plan("tpch_q7", tenant="c")
        assert rejected.value.code == ADMISSION_REJECTED
        assert "queue" in str(rejected.value)
        planner.release.set()
        for thread in threads:
            thread.join(timeout=30)
        counters = client.metrics()["counters"]
    assert counters["serve.rejected_queue"] == 1
    # Capacity freed: the same request is admitted now.
    with server.connect() as client:
        assert client.plan("tpch_q7", tenant="c")["cost"] == 1.0


def test_rejection_does_not_consume_capacity(make_server, monkeypatch):
    """Rejected requests release their (never-taken) admission slot."""
    server = make_server(
        ServerConfig(reopt_interval=0, tenant_inflight=1, max_queue=4)
    )
    planner = BlockingPlanner()
    planner.install(monkeypatch, server)
    thread, _ = _plan_async(server, "t")
    assert planner.started.acquire(timeout=30)
    with server.connect() as client:
        for _ in range(3):
            with pytest.raises(ServeError):
                client.plan("tpch_q7", tenant="t")
        planner.release.set()
        thread.join(timeout=30)
        # All slots are free again: a fresh request plans normally.
        assert client.plan("tpch_q7", tenant="t")["cost"] == 1.0
