"""Server behavior: parity with direct optimization, caching, metrics.

The headline contract: a served plan is *bit-identical* to what a direct
:meth:`Optimizer.optimize` call with the same statistics produces — the
server adds caching and scheduling, never arithmetic.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.core import AnnotationMode, body
from repro.core.plan import linearize, signature_key
from repro.feedback.estimator import FeedbackEstimator
from repro.feedback.store import StatisticsStore
from repro.obs import Tracer
from repro.optimizer import Optimizer
from repro.serve import ServeError, ServerConfig
from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_served_plan_matches_direct_optimizer(make_server, name):
    """Cost, operator order, physical shape, and signature all match a
    direct guided-search optimization against the same (empty) store —
    costs compare with ``==``, not approx: JSON floats round-trip."""
    server = make_server(ServerConfig(reopt_interval=0, default_top_k=2))
    with server.connect() as client:
        response = client.plan(name, tenant="parity", top_k=2)

    workload = ALL_WORKLOADS[name]()
    store = StatisticsStore()
    optimizer = Optimizer(
        workload.catalog,
        workload.hints,
        AnnotationMode.SCA,
        workload.params,
        estimator_factory=lambda ctx, hints: FeedbackEstimator(
            ctx, hints, store
        ),
        search="guided",
        top_k=2,
    )
    direct = optimizer.optimize(workload.plan)
    best = direct.best
    assert response["cost"] == best.cost
    assert response["plan"] == list(linearize(best.body))
    assert response["physical"] == best.physical.describe()
    assert response["signature"] == signature_key(best.body)
    assert [r["cost"] for r in response["ranked"]] == [
        p.cost for p in direct.ranked
    ]


def test_cache_hit_returns_identical_payload(make_server):
    server = make_server()
    with server.connect() as client:
        cold = client.plan("tpch_q7", tenant="a")
        warm = client.plan("tpch_q7", tenant="a")
    assert cold["cache"] == "miss"
    assert warm["cache"] == "hit"
    assert warm["fingerprint"] == cold["fingerprint"]
    # Everything but the serve-time bookkeeping is byte-for-byte shared.
    for volatile in ("cache", "serve_seconds"):
        cold.pop(volatile), warm.pop(volatile)
    assert warm == cold


def test_cache_is_scoped_by_params(make_server):
    server = make_server()
    with server.connect() as client:
        base = client.plan("tpch_q7", tenant="a")
        scaled = client.plan("tpch_q7", tenant="a", scale=2.0)
        deeper = client.plan("tpch_q7", tenant="a", top_k=2)
        modal = client.plan("tpch_q7", tenant="a", mode="manual")
    assert base["cache"] == "miss"
    # Different scale / top_k / mode are different planning identities.
    assert scaled["cache"] == deeper["cache"] == modal["cache"] == "miss"
    assert len(scaled["ranked"]) == 1 and len(deeper["ranked"]) == 2


def test_counters_and_prometheus_endpoint(make_server):
    server = make_server(ServerConfig(reopt_interval=0, metrics_port=0))
    with server.connect() as client:
        client.plan("clickstream", tenant="a")
        client.plan("clickstream", tenant="a")
        client.ping()
        with pytest.raises(ServeError) as rejected:
            client.plan("unknown_workload", tenant="a")
        assert rejected.value.code == 404
        metrics = client.metrics()
    counters = metrics["counters"]
    assert counters["serve.requests"] == 2
    assert counters["serve.planned"] == 1
    assert counters["serve.cache_hits"] == 1
    assert counters["serve.cache_misses"] == 1
    assert "serve.cache_cross_tenant_hits" not in counters

    url = f"http://127.0.0.1:{server.server.metrics_port}/metrics"
    with urllib.request.urlopen(url, timeout=30) as http:
        assert http.status == 200
        text = http.read().decode("utf-8")
    assert "repro_serve_requests_total 2" in text
    assert "repro_serve_cache_hits_total 1" in text
    assert "repro_serve_tenants 1" in text
    assert "repro_serve_plans_per_sec" in text
    assert metrics["prometheus"].splitlines()[0].startswith("# TYPE ")


def test_metrics_http_404(make_server):
    server = make_server(ServerConfig(reopt_interval=0, metrics_port=0))
    url = f"http://127.0.0.1:{server.server.metrics_port}/other"
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(url, timeout=30)
    assert err.value.code == 404


def test_requests_are_traced_into_the_sink(make_server):
    sink = Tracer()
    server = make_server(tracer=sink)
    with server.connect() as client:
        client.plan("tpch_q7", tenant="traced")
        client.plan("tpch_q7", tenant="traced")

    def snapshot():
        return [
            (s.name, s.attrs.get("cache"), s.span_id, s.parent_id)
            for s in sink.spans
        ]

    spans = server.call(snapshot)
    requests = [s for s in spans if s[0] == "serve.request"]
    assert [s[1] for s in requests] == ["miss", "hit"]
    # The cold request's optimizer spans are nested under it, and span
    # ids stay unique after the absorb-merge.
    ids = [s[2] for s in spans]
    assert len(ids) == len(set(ids))
    miss_id = requests[0][2]
    children = [s for s in spans if s[3] == miss_id]
    assert any(s[0] == "optimizer.optimize" for s in children)


def test_unknown_op_and_bad_json_are_structured_errors(make_server):
    server = make_server()
    with server.connect() as client:
        with pytest.raises(ServeError) as bad_op:
            client.request({"op": "dance"})
        assert bad_op.value.code == 400
        # The connection survives a malformed line.
        client._sock.sendall(b"this is not json\n")
        line = client._reader.readline()
        assert b'"code": 400' in line
        assert client.ping()["pong"] is True


def test_shutdown_op_stops_the_server(make_server):
    server = make_server()
    with server.connect() as client:
        assert client.shutdown()["shutting_down"] is True
    server._thread.join(timeout=30)
    assert not server._thread.is_alive()
