"""Tenant LRU eviction: the server's memory-pressure valve.

``max_tenants`` bounds warm state; beyond it the least-recently-used
*idle* tenant loses its memos, store handle, and owned cache entries.
Tenants here use distinct workloads so a survivor's cache entry can
never mask an evicted tenant's loss (empty stores share a fingerprint).
"""

from __future__ import annotations

import threading

from repro.serve import ServerConfig


def _tenant_names(server):
    return server.call(lambda: list(server.server._tenants))


def test_lru_tenant_is_evicted_beyond_cap(make_server):
    server = make_server(ServerConfig(reopt_interval=0, max_tenants=2))
    with server.connect() as client:
        client.plan("tpch_q7", tenant="a")
        client.plan("clickstream", tenant="b")
        assert _tenant_names(server) == ["a", "b"]
        # Third tenant: "a" is LRU and idle -> evicted.
        client.plan("textmining", tenant="c")
        assert _tenant_names(server) == ["b", "c"]
        counters = client.metrics()["counters"]
        assert counters["serve.tenant_evictions"] == 1
        # The evicted tenant's cache entries went with it: returning
        # re-plans from scratch (and evicts "b", now the LRU).
        response = client.plan("tpch_q7", tenant="a")
        assert response["cache"] == "miss"
        assert _tenant_names(server) == ["c", "a"]


def test_recent_use_refreshes_lru_order(make_server):
    server = make_server(ServerConfig(reopt_interval=0, max_tenants=2))
    with server.connect() as client:
        client.plan("tpch_q7", tenant="a")
        client.plan("clickstream", tenant="b")
        client.plan("tpch_q7", tenant="a")  # refresh "a"
        client.plan("textmining", tenant="c")
    assert _tenant_names(server) == ["a", "c"]


def test_inflight_tenant_is_not_evicted(make_server, monkeypatch):
    server = make_server(ServerConfig(reopt_interval=0, max_tenants=1))
    real = server.server._plan_cold
    started = threading.Semaphore(0)
    release = threading.Event()

    def parked(tenant, req, tracer):
        if tenant.name == "busy":
            started.release()
            assert release.wait(timeout=30)
        return real(tenant, req, tracer)

    monkeypatch.setattr(server.server, "_plan_cold", parked)

    box: dict = {}

    def work():
        with server.connect() as client:
            box["response"] = client.plan("tpch_q7", tenant="busy")

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    assert started.acquire(timeout=30)
    # A second tenant arrives while "busy" is mid-plan.  The cap (1) is
    # exceeded, but an in-flight tenant must not lose its store/memos
    # under it — the server admits over the cap instead.
    with server.connect() as client:
        client.plan("clickstream", tenant="other")
        assert set(_tenant_names(server)) == {"busy", "other"}
        release.set()
        thread.join(timeout=30)
        assert box["response"]["cache"] == "miss"
        # Next tenant arrival while everyone is idle shrinks us back.
        client.plan("textmining", tenant="third")
        assert len(_tenant_names(server)) <= 2
