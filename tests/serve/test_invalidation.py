"""Exact cache invalidation against foreign statistics commits.

A second process ingests into a tenant's sqlite store while the server
is running (or even mid-request); the server's next ``sync()`` must
detect it, drop exactly the stale plan-cache entries and memo spines,
and re-plan — including the race where the ingest lands while a plan is
being computed: that result is stored under the *pre-ingest* fingerprint
and becomes unreachable the moment the commit is seen.
"""

from __future__ import annotations

import threading

from repro.feedback.observation import ExecutionObservation, OpObservation
from repro.feedback.store import StatisticsStore
from repro.serve import ServerConfig


def foreign_ingest(store_path, op_name="sigma_shipdate", rows_out=321.0):
    """One out-of-process-style commit into a tenant's store file."""
    store = StatisticsStore.open(store_path)
    store.ingest(
        ExecutionObservation(
            plan_key="foreign_run",
            seconds=1.0,
            ops=(
                OpObservation(
                    key=f"{op_name}@foreign",
                    op_name=op_name,
                    kind="map",
                    rows_in=1000,
                    rows_out=rows_out,
                    udf_calls=1000,
                    cpu_per_call=1e-6,
                    disk_bytes=0.0,
                ),
            ),
        )
    )
    store.close()


def make_stats_server(make_server, tmp_path, **overrides):
    config = ServerConfig(
        reopt_interval=0, stats_dir=tmp_path / "stats", **overrides
    )
    return make_server(config)


def test_foreign_commit_invalidates_cache(make_server, tmp_path):
    server = make_stats_server(make_server, tmp_path)
    with server.connect() as client:
        cold = client.plan("tpch_q7", tenant="t")
        assert client.plan("tpch_q7", tenant="t")["cache"] == "hit"

        foreign_ingest(tmp_path / "stats" / "t.sqlite")

        after = client.plan("tpch_q7", tenant="t")
        counters = client.metrics()["counters"]
    # The commit changed the tenant's estimator view: new fingerprint,
    # stale entry dropped, fresh plan computed against the new stats.
    assert after["cache"] == "miss"
    assert after["fingerprint"] != cold["fingerprint"]
    assert counters["serve.invalidations"] == 1
    assert counters["serve.cache_invalidations"] == 1
    # The dirty op sits deep in q7's join spine: real memo work evicted.
    assert counters["serve.memo_evictions"] > 0


def test_other_tenants_cache_survives_foreign_commit(make_server, tmp_path):
    server = make_stats_server(make_server, tmp_path)
    with server.connect() as client:
        client.plan("tpch_q7", tenant="noisy")
        client.plan("tpch_q7", tenant="quiet")
        foreign_ingest(tmp_path / "stats" / "noisy.sqlite")
        assert client.plan("tpch_q7", tenant="noisy")["cache"] == "miss"
        # Invalidation is exact: the other tenant's entry is untouched.
        assert client.plan("tpch_q7", tenant="quiet")["cache"] == "hit"


def test_ingest_landing_mid_request_cannot_poison_the_cache(
    make_server, tmp_path, monkeypatch
):
    """The fingerprint is captured *before* planning starts, so a result
    computed from pre-ingest statistics is filed under the pre-ingest
    key — the next sync retires it instead of serving it as current."""
    server = make_stats_server(make_server, tmp_path)
    real = server.server._plan_cold
    started = threading.Semaphore(0)
    release = threading.Event()

    def parked(tenant, req, tracer):
        started.release()
        assert release.wait(timeout=30)
        return real(tenant, req, tracer)

    monkeypatch.setattr(server.server, "_plan_cold", parked)

    box: dict = {}

    def work():
        with server.connect() as client:
            box["response"] = client.plan("tpch_q7", tenant="raced")

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    assert started.acquire(timeout=30)
    # The request has synced (clean) and missed the cache; now the
    # foreign commit lands while its plan is still being computed.
    foreign_ingest(tmp_path / "stats" / "raced.sqlite")
    release.set()
    thread.join(timeout=30)
    stale = box["response"]
    assert stale["cache"] == "miss"

    with server.connect() as client:
        fresh = client.plan("tpch_q7", tenant="raced")
        counters = client.metrics()["counters"]
    # The raced result went in under the pre-ingest fingerprint; the
    # next request saw the commit, dropped it, and re-planned.
    assert fresh["cache"] == "miss"
    assert fresh["fingerprint"] != stale["fingerprint"]
    assert counters["serve.cache_invalidations"] == 1
    assert counters["serve.cache_misses"] == 2
    assert counters.get("serve.cache_hits", 0) == 0


def test_hot_signatures_are_replanned_in_the_background(
    make_server, tmp_path
):
    server = make_stats_server(make_server, tmp_path, reopt_hot_hits=2)
    with server.connect() as client:
        # Two lifetime hits make (tpch_q7, sca, 1.0, 1) hot for "t".
        client.plan("tpch_q7", tenant="t")
        client.plan("tpch_q7", tenant="t")
        foreign_ingest(tmp_path / "stats" / "t.sqlite")
        # Any request for the tenant syncs, invalidates, and queues the
        # hot signature for background re-planning.
        client.plan("clickstream", tenant="t")
        assert server.run_background_pass() == 1
        # The replan already happened off the request path: warm again.
        response = client.plan("tpch_q7", tenant="t")
        counters = client.metrics()["counters"]
    assert response["cache"] == "hit"
    assert counters["serve.background_replans"] == 1


def test_background_pass_skips_already_replanned_signatures(
    make_server, tmp_path
):
    server = make_stats_server(make_server, tmp_path, reopt_hot_hits=2)
    with server.connect() as client:
        client.plan("tpch_q7", tenant="t")
        client.plan("tpch_q7", tenant="t")
        foreign_ingest(tmp_path / "stats" / "t.sqlite")
        client.plan("clickstream", tenant="t")  # queues the hot replan
        # A client beats the background pass to it...
        client.plan("tpch_q7", tenant="t")
        # ...so the pass finds the cache warm and plans nothing.
        assert server.run_background_pass() == 0
