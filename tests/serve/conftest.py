"""Fixtures for the planning-server suite: an in-process server thread.

The server is asyncio; the tests are synchronous.  :class:`ServerThread`
runs a :class:`~repro.serve.PlanningServer` on its own event loop in a
daemon thread and exposes synchronous hooks: connect a blocking client,
run one background re-optimization pass to completion, shut down.  Tests
get a real TCP round trip (the same bytes the CLI client sends) without
subprocess startup cost.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs import Tracer
from repro.serve import PlanningClient, PlanningServer, ServerConfig


class ServerThread:
    """A planning server running on a private event loop thread."""

    def __init__(
        self, config: ServerConfig, tracer: Tracer | None = None
    ) -> None:
        self.server = PlanningServer(config, tracer=tracer)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("server thread failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_until_complete(self.server.serve_forever())
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def connect(self, timeout: float = 30.0) -> PlanningClient:
        return PlanningClient("127.0.0.1", self.server.port, timeout=timeout)

    def run_background_pass(self) -> int:
        """One re-optimization batch, synchronously, on the loop thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.run_background_pass(), self.loop
        )
        return future.result(timeout=60)

    def call(self, fn, *args):
        """Run ``fn(*args)`` on the event-loop thread (state inspection)."""
        done = threading.Event()
        box = {}

        def runner():
            try:
                box["value"] = fn(*args)
            except Exception as exc:  # pragma: no cover
                box["error"] = exc
            finally:
                done.set()

        self.loop.call_soon_threadsafe(runner)
        if not done.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("loop call timed out")
        if "error" in box:  # pragma: no cover
            raise box["error"]
        return box["value"]

    def stop(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
            self._thread.join(timeout=30)


@pytest.fixture
def make_server():
    """Factory fixture: build ServerThreads, stop them all at teardown."""
    servers: list[ServerThread] = []

    def build(
        config: ServerConfig | None = None, tracer: Tracer | None = None
    ) -> ServerThread:
        server = ServerThread(
            config or ServerConfig(reopt_interval=0), tracer=tracer
        )
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()
