"""Wire-protocol unit tests: codec round trips and request validation."""

from __future__ import annotations

import pytest

from repro.serve import PlanRequest, ProtocolError
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    parse_plan_request,
)


def test_encode_decode_round_trip():
    payload = {"op": "plan", "workload": "tpch_q7", "scale": 2.5}
    line = encode_message(payload)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_message(line) == payload


def test_float_round_trip_is_exact():
    # Bit-exact float transport is what makes server-side costs
    # comparable to a direct Optimizer.optimize call.
    cost = 321.64217285727153
    assert decode_message(encode_message({"cost": cost}))["cost"] == cost


@pytest.mark.parametrize(
    "line", [b"not json\n", b"[1, 2]\n", b'"just a string"\n', b"\xff\xfe\n"]
)
def test_decode_rejects_non_object(line):
    with pytest.raises(ProtocolError):
        decode_message(line)


def test_parse_plan_request_defaults():
    req = parse_plan_request({"workload": "tpch_q7"})
    assert req == PlanRequest(
        tenant="default", workload="tpch_q7", mode="sca", scale=1.0, top_k=1
    )
    assert req.params() == ("tpch_q7", "sca", 1.0, 1)


def test_parse_plan_request_full():
    req = parse_plan_request(
        {
            "workload": "clickstream",
            "tenant": "acme-prod.v2",
            "mode": "manual",
            "scale": 4,
            "top_k": 3,
        }
    )
    assert req.tenant == "acme-prod.v2"
    assert req.mode == "manual"
    assert req.scale == 4.0 and isinstance(req.scale, float)
    assert req.top_k == 3


@pytest.mark.parametrize(
    "payload",
    [
        {},  # no workload
        {"workload": ""},
        {"workload": 7},
        {"workload": "q", "tenant": "has space"},
        {"workload": "q", "tenant": "a/b"},  # path separator
        {"workload": "q", "tenant": "x" * 65},
        {"workload": "q", "tenant": ""},
        {"workload": "q", "mode": "auto"},
        {"workload": "q", "scale": 0},
        {"workload": "q", "scale": -1.0},
        {"workload": "q", "scale": "big"},
        {"workload": "q", "scale": True},
        {"workload": "q", "top_k": 0},
        {"workload": "q", "top_k": 1.5},
        {"workload": "q", "top_k": True},
    ],
)
def test_parse_plan_request_rejects(payload):
    with pytest.raises(ProtocolError):
        parse_plan_request(payload)


def test_error_response_shape():
    response = error_response(429, "full")
    assert response == {"ok": False, "code": 429, "error": "full"}
