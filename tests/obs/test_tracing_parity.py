"""Tracing must be a pure observer: bit-identical results on vs off.

The tracer reads wall-clock only; it must never touch the modeled time
axis.  These tests pin that across all four paper workloads, streaming
and materializing engines, ``engine_jobs`` in {1, 4}, staged execution
with a forced mid-query switch, and the optimizer/feedback loops, the
records, per-op :class:`OpMetrics`, modeled seconds, and ranked plan
costs are *exactly* equal with a live :class:`Tracer` and with the
default no-op tracer.
"""

import pytest

from repro.core import AnnotationMode
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.engine import Engine
from repro.obs import Tracer
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)

BUILDERS = {
    "tpch_q7": lambda: build_q7(SMALL_TPCH),
    "tpch_q15": lambda: build_q15(SMALL_TPCH),
    "clickstream": lambda: build_clickstream(ClickScale(sessions=250)),
    "textmining": lambda: build_textmining(CorpusScale(documents=250)),
}


@pytest.fixture(scope="module")
def optimized():
    """workload name -> (workload, rank-picked plans), optimized once."""
    out = {}
    for name, build in BUILDERS.items():
        workload = build()
        result = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        out[name] = (workload, result.picks(3))
    return out


class TestEngineParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize(
        "streaming", [True, False], ids=["streaming", "materializing"]
    )
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_execute_bit_identical_traced_vs_untraced(
        self, optimized, name, streaming, jobs
    ):
        workload, picks = optimized[name]
        tracer = Tracer()
        untraced = Engine(
            workload.params, workload.true_costs,
            streaming=streaming, engine_jobs=jobs,
        )
        traced = Engine(
            workload.params, workload.true_costs,
            streaming=streaming, engine_jobs=jobs, tracer=tracer,
        )
        for plan in picks:
            want = untraced.execute(plan.physical, workload.data)
            got = traced.execute(plan.physical, workload.data)
            assert got.records == want.records
            assert got.report.per_op == want.report.per_op  # exact OpMetrics
            assert got.seconds == want.seconds  # bit-identical, not approx
        assert tracer.spans  # the traced engine actually traced
        assert tracer.metrics.counters["engine.executions"] == len(picks)

    def test_wall_seconds_measured_with_tracing_off(self, optimized):
        """The report's wall-clock axis must not depend on the tracer."""
        workload, picks = optimized["clickstream"]
        engine = Engine(workload.params, workload.true_costs)
        result = engine.execute(picks[0].physical, workload.data)
        assert result.wall_seconds > 0.0

    def test_partition_spans_cover_fork_workers(self, optimized):
        """engine_jobs>1 ships worker spans back as separate timeline
        lanes (tids) — the Perfetto view of the pool."""
        import os

        workload, picks = optimized["tpch_q15"]
        tracer = Tracer()
        engine = Engine(
            workload.params, workload.true_costs, engine_jobs=4, tracer=tracer
        )
        engine.execute(picks[0].physical, workload.data)
        partitions = [s for s in tracer.spans if s.name == "engine.partition"]
        assert partitions
        worker_tids = {s.tid for s in partitions if s.tid != 0}
        assert worker_tids  # at least one span came from a forked worker
        assert os.getpid() not in worker_tids


class TestStagedParity:
    def test_staged_with_forced_switch_bit_identical(self, optimized):
        """execute_staged through the mid-query controller, with
        switch_threshold=0.0 forcing a switch at every boundary, is
        bit-identical traced vs untraced — including the boundary
        decisions themselves."""
        from repro.feedback.midquery import run_midquery

        workload, _ = optimized["clickstream"]
        tracer = Tracer()
        want = run_midquery(workload, switch_threshold=0.0)
        got = run_midquery(workload, switch_threshold=0.0, tracer=tracer)
        assert got.switched and want.switched  # the diagnostic forced it
        assert got.adaptive.records == want.adaptive.records
        assert got.adaptive.report.per_op == want.adaptive.report.per_op
        assert got.adaptive.seconds == want.adaptive.seconds
        assert [
            (d.boundary, d.current_cost, d.best_cost, d.switched)
            for d in got.decisions
        ] == [
            (d.boundary, d.current_cost, d.best_cost, d.switched)
            for d in want.decisions
        ]
        # The trace recorded the decision evidence.
        boundaries = [s for s in tracer.spans if s.name == "feedback.boundary"]
        assert boundaries
        for span in boundaries:
            assert {"kept_cost", "best_cost", "switched"} <= set(span.attrs)
        assert tracer.metrics.counters["feedback.switches"] >= 1


class TestOptimizerParity:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_ranked_costs_identical_traced_vs_untraced(self, optimized, name):
        workload, _ = optimized[name]
        tracer = Tracer()
        want = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params,
        ).optimize(workload.plan)
        got = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, tracer=tracer,
        ).optimize(workload.plan)
        assert [(p.rank, p.cost) for p in got.ranked] == [
            (p.rank, p.cost) for p in want.ranked
        ]
        assert tracer.metrics.counters["optimizer.optimizations"] == 1
        assert (
            tracer.metrics.counters["optimizer.alternatives_costed"]
            == len(got.ranked)
        )

    def test_parallel_costing_identical_traced_vs_untraced(self, optimized):
        workload, _ = optimized["tpch_q7"]
        tracer = Tracer()
        want = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, jobs=2,
        ).optimize(workload.plan)
        got = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, jobs=2, tracer=tracer,
        ).optimize(workload.plan)
        assert [(p.rank, p.cost) for p in got.ranked] == [
            (p.rank, p.cost) for p in want.ranked
        ]
        dispatch = [
            s for s in tracer.spans if s.name == "optimizer.parallel.dispatch"
        ]
        assert dispatch  # the pool path ran and was traced


class TestFeedbackParity:
    def test_feedback_rounds_identical_traced_vs_untraced(self, optimized):
        from repro.bench import run_experiment

        workload, _ = optimized["textmining"]
        tracer = Tracer()
        want = run_experiment(workload, picks=2, feedback_rounds=2)
        got = run_experiment(
            workload, picks=2, feedback_rounds=2, tracer=tracer
        )
        assert [p.runtime_seconds for p in got.executed] == [
            p.runtime_seconds for p in want.executed
        ]
        assert [p.estimated_cost for p in got.executed] == [
            p.estimated_cost for p in want.executed
        ]
        assert [p.result.records for p in got.executed] == [
            p.result.records for p in want.executed
        ]
        counters = tracer.metrics.counters
        assert counters["feedback.rounds"] == 2
        assert counters["feedback.ingests"] >= 1
        rounds = [s for s in tracer.spans if s.name == "feedback.round"]
        assert len(rounds) == 2
