"""CLI surface of the observability subsystem.

``repro experiment --trace`` must produce a Perfetto-loadable Chrome
trace covering the optimizer, per-stage engine work (including fork
workers as their own tids), and — under feedback — the statistics store;
``repro trace summarize`` must read both formats back.
"""

import json
import os

from repro.cli import main
from repro.obs import load_trace


def test_experiment_trace_chrome_perfetto_loadable(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    assert (
        main(
            [
                "experiment",
                "clickstream",
                "--picks",
                "3",
                "--trace",
                str(trace),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "span(s) written to" in out
    payload = json.loads(trace.read_text())
    # Chrome trace-event envelope Perfetto accepts.
    assert isinstance(payload["traceEvents"], list)
    assert payload["displayTimeUnit"] == "ms"
    x_events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert x_events
    for event in x_events:
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
    cats = {e["cat"] for e in x_events}
    assert {"optimizer", "engine"} <= cats
    names = {e["name"] for e in x_events}
    assert "optimizer.optimize" in names
    assert "engine.execute" in names
    assert "engine.partition" in names


def test_experiment_trace_engine_jobs_worker_lanes(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "2",
                "--engine-jobs",
                "2",
                "--trace",
                str(trace),
            ]
        )
        == 0
    )
    capsys.readouterr()
    payload = json.loads(trace.read_text())
    thread_names = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e.get("name") == "thread_name"
    }
    assert "main" in thread_names
    workers = {n for n in thread_names if n.startswith("worker-")}
    assert workers  # fork workers render as their own timeline lanes
    assert f"worker-{os.getpid()}" not in workers
    # And the worker lanes carry actual partition spans.
    tids = {
        e["tid"]
        for e in payload["traceEvents"]
        if e.get("ph") == "X" and e["name"] == "engine.partition"
    }
    assert len(tids) > 1


def test_experiment_trace_jsonl_and_metrics(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.txt"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "2",
                "--feedback-rounds",
                "1",
                "--trace",
                str(trace),
                "--trace-metrics",
                str(metrics),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "metrics snapshot written to" in out
    spans = load_trace(trace)  # extension sniffed -> span-log JSONL
    names = {s.name for s in spans}
    assert "feedback.round" in names
    assert "feedback.ingest" in names
    assert "optimizer.optimize" in names
    text = metrics.read_text()
    # --feedback-rounds 1 runs round 0 then round 1.
    assert "repro_feedback_rounds_total 2" in text
    assert "repro_engine_executions_total" in text


def test_trace_summarize_both_formats(capsys, tmp_path):
    for suffix, fmt_args in (
        (".json", []),
        (".jsonl", []),
        (".dat", ["--trace-format", "chrome"]),
    ):
        trace = tmp_path / f"trace{suffix}"
        assert (
            main(
                [
                    "experiment",
                    "tpch_q15",
                    "--picks",
                    "2",
                    "--trace",
                    str(trace),
                    *fmt_args,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "self time by subsystem" in out
        assert "engine" in out
        assert "optimizer" in out


def test_trace_summarize_top_limits_rows(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    assert (
        main(["experiment", "tpch_q15", "--picks", "2", "--trace", str(trace)])
        == 0
    )
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace), "--top", "1"]) == 0
    out = capsys.readouterr().out
    # Skip the rest of the heading line itself ("... (showing 1)").
    section = out.split("top spans by self time")[1].splitlines()[1:]
    rows = [
        line
        for line in section
        if line.strip() and not set(line.strip()) <= {"-", " "}
    ]
    # Column header plus exactly one span row.
    assert len(rows) == 2


def test_trace_summarize_missing_file(capsys, tmp_path):
    assert main(["trace", "summarize", str(tmp_path / "nope.json")]) == 1
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_summarize_garbage_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not a trace at all")
    assert main(["trace", "summarize", str(bad)]) == 1
    assert "cannot read trace" in capsys.readouterr().err
