"""Wall-clock discipline: one clock for the whole codebase.

Every wall-clock reading in ``src/repro`` must go through
``repro.obs.tracer.clock`` so traces, reported wall seconds, and
fork-worker spans all share one monotonic time base (and tests can fake
it in one place).  This scan bans direct ``time.perf_counter`` /
``time.monotonic`` / ``time.time`` use anywhere outside the tracer
module that defines the alias.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# The single module allowed to touch the stdlib clocks: it defines the
# `clock` alias everything else imports.
ALLOWED = {SRC / "obs" / "tracer.py"}

BANNED = ("time.perf_counter", "time.monotonic", "time.time(")


def test_no_direct_wall_clock_outside_obs():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        text = path.read_text()
        for needle in BANNED:
            if needle in text:
                line = next(
                    i
                    for i, row in enumerate(text.splitlines(), 1)
                    if needle in row
                )
                offenders.append(f"{path.relative_to(SRC)}:{line} uses {needle}")
    assert not offenders, (
        "direct wall-clock calls outside repro.obs.tracer (import `clock` "
        "from repro.obs instead):\n  " + "\n  ".join(offenders)
    )


def test_the_alias_itself_exists():
    import time

    from repro.obs import clock

    assert clock is time.perf_counter
