"""Unit tests for the repro.obs tracer, exporters, and summarizer."""

import json

import pytest

from repro.obs import (
    NOOP_TRACER,
    MetricsRegistry,
    NoopTracer,
    Tracer,
    load_trace,
    render_prometheus,
    render_summary,
    self_times,
    span_rows,
    summarize,
    write_chrome,
    write_jsonl,
    write_prometheus,
    write_trace,
)


class FakeClock:
    """Deterministic monotonic clock: every reading advances by `step`."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_tracer():
    return Tracer(_clock=FakeClock())


class TestTracer:
    def test_span_records_start_end_and_attrs(self):
        tracer = make_tracer()
        with tracer.span("work", category="engine", rows=3) as span:
            pass
        assert len(tracer.spans) == 1
        assert span.name == "work"
        assert span.category == "engine"
        assert span.attrs == {"rows": 3}
        assert span.duration == 1.0  # one clock tick inside
        assert span.parent_id is None

    def test_nesting_assigns_parent_ids(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children exit first, so they are recorded first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_attrs_settable_after_exit(self):
        tracer = make_tracer()
        span = tracer.span("work")
        with span:
            pass
        span.set(rows_out=42)
        assert tracer.spans[0].attrs["rows_out"] == 42

    def test_span_ids_unique_and_monotonic(self):
        tracer = make_tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_exception_still_closes_and_records(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.spans) == 1
        assert tracer._stack == []

    def test_add_span_parents_under_current(self):
        tracer = make_tracer()
        with tracer.span("stage") as stage:
            worker = tracer.add_span(
                "engine.partition", "engine", 10.0, 12.5, tid=4321,
                attrs={"partition": 0},
            )
        assert worker.parent_id == stage.span_id
        assert worker.tid == 4321
        assert worker.duration == 2.5

    def test_add_span_explicit_parent(self):
        tracer = make_tracer()
        orphan = tracer.add_span("x", "engine", 0.0, 1.0, parent_id=None)
        assert orphan.parent_id is None

    def test_metrics(self):
        registry = MetricsRegistry()
        registry.inc("runs")
        registry.inc("runs", 2)
        registry.set("depth", 7)
        assert registry.snapshot() == {
            "counters": {"runs": 3},
            "gauges": {"depth": 7},
        }

    def test_tracer_count_and_gauge(self):
        tracer = make_tracer()
        tracer.count("a")
        tracer.gauge("b", 1.5)
        assert tracer.metrics.counters["a"] == 1
        assert tracer.metrics.gauges["b"] == 1.5


class TestNoopTracer:
    def test_shared_instance_and_enabled_flag(self):
        assert isinstance(NOOP_TRACER, NoopTracer)
        assert NOOP_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_all_operations_are_inert(self):
        span = NOOP_TRACER.span("x", category="y", a=1)
        with span as entered:
            assert entered is span
        assert span.set(b=2) is span
        assert NOOP_TRACER.add_span("x", "y", 0.0, 1.0) is None
        NOOP_TRACER.count("c")
        NOOP_TRACER.gauge("g", 1.0)
        # Stateless: nothing accumulated anywhere.
        assert not hasattr(NOOP_TRACER, "spans")

    def test_span_object_is_shared(self):
        assert NOOP_TRACER.span("a") is NOOP_TRACER.span("b")


def traced_sample():
    """A tracer with nested spans, a worker lane, and metrics."""
    tracer = make_tracer()
    with tracer.span("engine.execute", category="engine", plan="p"):
        with tracer.span("engine.op", category="engine", op="join"):
            pass
        tracer.add_span(
            "engine.partition", "engine", 100.0, 101.0, tid=999,
            attrs={"partition": 0},
        )
    with tracer.span("optimizer.optimize", category="optimizer"):
        pass
    tracer.count("engine.executions")
    tracer.gauge("memo.entries", 12)
    return tracer


class TestExport:
    def test_span_rows_sorted_and_rebased(self):
        rows = span_rows(traced_sample())
        assert [r["ts"] for r in rows] == sorted(r["ts"] for r in rows)
        assert min(r["ts"] for r in rows) == 0.0
        names = {r["name"] for r in rows}
        assert {"engine.execute", "engine.op", "engine.partition"} <= names

    def test_jsonl_round_trip(self, tmp_path):
        tracer = traced_sample()
        path = tmp_path / "t.jsonl"
        count = write_jsonl(tracer, path)
        assert count == len(tracer.spans)
        spans = load_trace(path)
        assert len(spans) == count
        by_name = {s.name: s for s in spans}
        # Parent links survive the round trip.
        assert (
            by_name["engine.op"].parent_id
            == by_name["engine.execute"].span_id
        )
        assert by_name["engine.partition"].tid == 999

    def test_chrome_round_trip_and_metadata(self, tmp_path):
        tracer = traced_sample()
        path = tmp_path / "t.json"
        count = write_chrome(tracer, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == count == len(tracer.spans)
        # Perfetto-style thread metadata: a main lane plus the worker pid.
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "main" in thread_names
        assert "worker-999" in thread_names
        # Timestamps are microseconds.
        op = next(e for e in x_events if e["name"] == "engine.op")
        assert op["dur"] == pytest.approx(1.0 * 1e6)
        # Round trip through the summarizer loader preserves nesting.
        spans = load_trace(path)
        by_name = {s.name: s for s in spans}
        assert (
            by_name["engine.op"].parent_id
            == by_name["engine.execute"].span_id
        )

    def test_write_trace_sniffs_extension(self, tmp_path):
        tracer = traced_sample()
        jsonl = tmp_path / "a.jsonl"
        chrome = tmp_path / "a.json"
        write_trace(tracer, jsonl)
        write_trace(tracer, chrome)
        assert jsonl.read_text().lstrip().startswith("{")
        assert '"traceEvents"' in chrome.read_text()[:40]
        assert len(load_trace(jsonl)) == len(load_trace(chrome))

    def test_write_trace_explicit_format_and_errors(self, tmp_path):
        tracer = traced_sample()
        path = tmp_path / "weird.trace"
        write_trace(tracer, path, fmt="jsonl")
        assert len(load_trace(path)) == len(tracer.spans)
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(tracer, path, fmt="xml")

    def test_prometheus_rendering(self, tmp_path):
        tracer = traced_sample()
        text = render_prometheus(tracer.metrics)
        assert "# TYPE repro_engine_executions_total counter" in text
        assert "repro_engine_executions_total 1" in text
        assert "# TYPE repro_memo_entries gauge" in text
        assert "repro_memo_entries 12" in text
        path = tmp_path / "metrics.txt"
        write_prometheus(tracer, path)
        assert path.read_text() == text

    def test_prometheus_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.inc("weird name-with.chars")
        text = render_prometheus(registry)
        assert "repro_weird_name_with_chars_total 1" in text


class TestSummarize:
    def test_self_time_subtracts_direct_children(self):
        tracer = make_tracer()
        with tracer.span("outer"):  # 5 ticks total
            with tracer.span("inner"):  # 1 tick
                pass
            with tracer.span("inner"):  # 1 tick
                pass
        path_spans = [
            s for s in span_rows(tracer)
        ]  # sanity: exporter sees them all
        assert len(path_spans) == 3
        spans = _as_trace_spans(tracer)
        selfs = self_times(spans)
        outer = next(s for s in spans if s.name == "outer")
        assert selfs[outer.span_id] == pytest.approx(outer.duration - 2.0)

    def test_negative_self_time_clamps_to_zero(self):
        # Concurrent worker children legitimately exceed the parent span.
        tracer = make_tracer()
        with tracer.span("stage") as stage:
            for pid in (11, 12):
                tracer.add_span(
                    "part", "engine", 0.0, 100.0, tid=pid,
                )
        spans = _as_trace_spans(tracer)
        selfs = self_times(spans)
        assert selfs[stage.span_id] == 0.0

    def test_summarize_aggregates_by_category_and_name(self):
        per_cat, per_name = summarize(_as_trace_spans(traced_sample()))
        cats = {a.key for a in per_cat}
        assert cats == {"engine", "optimizer"}
        engine_names = {a.key for a in per_name if a.category == "engine"}
        assert "engine.partition" in engine_names
        # Self time never exceeds total time.
        for agg in per_cat + per_name:
            assert agg.self_seconds <= agg.total_seconds + 1e-12

    def test_render_summary(self):
        text = render_summary(_as_trace_spans(traced_sample()))
        assert "self time by subsystem" in text
        assert "engine" in text
        assert "optimizer" in text
        assert "timeline lane" in text

    def test_render_summary_empty(self):
        assert "empty trace" in render_summary([])


def _as_trace_spans(tracer):
    from repro.obs.summarize import TraceSpan

    return [
        TraceSpan(
            span_id=s.span_id,
            parent_id=s.parent_id,
            name=s.name,
            category=s.category,
            start=s.start,
            duration=s.duration,
            tid=s.tid,
        )
        for s in tracer.spans
    ]
