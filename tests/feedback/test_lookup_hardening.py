"""Hardened lookups: unknown names answer clearly, never with a bare
``KeyError`` leaking out of a dict access."""

import pytest

from repro.core import AnnotationMode, Catalog, SourceStats
from repro.core.errors import SchemaError
from repro.optimizer import CardinalityEstimator, Hints, PlanContext


@pytest.fixture()
def catalog():
    c = Catalog()
    c.add_source("orders", SourceStats(row_count=1000))
    return c


class TestCatalogStats:
    def test_known_source(self, catalog):
        assert catalog.stats("orders").row_count == 1000

    def test_unknown_source_raises_schema_error_not_keyerror(self, catalog):
        with pytest.raises(SchemaError, match="unknown source 'nope'"):
            catalog.stats("nope")
        # Specifically not a bare KeyError — SchemaError does not subclass it.
        try:
            catalog.stats("nope")
        except KeyError:  # pragma: no cover - the failure this test pins
            pytest.fail("Catalog.stats leaked a bare KeyError")
        except SchemaError:
            pass

    def test_has_source_is_the_non_throwing_probe(self, catalog):
        assert catalog.has_source("orders")
        assert not catalog.has_source("nope")

    def test_duplicate_registration_rejected(self, catalog):
        with pytest.raises(SchemaError, match="already registered"):
            catalog.add_source("orders", SourceStats(row_count=1))


class TestHintsFor:
    def test_unknown_op_returns_paper_defaults(self, catalog):
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        estimator = CardinalityEstimator(ctx, {"known": Hints(selectivity=0.5)})
        hints = estimator.hints_for("never_registered")
        assert hints is CardinalityEstimator.DEFAULT_HINTS
        assert hints.selectivity is None
        assert hints.cpu_per_call == 1.0
        assert hints.distinct_keys is None

    def test_known_op_returns_registered_hints(self, catalog):
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        registered = Hints(selectivity=0.5, cpu_per_call=7.0)
        estimator = CardinalityEstimator(ctx, {"known": registered})
        assert estimator.hints_for("known") is registered

    def test_no_hints_dict_at_all(self, catalog):
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        estimator = CardinalityEstimator(ctx)
        assert estimator.hints_for("anything") is CardinalityEstimator.DEFAULT_HINTS
