"""Regression: in-flight stage deltas must not be double-counted.

A staged execution ingests each stage's observation delta the moment the
stage finishes, and the same execution's whole-run observation is
ingested afterwards (by the adaptive loop's bulk ingest, or a driver
re-reading the collector).  Ingestion dedupes by (signature, run-id):
the EMA aggregates must end up exactly as if every operator had been
observed once per execution.
"""

import math

from repro.datagen import ClickScale
from repro.feedback import (
    ExecutionObservation,
    OpObservation,
    StatisticsStore,
    run_midquery,
)
from repro.workloads import build_clickstream


def op_obs(key, rows_out=100, udf_calls=40):
    return OpObservation(
        key=key,
        op_name=key,
        kind="map",
        rows_in=rows_out,
        rows_out=rows_out,
        udf_calls=udf_calls,
        cpu_per_call=1.0,
        disk_bytes=0.0,
    )


class TestRunIdDedupe:
    def test_stage_delta_then_whole_run_counts_each_op_once(self, make_store):
        store = make_store()
        delta = ExecutionObservation(
            plan_key="b(a)",
            seconds=1.0,
            ops=(op_obs("a"),),
            run_id="run-1",
            partial=True,
        )
        whole = ExecutionObservation(
            plan_key="b(a)",
            seconds=5.0,
            ops=(op_obs("a"), op_obs("b(a)", rows_out=10, udf_calls=10)),
            run_id="run-1",
        )
        store.ingest(delta)
        store.ingest(whole)

        reference = StatisticsStore()
        reference.ingest(
            ExecutionObservation(
                plan_key="b(a)",
                seconds=5.0,
                ops=(op_obs("a"), op_obs("b(a)", rows_out=10, udf_calls=10)),
            )
        )
        for key in ("a", "b(a)"):
            got, want = store.nodes[key], reference.nodes[key]
            assert got.runs == want.runs == 1
            assert got.rows_out == want.rows_out
            assert got.udf_calls == want.udf_calls
        assert store.plans["b(a)"].seconds == 5.0
        assert store.plans["b(a)"].runs == 1

    def test_without_run_id_repeated_ingests_still_aggregate(self):
        """Distinct executions (no run id) keep the pre-existing EMA
        behavior: every ingest counts."""
        store = StatisticsStore()
        observation = ExecutionObservation(
            plan_key="a", seconds=1.0, ops=(op_obs("a"),)
        )
        store.ingest(observation)
        store.ingest(observation)
        assert store.nodes["a"].runs == 2

    def test_distinct_runs_are_not_deduped_against_each_other(self):
        store = StatisticsStore()
        for run in ("run-1", "run-2"):
            store.ingest(
                ExecutionObservation(
                    plan_key="a",
                    seconds=1.0,
                    ops=(op_obs("a"),),
                    run_id=run,
                )
            )
        assert store.nodes["a"].runs == 2

    def test_partial_observations_never_record_plan_runtimes(self):
        store = StatisticsStore()
        store.ingest(
            ExecutionObservation(
                plan_key="a",
                seconds=123.0,
                ops=(op_obs("a"),),
                run_id="run-1",
                partial=True,
            )
        )
        assert store.plans == {}
        assert store.nodes["a"].runs == 1

    def test_dedupe_state_survives_round_trip(self):
        """The (signature, run-id) dedupe map is persisted with the
        store, so a whole-run ingest cannot double-count a stage delta
        even when the two land through different processes."""
        store = StatisticsStore()
        store.ingest(
            ExecutionObservation(
                plan_key="a",
                seconds=1.0,
                ops=(op_obs("a"),),
                run_id="run-1",
                partial=True,
            )
        )
        reloaded = StatisticsStore.from_dict(store.to_dict())
        assert reloaded.nodes["a"].rows_out == store.nodes["a"].rows_out
        assert reloaded._run_ingested == {"run-1": {"a"}}
        # The reloaded store refuses to re-count the deduped operator.
        reloaded.ingest(
            ExecutionObservation(
                plan_key="a",
                seconds=5.0,
                ops=(op_obs("a"),),
                run_id="run-1",
            )
        )
        assert reloaded.nodes["a"].runs == 1


class TestStagedRunEndToEnd:
    def test_staged_execution_ingests_every_operator_exactly_once(self):
        """The full in-flight path: stage deltas land mid-run, the bulk
        ingest replays them plus the whole-run observation — and every
        operator of the plan still aggregates exactly one run."""
        workload = build_clickstream(ClickScale(sessions=250))
        store = StatisticsStore()
        run_midquery(workload, store=store, switch_threshold=math.inf)
        # Four UDF operators plus three source scans were executed; each
        # stage's delta was ingested in flight and then replayed by the
        # bulk ingest — every aggregate must still count exactly one run.
        assert len(store.nodes) == 4
        for key, stats in store.nodes.items():
            assert stats.runs == 1, key
        assert len(store.sources) == 3
        for source in store.sources.values():
            assert source.runs == 1
