"""Property: suffix re-planning never prices above keeping the suffix.

For random hint perturbations, mid-query re-planning at every boundary —
with the executed prefix pinned as exactly-counted materialized sources —
must never produce a best suffix whose estimated remaining cost exceeds
that of the currently running suffix flow: the running flow is always in
the enumerated closure, so the minimum over the ranking can only match
or beat it.  Alongside, every staged execution (switched or not) must
compute the same result set as the unswitched baseline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import UdfOperator
from repro.core.plan import body as plan_body, iter_nodes
from repro.datagen import ClickScale, TpchScale
from repro.feedback import run_midquery
from repro.optimizer import Hints
from repro.workloads import build_clickstream, build_q15

WORKLOADS = {
    "clickstream": build_clickstream(ClickScale(sessions=200)),
    "tpch_q15": build_q15(TpchScale(suppliers=30, customers=60, orders=300)),
}


def udf_op_names(workload):
    return sorted(
        n.op.name
        for n in iter_nodes(plan_body(workload.plan))
        if isinstance(n.op, UdfOperator)
    )


hint_values = st.builds(
    Hints,
    selectivity=st.one_of(
        st.none(), st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
    ),
    cpu_per_call=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    distinct_keys=st.one_of(st.none(), st.integers(min_value=1, max_value=50_000)),
)


@st.composite
def perturbations(draw):
    """A workload plus a random hint override for 1-3 of its operators."""
    name = draw(st.sampled_from(sorted(WORKLOADS)))
    ops = udf_op_names(WORKLOADS[name])
    changes = draw(
        st.dictionaries(st.sampled_from(ops), hint_values, min_size=1, max_size=3)
    )
    threshold = draw(st.sampled_from([1.0, 1.1, 2.0]))
    return name, changes, threshold


@given(perturbations())
@settings(max_examples=10, deadline=None)
def test_replanned_suffix_never_costs_more_than_the_kept_one(case):
    name, changes, threshold = case
    workload = WORKLOADS[name]
    hints = {**workload.hints, **changes}
    experiment = run_midquery(
        workload, hints=hints, switch_threshold=threshold
    )
    for decision in experiment.decisions:
        # Exact: the kept flow is one of the ranked alternatives, so the
        # rank-1 cost is <= its cost with no float slack needed.
        assert decision.best_cost <= decision.current_cost
    # And regardless of what was switched, the answer is the answer.
    assert experiment.records_match
