"""Property test: cross-process invalidation is exact and bit-identical.

Two processes share one sqlite statistics store.  The child ingests
random observations and exits; the parent's :meth:`StatisticsStore.sync`
must (a) return *exactly* the operator names whose estimator view the
foreign commit changed, and (b) leave the store in a state where
re-optimizing over the invalidated memo is bit-identical to a cold
rebuild reading the store fresh from disk — the same invariant the
single-process dirty-spine property test
(``tests/optimizer/test_memo_invalidation_property.py``) pins, now
across a process boundary and a persistence backend.
"""

import os
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotationMode
from repro.core.operators import Source, UdfOperator
from repro.core.plan import body as plan_body, iter_nodes, signature
from repro.feedback import FeedbackEstimator, StatisticsStore
from repro.feedback.observation import ExecutionObservation, OpObservation
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

WORKLOADS = {
    "tpch_q15": build_q15(),
    "clickstream": build_clickstream(),
    "textmining": build_textmining(),
    "tpch_q7": build_q7(),
}


def udf_op_names(workload):
    return sorted(
        n.op.name
        for n in iter_nodes(plan_body(workload.plan))
        if isinstance(n.op, UdfOperator)
    )


@st.composite
def foreign_ingests(draw):
    """A workload plus a random foreign observation over 1-3 of its ops."""
    name = draw(st.sampled_from(sorted(WORKLOADS)))
    ops = draw(
        st.lists(
            st.sampled_from(udf_op_names(WORKLOADS[name])),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    rows = draw(
        st.lists(
            st.integers(min_value=1, max_value=5000),
            min_size=len(ops),
            max_size=len(ops),
        )
    )
    return name, list(zip(ops, rows))


def _observation(measured):
    return ExecutionObservation(
        plan_key="foreign-plan",
        seconds=1.0,
        ops=tuple(
            OpObservation(
                key=f"foreign({name})",
                op_name=name,
                kind="map",
                rows_in=rows * 2,
                rows_out=rows,
                udf_calls=rows * 2,
                cpu_per_call=1.25,
                disk_bytes=0.0,
            )
            for name, rows in measured
        ),
    )


def _feedback_optimizer(workload, store):
    return Optimizer(
        workload.catalog,
        workload.hints,
        AnnotationMode.SCA,
        workload.params,
        estimator_factory=lambda ctx, hints: FeedbackEstimator(
            ctx, hints, store
        ),
    )


def assert_identical(got, want, estimator_got, estimator_want):
    assert got.plan_count == want.plan_count
    for g, w in zip(got.ranked, want.ranked):
        assert g.rank == w.rank
        assert signature(g.body) == signature(w.body)
        assert g.cost == w.cost  # exact float equality
        assert g.physical.describe() == w.physical.describe()
    for node in iter_nodes(got.best.body):
        if isinstance(node.op, Source):
            continue
        g = estimator_got.estimate(node)
        w = estimator_want.estimate(node)
        assert (g.rows, g.width, g.calls) == (w.rows, w.width, w.calls)


@given(foreign_ingests())
@settings(max_examples=10, deadline=None)
def test_foreign_commit_invalidates_exactly_and_reoptimizes_identically(case):
    name, measured = case
    workload = WORKLOADS[name]
    observation = _observation(measured)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp, "shared.sqlite")
        store = StatisticsStore.open(path)
        optimizer = _feedback_optimizer(workload, store)
        memo = optimizer.new_memo()
        optimizer.optimize(workload.plan, memo=memo)

        # The expected dirty set, computed on a replica: the fold is
        # deterministic, so the child's commit lands the same state.
        before = store.estimator_view()
        replica = StatisticsStore.from_dict(store.to_dict())
        replica.ingest(observation)
        after = replica.estimator_view()
        expected = frozenset(
            op
            for op in before.keys() | after.keys()
            if before.get(op) != after.get(op)
        )
        assert expected == frozenset(op for op, _ in measured)

        child = os.fork()
        if child == 0:  # pragma: no cover - exercised in the fork
            # The child must NOT touch the parent's inherited sqlite
            # connection: it opens the shared store independently.
            writer = StatisticsStore.open(path)
            writer.ingest(observation)
            os._exit(0)
        _, status = os.waitpid(child, 0)
        assert os.WEXITSTATUS(status) == 0

        # (a) sync reports exactly the foreign dirty set...
        changed = store.sync()
        assert changed == expected
        assert store.estimator_view() == after
        # ...and is idempotent once incorporated.
        assert store.sync() == frozenset()

        # (b) dirty-spine re-optimization over the synced store is
        # bit-identical to a cold rebuild reading the store from disk.
        memo.invalidate(set(changed))
        incremental = optimizer.optimize(workload.plan, memo=memo)
        cold_store = StatisticsStore.open(path)
        reference = _feedback_optimizer(workload, cold_store)
        full = reference.optimize(workload.plan)
        assert_identical(
            incremental,
            full,
            optimizer.last_estimator,
            reference.last_estimator,
        )
