"""The adaptive feedback loop: learning must help and never regress.

Pins the PR's acceptance behavior:

* on clickstream (stock workload, default scale) the default-hint pick is
  *not* the measured-fastest plan; one feedback round strictly reduces
  the median q-error and moves the pick to the measured-fastest plan;
* on every workload, feedback rounds never worsen the pick's
  measured-runtime rank, and the loop reaches a fixed point;
* with feedback disabled the optimizer and experiment harness are
  bit-identical to the feedback-free path.
"""

import pytest

from repro.bench import run_experiment
from repro.core import AnnotationMode
from repro.core.errors import FeedbackError
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.feedback import AdaptiveOptimizer, FeedbackEstimator, StatisticsStore
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)

SMALL_BUILDERS = {
    "tpch_q7": lambda: build_q7(SMALL_TPCH),
    "tpch_q15": lambda: build_q15(SMALL_TPCH),
    "clickstream": lambda: build_clickstream(ClickScale(sessions=250)),
    "textmining": lambda: build_textmining(CorpusScale(documents=250)),
}


class TestFeedbackImprovesThePick:
    def test_clickstream_round1_fixes_the_mispick(self):
        """Default hints mis-rank clickstream: the estimated-cheapest plan
        is measured second-fastest.  Round 1 must correct the pick."""
        workload = build_clickstream()
        report = AdaptiveOptimizer(workload, picks=5).run(feedback_rounds=1)
        round0, round1 = report.rounds[0], report.rounds[1]

        # Round 0 is the feedback-free baseline: estimator's rank-1 plan.
        assert round0.pick is round0.optimization.best
        assert round0.pick_measured_rank > 1  # the mis-pick the paper-style
        # hints produce on this workload
        # One feedback round: estimates tighten strictly...
        assert round1.qerror.median < round0.qerror.median
        assert round1.qerror.max <= round0.qerror.max
        # ...and the deployed pick becomes the measured-fastest plan.
        assert round1.pick_measured_rank == 1
        assert round1.pick_seconds < round0.pick_seconds

    @pytest.mark.parametrize("name", sorted(SMALL_BUILDERS))
    def test_feedback_never_worsens_the_pick(self, name):
        workload = SMALL_BUILDERS[name]()
        report = AdaptiveOptimizer(workload, picks=5).run(feedback_rounds=2)
        round0 = report.rounds[0]
        final = report.final
        assert final.pick_measured_rank <= round0.pick_measured_rank
        assert final.pick_seconds <= round0.pick_seconds
        assert final.qerror.median <= round0.qerror.median

    def test_loop_reaches_fixed_point(self, make_store):
        workload = SMALL_BUILDERS["tpch_q15"]()
        report = AdaptiveOptimizer(
            workload, store=make_store(), picks=5
        ).run(feedback_rounds=5)
        assert report.converged
        # Fixed point well before the round limit: identical data can't
        # keep teaching the estimator new statistics.
        assert len(report.rounds) <= 3

    def test_negative_rounds_rejected(self):
        workload = SMALL_BUILDERS["tpch_q15"]()
        with pytest.raises(FeedbackError, match="feedback_rounds"):
            AdaptiveOptimizer(workload).run(feedback_rounds=-1)


class TestFeedbackDisabledParity:
    @pytest.mark.parametrize("name", ["clickstream", "tpch_q15"])
    def test_cold_feedback_estimator_is_bit_identical(self, name):
        """An empty store must not perturb estimation: same ranked plan
        list, same costs, bit-for-bit."""
        workload = SMALL_BUILDERS[name]()
        plain = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        fed = Optimizer(
            workload.catalog,
            workload.hints,
            AnnotationMode.SCA,
            workload.params,
            estimator_factory=lambda ctx, hints: FeedbackEstimator(
                ctx, hints, StatisticsStore()
            ),
        ).optimize(workload.plan)
        assert [p.body for p in plain.ranked] == [p.body for p in fed.ranked]
        assert [p.cost for p in plain.ranked] == [p.cost for p in fed.ranked]
        assert [p.physical.describe() for p in plain.ranked] == [
            p.physical.describe() for p in fed.ranked
        ]

    def test_run_experiment_without_feedback_is_unchanged(self):
        """``feedback_rounds=0`` with no store takes the legacy code path
        and produces the legacy outcome exactly."""
        workload = SMALL_BUILDERS["clickstream"]()
        legacy = run_experiment(workload, picks=5)
        gated = run_experiment(workload, picks=5, feedback_rounds=0)
        assert gated.feedback is None
        assert [p.rank for p in gated.executed] == [p.rank for p in legacy.executed]
        assert [p.estimated_cost for p in gated.executed] == [
            p.estimated_cost for p in legacy.executed
        ]
        assert [p.runtime_seconds for p in gated.executed] == [
            p.runtime_seconds for p in legacy.executed
        ]

    def test_run_experiment_with_feedback_reports_rounds(self):
        workload = SMALL_BUILDERS["tpch_q15"]()
        outcome = run_experiment(workload, picks=3, feedback_rounds=1)
        assert outcome.feedback is not None
        assert len(outcome.feedback.rounds) >= 1
        assert outcome.optimization is outcome.feedback.final.optimization
        # Executed plans still cover the rank-picked figure protocol.
        assert outcome.executed[0].rank == 1
