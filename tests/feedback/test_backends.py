"""The persistence layer under the statistics store.

Covers the :class:`~repro.feedback.backends.StatsBackend` contract both
implementations must honor — generation counters, optimistic-conflict
detection, transactional commits — plus each backend's own guarantees:
atomic (torn-write-safe) JSON replacement with crash recovery, and
sqlite schema migrations from a hand-crafted v1 database.
"""

import json
import os
import signal
import sqlite3

import pytest

from repro.core.errors import FeedbackError
from repro.feedback import (
    BackendConflict,
    CommitDelta,
    JsonBackend,
    SqliteBackend,
    StatisticsStore,
    StatsBackend,
    open_backend,
    sniff_backend,
)
from repro.feedback.backends.json_backend import write_json_atomic
from repro.feedback.backends.sqlite_backend import SCHEMA_VERSION
from repro.feedback.observation import ExecutionObservation, OpObservation


def obs(key="k1", rows_out=40, seconds=2.0, run_id=None, wall=0.0):
    return ExecutionObservation(
        plan_key="p1",
        seconds=seconds,
        ops=(
            OpObservation(
                key=key,
                op_name=key,
                kind="map",
                rows_in=100,
                rows_out=rows_out,
                udf_calls=100,
                cpu_per_call=1.5,
                disk_bytes=0.0,
            ),
        ),
        run_id=run_id,
        wall_seconds=wall,
    )


class TestSniffing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("stats.json", "json"),
            ("stats.sqlite", "sqlite"),
            ("stats.sqlite3", "sqlite"),
            ("stats.db", "sqlite"),
            ("stats.SQLITE", "sqlite"),
            ("stats", "json"),
            ("stats.txt", "json"),
        ],
    )
    def test_extension_sniffing(self, name, expected):
        assert sniff_backend(name) == expected

    def test_explicit_name_overrides_extension(self, tmp_path):
        backend = open_backend(tmp_path / "stats.json", "sqlite")
        assert isinstance(backend, SqliteBackend)
        backend.close()

    def test_unknown_backend_name_rejected(self, tmp_path):
        with pytest.raises(FeedbackError, match="unknown statistics backend"):
            open_backend(tmp_path / "stats.json", "parquet")

    def test_both_backends_satisfy_the_protocol(self, tmp_path):
        assert isinstance(JsonBackend(tmp_path / "a.json"), StatsBackend)
        sqlite_backend = SqliteBackend(tmp_path / "a.sqlite")
        assert isinstance(sqlite_backend, StatsBackend)
        sqlite_backend.close()


@pytest.fixture(params=["json", "sqlite"])
def backend(request, tmp_path):
    backend = open_backend(tmp_path / f"stats.{request.param}", request.param)
    yield backend
    backend.close()


class TestBackendContract:
    def test_fresh_backend_loads_empty_at_generation_zero(self, backend):
        payload, generation = backend.load()
        assert payload is None
        assert generation == 0
        assert backend.generation() == 0

    def test_commit_bumps_generation_and_round_trips(self, backend):
        store = StatisticsStore()
        delta = store._fold(obs())
        generation = backend.commit(store.to_dict(), delta, 0)
        assert generation == 1
        payload, loaded_generation = backend.load()
        assert loaded_generation == 1
        assert StatisticsStore.from_dict(payload).to_dict() == store.to_dict()

    def test_stale_expectation_conflicts_and_changes_nothing(self, backend):
        store = StatisticsStore()
        delta = store._fold(obs())
        backend.commit(store.to_dict(), delta, 0)
        before = backend.load()
        with pytest.raises(BackendConflict):
            backend.commit(store.to_dict(), delta, 0)  # stale: now at 1
        assert backend.load() == before

    def test_store_ingest_retries_through_conflicts(self, backend):
        a = StatisticsStore.open(backend.path)
        b = StatisticsStore.open(backend.path)
        a.ingest(obs(rows_out=10))
        b.ingest(obs(rows_out=90))  # conflicts, reloads, re-folds
        a.sync()
        assert a.version == b.version == 2
        assert a.estimator_view() == b.estimator_view()
        # EMA folded both observations in commit order: 10 then 90.
        assert a.nodes["k1"].rows_out == 0.5 * 90 + 0.5 * 10

    def test_generation_counts_commits_from_any_writer(self, backend):
        a = StatisticsStore.open(backend.path)  # creation commit: gen 1
        b = StatisticsStore.open(backend.path)
        for i in range(3):
            (a if i % 2 else b).ingest(obs(rows_out=i))
        assert backend.generation() == 4  # 1 creation + 3 ingests

    def test_run_dedupe_map_is_persisted(self, backend):
        writer = StatisticsStore.open(backend.path)
        writer.ingest(obs(run_id="run-7", seconds=1.0))
        reader = StatisticsStore.open(backend.path)
        assert reader._run_ingested == {"run-7": {"k1"}}
        reader.ingest(obs(run_id="run-7", rows_out=999))
        assert reader.nodes["k1"].runs == 1  # deduped across processes


class TestAtomicJsonWrites:
    def test_write_lands_complete_or_not_at_all(self, tmp_path):
        path = tmp_path / "stats.json"
        write_json_atomic(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert list(tmp_path.iterdir()) == [path]  # no tmp litter

    def test_crash_between_write_and_replace_keeps_old_state(self, tmp_path):
        """Kill the writer after the temp file is written but before the
        atomic rename: the store file must still hold the previous state
        and reload cleanly."""
        path = tmp_path / "stats.json"
        store = StatisticsStore.open(path)
        store.ingest(obs(rows_out=10))
        good = path.read_text()

        child = os.fork()
        if child == 0:  # pragma: no cover - exercised in the fork
            # Crash at the worst instant: after fsync, before replace.
            os.replace = lambda *_: os.kill(os.getpid(), signal.SIGKILL)
            reopened = StatisticsStore.open(path)
            reopened.ingest(obs(rows_out=999))
            os._exit(0)  # unreachable
        _, status = os.waitpid(child, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

        assert path.read_text() == good
        survivor = StatisticsStore.open(path)
        assert survivor.nodes["k1"].rows_out == 10.0

    def test_torn_file_raises_clean_feedback_error(self, tmp_path):
        """A simulated torn write (truncated JSON, as the seed's
        ``write_text`` could leave behind) fails loudly, not obscurely."""
        path = tmp_path / "stats.json"
        StatisticsStore().save(path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(FeedbackError, match="not valid JSON"):
            StatisticsStore.load(path)
        with pytest.raises(FeedbackError, match="not valid JSON"):
            StatisticsStore.open(path)

    def test_plain_save_export_opens_as_generation_zero(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatisticsStore()
        store.ingest(obs())
        store.save(path)  # backend-less export: no generation key
        attached = StatisticsStore.open(path)
        assert attached.generation == 0
        assert attached.estimator_view() == store.estimator_view()


class TestSqliteMigrations:
    def _make_v1_db(self, path):
        """A database exactly as schema v1 would have written it."""
        con = sqlite3.connect(path)
        con.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        con.execute(
            "CREATE TABLE nodes (key TEXT PRIMARY KEY, op_name TEXT NOT NULL,"
            " kind TEXT NOT NULL, rows_in REAL NOT NULL, rows_out REAL NOT"
            " NULL, udf_calls REAL NOT NULL, cpu_per_call REAL NOT NULL,"
            " runs INTEGER NOT NULL, last_seen INTEGER NOT NULL)"
        )
        con.execute(
            "CREATE TABLE sources (name TEXT PRIMARY KEY, rows REAL NOT NULL,"
            " scan_bytes REAL NOT NULL, runs INTEGER NOT NULL,"
            " last_seen INTEGER NOT NULL)"
        )
        con.execute(
            "CREATE TABLE plans (key TEXT PRIMARY KEY, seconds REAL NOT NULL,"
            " runs INTEGER NOT NULL, last_seen INTEGER NOT NULL)"
        )
        con.execute(
            "INSERT INTO nodes VALUES ('k1','k1','map',100,40,100,1.5,1,1)"
        )
        con.execute("INSERT INTO plans VALUES ('p1', 2.0, 1, 1)")
        con.executemany(
            "INSERT INTO meta VALUES (?,?)",
            [
                ("generation", "1"),
                ("version", "1"),
                ("decay", "0.5"),
                ("staleness_horizon", "null"),
            ],
        )
        con.execute("PRAGMA user_version = 1")
        con.commit()
        con.close()

    def test_v1_database_upgrades_in_place(self, tmp_path):
        path = tmp_path / "old.sqlite"
        self._make_v1_db(path)
        store = StatisticsStore.open(path)
        assert store.version == 1
        assert store.nodes["k1"].rows_out == 40.0
        # The migrated plans gained wall columns with empty defaults.
        assert store.plans["p1"].seconds == 2.0
        assert store.plans["p1"].wall_runs == 0
        assert store.plan_wall_seconds("p1") is None
        con = sqlite3.connect(path)
        (user_version,) = con.execute("PRAGMA user_version").fetchone()
        con.close()
        assert user_version == SCHEMA_VERSION

    def test_migrated_store_keeps_learning(self, tmp_path):
        path = tmp_path / "old.sqlite"
        self._make_v1_db(path)
        store = StatisticsStore.open(path)
        store.ingest(obs(rows_out=90, wall=0.25))
        reloaded = StatisticsStore.open(path)
        assert reloaded.nodes["k1"].rows_out == 0.5 * 90 + 0.5 * 40
        assert reloaded.plan_wall_seconds("p1") == 0.25

    def test_newer_schema_than_this_build_fails_loudly(self, tmp_path):
        path = tmp_path / "future.sqlite"
        con = sqlite3.connect(path)
        con.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        con.commit()
        con.close()
        with pytest.raises(FeedbackError, match="newer than this build"):
            SqliteBackend(path)

    def test_fresh_database_walks_the_whole_chain(self, tmp_path):
        backend = SqliteBackend(tmp_path / "fresh.sqlite")
        (user_version,) = backend._con.execute(
            "PRAGMA user_version"
        ).fetchone()
        assert user_version == SCHEMA_VERSION
        (mode,) = backend._con.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        backend.close()


class TestMigrateAcrossBackends:
    @pytest.mark.parametrize(
        "src_suffix,dst_suffix",
        [(".json", ".sqlite"), (".sqlite", ".json")],
    )
    def test_migration_is_lossless_both_ways(
        self, tmp_path, src_suffix, dst_suffix
    ):
        source = StatisticsStore.open(tmp_path / f"src{src_suffix}")
        source.ingest(obs(rows_out=10, run_id="run-1", wall=0.5))
        source.ingest(obs(key="k2", rows_out=77, seconds=9.0))
        migrated = source.migrate_to(tmp_path / f"dst{dst_suffix}")
        assert migrated.estimator_view() == source.estimator_view()
        assert migrated.to_dict() == source.to_dict()
        assert migrated._run_ingested == source._run_ingested
        assert migrated.plan_wall_seconds("p1") == source.plan_wall_seconds(
            "p1"
        )
