"""Mid-query re-optimization: switching behavior and integration.

The headline scenario: a deliberately mis-hinted workload picks the
wrong plan, executes its first stages, and the controller — armed with
the exact cardinalities observed at the boundary — switches to a better
suffix, beating the no-switch baseline end-to-end while producing the
identical result set.
"""

import math

import pytest

from repro.core import AnnotationMode
from repro.core.errors import FeedbackError
from repro.datagen import ClickScale
from repro.feedback import (
    AdaptiveOptimizer,
    FeedbackEstimator,
    MidQueryReoptimizer,
    StatisticsStore,
    run_midquery,
)
from repro.optimizer import Hints, Optimizer
from repro.workloads import build_clickstream

#: The buy filter actually forwards whole buying sessions (several rows
#: per group); hinting it as near-annihilating with a handful of sessions
#: makes the optimizer bet on a tiny intermediate and mis-pick.
MISLEADING_BUY_HINT = Hints(selectivity=0.05, cpu_per_call=3.0, distinct_keys=10)


def mis_hinted(scale=None):
    workload = build_clickstream(scale)
    hints = dict(workload.hints)
    hints["filter_buy_sessions"] = MISLEADING_BUY_HINT
    return workload, hints


class TestMisHintedRecovery:
    @pytest.fixture(scope="class")
    def experiment(self):
        workload, hints = mis_hinted()
        return run_midquery(workload, hints=hints, switch_threshold=1.1)

    def test_the_wrong_plan_is_corrected_at_a_stage_boundary(self, experiment):
        switches = [d for d in experiment.decisions if d.switched]
        assert len(switches) == 1
        (switch,) = switches
        # The correction lands at the first boundary where new information
        # exists: right after the mis-hinted operator itself executed.
        assert switch.stage_name == "filter_buy_sessions"
        assert "filter_buy_sessions" in switch.changed_ops
        assert switch.best_cost < switch.current_cost

    def test_end_to_end_modeled_time_improves(self, experiment):
        assert experiment.adaptive_seconds < experiment.baseline_seconds
        assert experiment.modeled_speedup > 2.0  # ~6.7x measured

    def test_switched_run_produces_the_identical_result_set(self, experiment):
        assert experiment.records_match

    def test_describe_mentions_the_switch(self, experiment):
        text = experiment.describe()
        assert "SWITCHED" in text
        assert "mid-query" in text

    def test_no_boundary_prices_the_replanned_suffix_above_the_kept_one(
        self, experiment
    ):
        for decision in experiment.decisions:
            assert decision.best_cost <= decision.current_cost


class TestThresholdSemantics:
    def test_inf_threshold_is_bit_identical_to_baseline(self):
        workload, hints = mis_hinted(ClickScale(sessions=250))
        experiment = run_midquery(
            workload, hints=hints, switch_threshold=math.inf
        )
        assert not experiment.switched
        assert experiment.adaptive_seconds == experiment.baseline_seconds
        assert experiment.adaptive.records == experiment.baseline.records
        assert (
            experiment.adaptive.report.per_op
            == experiment.baseline.report.per_op
        )

    def test_high_threshold_suppresses_a_marginal_switch(self):
        workload, hints = mis_hinted(ClickScale(sessions=250))
        experiment = run_midquery(workload, hints=hints, switch_threshold=1e9)
        assert not experiment.switched

    @pytest.mark.parametrize("bad", [-0.5, float("nan")])
    def test_invalid_thresholds_fail_loudly(self, bad):
        workload = build_clickstream(ClickScale(sessions=250))
        with pytest.raises(FeedbackError, match="switch_threshold"):
            MidQueryReoptimizer(
                workload.catalog,
                workload.hints,
                switch_threshold=bad,
            )


class TestLearningTransfer:
    def test_observations_are_keyed_like_ordinary_plans(self, make_store):
        """Stats learned across a switch must transfer to future full-plan
        optimizations: no synthetic boundary name may leak into the store."""
        workload, hints = mis_hinted(ClickScale(sessions=250))
        store = make_store()
        run_midquery(workload, hints=hints, store=store, switch_threshold=1.1)
        assert store.nodes  # the run actually learned something
        for key in store.nodes:
            assert "stage:" not in key
        for name in store.sources:
            assert "stage:" not in name

    def test_store_learned_mid_query_fixes_the_next_optimization(
        self, make_store
    ):
        """What a switched run learned must re-rank the next cold
        optimization onto the good plan."""
        workload, hints = mis_hinted(ClickScale(sessions=250))
        store = make_store()
        experiment = run_midquery(
            workload, hints=hints, store=store, switch_threshold=1.1
        )
        assert experiment.switched
        relearned = Optimizer(
            workload.catalog,
            hints,
            AnnotationMode.SCA,
            workload.params,
            estimator_factory=lambda ctx, h: FeedbackEstimator(ctx, h, store),
        ).optimize(workload.plan)
        plain = Optimizer(
            workload.catalog, hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        # The mis-hinted pick is estimated cheaper without learning, and
        # the learned pick executes faster than the mis-hinted one did.
        assert relearned.best.body is not plain.best.body

    def test_caller_catalog_is_never_polluted(self):
        workload, hints = mis_hinted(ClickScale(sessions=250))
        before = set(workload.catalog._sources)
        run_midquery(workload, hints=hints, switch_threshold=0.0)
        assert set(workload.catalog._sources) == before


class TestAdaptiveIntegration:
    def test_round_zero_deployment_recovers_mid_run(self):
        """Under the adaptive loop, the deployed pick of the cold round
        executes with in-flight re-optimization: the mis-pick is corrected
        *during* round 0, not one full execution later."""
        workload, hints = mis_hinted(ClickScale(sessions=250))
        workload.hints = hints
        plain = AdaptiveOptimizer(workload, store=StatisticsStore(), picks=3)
        adaptive = AdaptiveOptimizer(
            workload,
            store=StatisticsStore(),
            picks=3,
            midquery=True,
            switch_threshold=1.1,
        )
        cold = plain._run_round(0)
        fixed = adaptive._run_round(0)
        assert any(d.switched for d in fixed.midquery)
        assert fixed.pick_seconds < cold.pick_seconds

    def test_midquery_disabled_rounds_record_no_decisions(self, make_store):
        workload = build_clickstream(ClickScale(sessions=250))
        adaptive = AdaptiveOptimizer(workload, store=make_store(), picks=2)
        report = adaptive.run(0)
        assert report.rounds[0].midquery == []

    def test_midquery_requires_streaming(self):
        workload = build_clickstream(ClickScale(sessions=250))
        with pytest.raises(FeedbackError, match="streaming"):
            AdaptiveOptimizer(workload, streaming=False, midquery=True)
