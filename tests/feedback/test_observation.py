"""ObservationCollector semantics: signature keying, kinds, derived stats."""

from repro.core import AnnotationMode
from repro.core.plan import body, iter_nodes, signature_key
from repro.datagen import TpchScale
from repro.engine import Engine
from repro.feedback import ObservationCollector
from repro.optimizer import Optimizer
from repro.workloads import build_q15

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)


def _setup():
    workload = build_q15(SMALL_TPCH)
    result = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    return workload, result


class TestSignatureKeys:
    def test_key_is_injective_rendering_of_the_signature(self):
        workload, result = _setup()
        flow = body(workload.plan)
        keys = {signature_key(n) for n in iter_nodes(flow)}
        assert len(keys) == len(list(iter_nodes(flow)))
        root_key = signature_key(flow)
        assert "join_s_rev(" in root_key and "lineitem" in root_key

    def test_observation_keys_match_logical_nodes(self):
        workload, result = _setup()
        collector = ObservationCollector()
        engine = Engine(workload.params, workload.true_costs, collector=collector)
        engine.execute(result.best.physical, workload.data)
        (execution,) = collector.executions
        want = {
            signature_key(n)
            for n in iter_nodes(result.best.body)
        }
        got = {op.key for op in execution.ops}
        # Every observed op keys to a node of the executed body (the sink
        # contributes no observation).
        assert got <= want
        assert execution.plan_key == signature_key(result.best.body)

    def test_same_logical_subflow_same_key_across_physical_plans(self):
        """Observations transfer: physically different plans of the same
        logical flow produce identical keys and identical rows_out."""
        workload, result = _setup()
        collector = ObservationCollector()
        engine = Engine(
            workload.params,
            workload.true_costs,
            collector=collector,
        )
        for plan in result.ranked:
            engine.execute(plan.physical, workload.data)
        by_key = {}
        for execution in collector.executions:
            for op in execution.ops:
                by_key.setdefault(op.key, set()).add(
                    (op.rows_out, op.udf_calls)
                )
        # rows_out and udf_calls are physical-plan-invariant per key.
        for key, values in by_key.items():
            assert len(values) == 1, key


class TestDerivedQuantities:
    def test_kinds_selectivity_and_distinct_keys(self):
        workload, result = _setup()
        collector = ObservationCollector()
        engine = Engine(workload.params, workload.true_costs, collector=collector)
        engine.execute(result.best.physical, workload.data)
        (execution,) = collector.executions
        by_name = {op.op_name: op for op in execution.ops}
        sigma = by_name["sigma_shipdate_q15"]
        assert sigma.kind == "map"
        assert sigma.selectivity == sigma.rows_out / sigma.udf_calls
        assert sigma.distinct_keys is None  # maps have no key groups
        gamma = by_name["gamma_supplier_revenue"]
        assert gamma.kind == "reduce"
        assert gamma.distinct_keys == gamma.udf_calls  # one call per group
        scan = by_name["lineitem"]
        assert scan.kind == "source"
        assert scan.disk_bytes > 0  # learned scan volume for width stats
        assert scan.selectivity is None  # scans make no UDF calls

    def test_latest_observation_wins_per_key(self):
        workload, result = _setup()
        collector = ObservationCollector()
        engine = Engine(workload.params, workload.true_costs, collector=collector)
        engine.execute(result.best.physical, workload.data)
        engine.execute(result.best.physical, workload.data)
        assert len(collector.executions) == 2
        latest = collector.op_observations()
        assert latest  # deduplicated by signature key
        for op in collector.executions[-1].ops:
            assert latest[op.key] == op
        collector.clear()
        assert not collector.executions
