"""StatisticsStore persistence: persist -> reload -> re-optimize must be
deterministic, and malformed stores must fail with clear errors."""


import pytest

from repro.core import AnnotationMode
from repro.core.errors import FeedbackError
from repro.datagen import TpchScale
from repro.engine import Engine
from repro.feedback import (
    FeedbackEstimator,
    ObservationCollector,
    StatisticsStore,
)
from repro.optimizer import Optimizer
from repro.workloads import build_q15

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)


@pytest.fixture(scope="module")
def warm_store():
    """A store warmed by executing every ranked Q15 plan once."""
    workload = build_q15(SMALL_TPCH)
    result = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    collector = ObservationCollector()
    engine = Engine(
        workload.params,
        workload.true_costs,
        reuse_subtree_results=True,
        collector=collector,
    )
    for plan in result.ranked:
        engine.execute(plan.physical, workload.data)
    store = StatisticsStore()
    for execution in collector.executions:
        store.ingest(execution)
    return workload, store


def _optimize_with(workload, store):
    return Optimizer(
        workload.catalog,
        workload.hints,
        AnnotationMode.SCA,
        workload.params,
        estimator_factory=lambda ctx, hints: FeedbackEstimator(ctx, hints, store),
    ).optimize(workload.plan)


class TestRoundTrip:
    def test_reloaded_store_reoptimizes_identically(self, tmp_path, warm_store):
        workload, store = warm_store
        path = tmp_path / "stats.json"
        store.save(path)
        reloaded = StatisticsStore.load(path)

        first = _optimize_with(workload, store)
        second = _optimize_with(workload, reloaded)
        # Same ranked plan list (logical bodies), same costs — exactly.
        assert [p.body for p in first.ranked] == [p.body for p in second.ranked]
        assert [p.cost for p in first.ranked] == [p.cost for p in second.ranked]
        assert [p.physical.describe() for p in first.ranked] == [
            p.physical.describe() for p in second.ranked
        ]

    def test_json_round_trip_is_lossless(self, tmp_path, warm_store):
        _, store = warm_store
        path = tmp_path / "stats.json"
        store.save(path)
        reloaded = StatisticsStore.load(path)
        assert reloaded.to_dict() == store.to_dict()
        # Saving the reload produces byte-identical JSON (sorted keys).
        path2 = tmp_path / "stats2.json"
        reloaded.save(path2)
        assert path.read_text() == path2.read_text()

    def test_learned_views_survive_the_round_trip(self, tmp_path, warm_store):
        _, store = warm_store
        path = tmp_path / "stats.json"
        store.save(path)
        reloaded = StatisticsStore.load(path)
        assert reloaded.learned_hints() == store.learned_hints()
        got = {n: s.row_count for n, s in reloaded.source_overrides().items()}
        want = {n: s.row_count for n, s in store.source_overrides().items()}
        assert got == want
        for key, plan in store.plans.items():
            assert reloaded.plan_seconds(key) == plan.seconds

    def test_open_creates_fresh_then_loads(self, tmp_path, warm_store):
        _, store = warm_store
        path = tmp_path / "stats.json"
        fresh = StatisticsStore.open(path)
        assert fresh.version == 0 and not fresh.nodes
        store.save(path)
        warm = StatisticsStore.open(path)
        assert warm.to_dict() == store.to_dict()


class TestMalformedStores:
    def test_invalid_json_raises_feedback_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FeedbackError, match="not valid JSON"):
            StatisticsStore.load(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(FeedbackError, match="JSON object"):
            StatisticsStore.load(path)

    def test_missing_fields_rejected(self):
        with pytest.raises(FeedbackError, match="malformed"):
            StatisticsStore.from_dict({"format": 1})

    def test_unknown_format_rejected(self):
        with pytest.raises(FeedbackError, match="format"):
            StatisticsStore.from_dict({"format": 99})

    def test_bad_decay_rejected(self):
        with pytest.raises(FeedbackError, match="decay"):
            StatisticsStore(decay=0.0)

    def test_negative_staleness_horizon_rejected(self):
        """A negative horizon would mark even just-ingested entries stale
        and silently disable all learning."""
        with pytest.raises(FeedbackError, match="staleness_horizon"):
            StatisticsStore(staleness_horizon=-1)


class TestDataFingerprint:
    def test_store_from_other_scale_rejected(self, warm_store):
        """Warm-starting against rescaled data must fail loudly: the
        store's signature keys are scale-blind, so its learned stats and
        measured runtimes would silently mislead the optimizer."""
        _, store = warm_store
        bigger = build_q15(
            TpchScale(suppliers=40, customers=80, orders=400), scale_factor=2.0
        )
        from repro.feedback import AdaptiveOptimizer

        with pytest.raises(FeedbackError, match="different data"):
            AdaptiveOptimizer(bigger, store=store)

    def test_store_from_same_data_accepted(self, warm_store):
        workload, store = warm_store
        store.check_compatible(workload.catalog)  # no raise

    def test_foreign_sources_are_ignored(self, warm_store):
        """A store may accumulate several workloads: sources the current
        catalog does not know are not part of the fingerprint."""
        from repro.workloads import build_textmining
        from repro.datagen import CorpusScale

        _, store = warm_store
        other = build_textmining(CorpusScale(documents=50))
        store.check_compatible(other.catalog)  # disjoint sources: no raise


class TestDecayAndStaleness:
    def test_ema_tracks_drifting_observations(self):
        store = StatisticsStore(decay=0.5)
        from repro.feedback.observation import ExecutionObservation, OpObservation

        def obs(rows):
            return ExecutionObservation(
                plan_key="p",
                seconds=1.0,
                ops=(
                    OpObservation(
                        key="k",
                        op_name="op",
                        kind="map",
                        rows_in=rows,
                        rows_out=rows,
                        udf_calls=rows,
                        cpu_per_call=1.0,
                        disk_bytes=0.0,
                    ),
                ),
            )

        store.ingest(obs(100))
        assert store.node_stats("k").rows_out == 100.0
        store.ingest(obs(200))
        # EMA with weight 0.5: halfway toward the new observation.
        assert store.node_stats("k").rows_out == 150.0

    def test_stale_entries_drop_out_of_learned_views(self):
        from repro.feedback.observation import ExecutionObservation, OpObservation

        store = StatisticsStore(staleness_horizon=2)
        old = ExecutionObservation(
            plan_key="old_plan",
            seconds=1.0,
            ops=(
                OpObservation(
                    key="old",
                    op_name="old_op",
                    kind="map",
                    rows_in=10,
                    rows_out=5,
                    udf_calls=10,
                    cpu_per_call=1.0,
                    disk_bytes=0.0,
                ),
            ),
        )
        fresh = ExecutionObservation(plan_key="new_plan", seconds=2.0, ops=())
        store.ingest(old)
        assert store.node_stats("old") is not None
        assert "old_op" in store.learned_hints()
        for _ in range(3):
            store.ingest(fresh)
        # Beyond the horizon: excluded from lookups and learned hints,
        # but retained in the store for a later revival.
        assert store.node_stats("old") is None
        assert store.plan_seconds("old_plan") is None
        assert "old_op" not in store.learned_hints()
        assert "old" in store.nodes
        assert store.plan_seconds("new_plan") == 2.0
