"""Backend parity: persistence must never change what is learned.

The acceptance bar of the backend split: with a single writer, the
entire feedback stack — EMA folds, estimator-view fingerprints,
adaptive-loop picks, q-error trajectories, mid-query switch decisions —
is **bit-identical** across an in-memory store, a JSON-backed store, and
a sqlite-backed store.  Any float drift (a REAL that round-trips
differently, an iteration-order change in the learned-hint folds) fails
these exact-equality assertions.
"""

import pytest

from repro.datagen import ClickScale, TpchScale
from repro.feedback import AdaptiveOptimizer, StatisticsStore, run_midquery
from repro.optimizer import Hints
from repro.workloads import build_clickstream, build_q15

SMALL_TPCH = TpchScale(suppliers=40, customers=80, orders=400)
BACKENDS = ("json", "sqlite")


def mis_hinted(scale=None):
    """Mis-hinted clickstream (same setup as the mid-query suite)."""
    workload = build_clickstream(scale)
    hints = dict(workload.hints)
    hints["filter_buy_sessions"] = Hints(
        selectivity=0.05, cpu_per_call=3.0, distinct_keys=10
    )
    return workload, hints


def _store_at(tmp_path, backend, tag=""):
    if backend == "memory":
        return StatisticsStore()
    suffix = ".json" if backend == "json" else ".sqlite"
    return StatisticsStore.open(tmp_path / f"stats-{backend}{tag}{suffix}")


def _adaptive_trace(workload, store, rounds=2):
    report = AdaptiveOptimizer(workload, store=store, picks=5).run(rounds)
    return [
        (
            r.index,
            r.pick.rank,
            r.pick.cost,
            r.pick_seconds,
            r.pick_measured_rank,
            r.qerror.median,
            r.qerror.max,
            r.converged,
        )
        for r in report.rounds
    ]


class TestAdaptiveLoopParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trajectory_is_bit_identical_to_memory(self, tmp_path, backend):
        reference = _adaptive_trace(
            build_clickstream(ClickScale(sessions=250)), StatisticsStore()
        )
        store = _store_at(tmp_path, backend)
        got = _adaptive_trace(
            build_clickstream(ClickScale(sessions=250)), store
        )
        assert got == reference

    def test_final_views_identical_across_all_backends(self, tmp_path):
        views = {}
        hints = {}
        for backend in ("memory", *BACKENDS):
            workload = build_q15(SMALL_TPCH)
            store = _store_at(tmp_path, backend)
            AdaptiveOptimizer(workload, store=store, picks=5).run(1)
            views[backend] = store.estimator_view()
            hints[backend] = store.learned_hints()
        assert views["json"] == views["memory"]
        assert views["sqlite"] == views["memory"]
        assert hints["json"] == hints["memory"]
        assert hints["sqlite"] == hints["memory"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_views_survive_reopen_bit_identically(self, tmp_path, backend):
        workload = build_q15(SMALL_TPCH)
        store = _store_at(tmp_path, backend)
        AdaptiveOptimizer(workload, store=store, picks=5).run(1)
        reopened = StatisticsStore.open(store.backend.path)
        assert reopened.estimator_view() == store.estimator_view()
        assert reopened.to_dict() == store.to_dict()
        for key in store.plans:
            assert reopened.plan_seconds(key) == store.plan_seconds(key)


class TestMidQueryParity:
    def test_switch_decisions_identical_across_backends(self, tmp_path):
        decisions = {}
        views = {}
        for backend in ("memory", *BACKENDS):
            workload, hints = mis_hinted(ClickScale(sessions=250))
            store = _store_at(tmp_path, backend)
            experiment = run_midquery(
                workload, hints=hints, store=store, switch_threshold=1.1
            )
            decisions[backend] = [
                (
                    d.stage_name,
                    d.switched,
                    d.current_cost,
                    d.best_cost,
                    tuple(sorted(d.changed_ops)),
                )
                for d in experiment.decisions
            ]
            views[backend] = store.estimator_view()
        assert decisions["json"] == decisions["memory"]
        assert decisions["sqlite"] == decisions["memory"]
        assert views["json"] == views["memory"]
        assert views["sqlite"] == views["memory"]
