"""Shared feedback fixtures.

``make_store`` parametrizes store-driven tests over every persistence
backend: a plain in-memory store (the seed behavior), a backend-attached
crash-safe JSON store, and a sqlite-WAL store.  Policy semantics are
pinned to be bit-identical across all three, so any test that holds for
one must hold for the others.
"""

import itertools

import pytest

from repro.feedback import StatisticsStore

_SUFFIX = {"json": ".json", "sqlite": ".sqlite"}


@pytest.fixture(params=["memory", "json", "sqlite"])
def make_store(request, tmp_path):
    """Factory building fresh stores on the parametrized backend."""
    counter = itertools.count()

    def make(**kwargs):
        if request.param == "memory":
            return StatisticsStore(**kwargs)
        path = tmp_path / f"stats-{next(counter)}{_SUFFIX[request.param]}"
        return StatisticsStore.open(path, **kwargs)

    make.backend = request.param
    return make
