"""End-to-end integration: optimize -> execute -> verify, per workload.

These are fast-scale versions of the Section 7 experiments; the benchmark
harness in benchmarks/ runs them at full scale.
"""

import pytest

from repro.bench import run_experiment
from repro.core import AnnotationMode, projected_approx_equal, evaluate
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.engine import Engine
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=30, customers=40, orders=200)


@pytest.fixture(scope="module")
def q15():
    return build_q15(SMALL_TPCH)


@pytest.fixture(scope="module")
def clicks():
    return build_clickstream(ClickScale(sessions=80))


@pytest.fixture(scope="module")
def mining():
    return build_textmining(CorpusScale(documents=60))


class TestOptimizerPipeline:
    def test_q15_ranked_plans(self, q15):
        result = Optimizer(q15.catalog, q15.hints, AnnotationMode.SCA).optimize(q15.plan)
        assert result.plan_count == 3
        costs = [p.cost for p in result.ranked]
        assert costs == sorted(costs)
        assert result.best.rank == 1
        assert result.rank_of(result.original_body) in (1, 2, 3)

    def test_picks_protocol(self, q15):
        result = Optimizer(q15.catalog, q15.hints, AnnotationMode.SCA).optimize(q15.plan)
        picks = result.picks(10)
        assert len(picks) == 3  # fewer plans than picks: take all
        assert picks[0].rank == 1
        assert picks[-1].rank == result.plan_count

    def test_enumeration_time_recorded(self, q15):
        result = Optimizer(q15.catalog, q15.hints, AnnotationMode.SCA).optimize(q15.plan)
        assert result.enumeration_seconds >= 0
        assert result.physical_seconds >= 0


class TestExecutedPlansMatchOracle:
    @pytest.mark.parametrize("mode", [AnnotationMode.SCA, AnnotationMode.MANUAL])
    def test_q15_every_plan(self, q15, mode):
        result = Optimizer(q15.catalog, q15.hints, mode).optimize(q15.plan)
        engine = Engine(q15.params, q15.true_costs)
        baseline = evaluate(q15.plan, q15.data)
        for plan in result.ranked:
            execution = engine.execute(plan.physical, q15.data)
            assert projected_approx_equal(
                execution.records, baseline, q15.sink_attrs
            )

    def test_clickstream_every_plan(self, clicks):
        result = Optimizer(
            clicks.catalog, clicks.hints, AnnotationMode.MANUAL
        ).optimize(clicks.plan)
        engine = Engine(clicks.params, clicks.true_costs)
        baseline = evaluate(clicks.plan, clicks.data)
        assert result.plan_count == 9
        for plan in result.ranked:
            execution = engine.execute(plan.physical, clicks.data)
            assert projected_approx_equal(
                execution.records, baseline, clicks.sink_attrs
            )

    def test_textmining_best_plan(self, mining):
        result = Optimizer(
            mining.catalog, mining.hints, AnnotationMode.SCA
        ).optimize(mining.plan)
        engine = Engine(mining.params, mining.true_costs)
        baseline = evaluate(mining.plan, mining.data)
        execution = engine.execute(result.best.physical, mining.data)
        assert projected_approx_equal(execution.records, baseline, mining.sink_attrs)


class TestHarness:
    def test_run_experiment_outcome(self, mining):
        outcome = run_experiment(mining, picks=5)
        assert outcome.plan_count == 24
        assert len(outcome.executed) == 5
        assert outcome.executed[0].rank == 1
        assert outcome.executed[-1].rank == 24
        assert outcome.norm_costs[0] == pytest.approx(1.0)
        assert outcome.norm_runtimes[0] == pytest.approx(1.0)
        assert outcome.runtime_spread >= 1.0

    def test_execute_all(self, q15):
        outcome = run_experiment(q15, execute_all=True)
        assert len(outcome.executed) == 3
        assert outcome.original_rank() is not None

    def test_render_figure(self, q15):
        from repro.bench import render_figure

        outcome = run_experiment(q15, execute_all=True)
        text = render_figure(outcome, "Q15 check")
        assert "plans enumerated: 3" in text
        assert "#" in text and "*" in text


class TestOptimizationWins:
    def test_textmining_best_beats_worst_substantially(self, mining):
        outcome = run_experiment(mining, picks=5)
        assert outcome.runtime_spread > 2.0

    def test_cost_correlates_with_runtime(self, mining):
        """The paper's validity check: higher estimates -> longer runtimes,
        on the whole (Spearman over the picked plans must be positive)."""
        outcome = run_experiment(mining, picks=8)
        costs = outcome.norm_costs
        times = outcome.norm_runtimes

        def ranks(values):
            order = sorted(range(len(values)), key=values.__getitem__)
            out = [0] * len(values)
            for rank, idx in enumerate(order):
                out[idx] = rank
            return out

        rc, rt = ranks(costs), ranks(times)
        n = len(rc)
        d2 = sum((a - b) ** 2 for a, b in zip(rc, rt))
        spearman = 1 - 6 * d2 / (n * (n**2 - 1))
        assert spearman > 0.5
