"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("tpch_q7", "tpch_q15", "clickstream", "textmining"):
        assert name in out


def test_analyze_sca(capsys):
    assert main(["analyze", "tpch_q15"]) == 0
    out = capsys.readouterr().out
    assert "sigma_shipdate_q15" in out
    assert "l.shipdate" in out  # derived read set rendered

def test_analyze_conservative_column(capsys):
    assert main(["analyze", "clickstream"]) == 0
    out = capsys.readouterr().out
    assert "filter_buy_sessions" in out
    assert "yes" in out  # the conservative fallback is visible


def test_enumerate_manual(capsys):
    assert main(["enumerate", "clickstream", "--mode", "manual"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("9 valid reordered data flows")


def test_enumerate_limit(capsys):
    assert main(["enumerate", "tpch_q7", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "more" in out


def test_experiment(capsys):
    assert main(["experiment", "tpch_q15", "--all"]) == 0
    out = capsys.readouterr().out
    assert "plans enumerated: 3" in out
    assert "runtime spread" in out


def test_experiment_with_feedback_rounds(capsys, tmp_path):
    store = tmp_path / "stats.json"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--feedback-rounds",
                "1",
                "--stats-store",
                str(store),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "adaptive optimization — tpch_q15" in out
    assert "round 0:" in out and "round 1:" in out
    assert "q-error median" in out
    assert store.exists()  # the store persisted for a warm start
    # Warm start: the saved store is accepted on a second run.
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--stats-store",
                str(store),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "round 0:" in out


def test_experiment_with_sqlite_store_sniffed_from_extension(
    capsys, tmp_path
):
    store = tmp_path / "stats.sqlite"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--feedback-rounds",
                "1",
                "--stats-store",
                str(store),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "round 0:" in out and "round 1:" in out
    assert store.exists()
    assert store.read_bytes().startswith(b"SQLite format 3")


def test_experiment_stats_backend_overrides_extension(capsys, tmp_path):
    store = tmp_path / "stats.json"  # sniffs json; the flag wins
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--feedback-rounds",
                "1",
                "--stats-store",
                str(store),
                "--stats-backend",
                "sqlite",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert store.read_bytes().startswith(b"SQLite format 3")


def test_stats_migrate_json_to_sqlite(capsys, tmp_path):
    src = tmp_path / "stats.json"
    dst = tmp_path / "stats.sqlite"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--feedback-rounds",
                "1",
                "--stats-store",
                str(src),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["stats", "migrate", str(src), str(dst)]) == 0
    out = capsys.readouterr().out
    assert "estimator view verified identical" in out
    # The migrated store warm-starts the adaptive loop.
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--stats-store",
                str(dst),
            ]
        )
        == 0
    )
    assert "round 0:" in capsys.readouterr().out


def test_stats_migrate_refuses_to_clobber_without_force(capsys, tmp_path):
    src = tmp_path / "stats.json"
    dst = tmp_path / "existing.sqlite"
    dst.touch()
    assert main(["stats", "migrate", str(src), str(dst)]) == 2
    assert "use --force" in capsys.readouterr().err


def test_stats_migrate_reports_unreadable_source(capsys, tmp_path):
    src = tmp_path / "torn.json"
    src.write_text('{"version": ')  # torn write
    dst = tmp_path / "out.sqlite"
    assert main(["stats", "migrate", str(src), str(dst)]) == 1
    assert "migration failed" in capsys.readouterr().err


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "nope"])


def test_experiment_warns_on_unknown_store_extension(capsys, tmp_path):
    """A typo'd extension must not *silently* fall back to JSON: the
    sniff warns (naming the path and the fallback) and still works."""
    store = tmp_path / "stats.sqlte"  # the classic typo
    with pytest.warns(UserWarning, match="unknown extension '.sqlte'"):
        assert (
            main(
                [
                    "experiment",
                    "tpch_q15",
                    "--picks",
                    "3",
                    "--feedback-rounds",
                    "1",
                    "--stats-store",
                    str(store),
                ]
            )
            == 0
        )
    capsys.readouterr()
    # The documented fallback still happened: a JSON store was written.
    assert store.read_text().lstrip().startswith("{")


def test_experiment_known_store_extensions_do_not_warn(
    capsys, tmp_path, recwarn
):
    for name in ("stats.json", "stats.sqlite"):
        assert (
            main(
                [
                    "experiment",
                    "tpch_q15",
                    "--picks",
                    "3",
                    "--feedback-rounds",
                    "1",
                    "--stats-store",
                    str(tmp_path / name),
                ]
            )
            == 0
        )
    capsys.readouterr()
    assert not [
        w for w in recwarn if "unknown extension" in str(w.message)
    ]
