"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("tpch_q7", "tpch_q15", "clickstream", "textmining"):
        assert name in out


def test_analyze_sca(capsys):
    assert main(["analyze", "tpch_q15"]) == 0
    out = capsys.readouterr().out
    assert "sigma_shipdate_q15" in out
    assert "l.shipdate" in out  # derived read set rendered

def test_analyze_conservative_column(capsys):
    assert main(["analyze", "clickstream"]) == 0
    out = capsys.readouterr().out
    assert "filter_buy_sessions" in out
    assert "yes" in out  # the conservative fallback is visible


def test_enumerate_manual(capsys):
    assert main(["enumerate", "clickstream", "--mode", "manual"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("9 valid reordered data flows")


def test_enumerate_limit(capsys):
    assert main(["enumerate", "tpch_q7", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "more" in out


def test_experiment(capsys):
    assert main(["experiment", "tpch_q15", "--all"]) == 0
    out = capsys.readouterr().out
    assert "plans enumerated: 3" in out
    assert "runtime spread" in out


def test_experiment_with_feedback_rounds(capsys, tmp_path):
    store = tmp_path / "stats.json"
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--feedback-rounds",
                "1",
                "--stats-store",
                str(store),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "adaptive optimization — tpch_q15" in out
    assert "round 0:" in out and "round 1:" in out
    assert "q-error median" in out
    assert store.exists()  # the store persisted for a warm start
    # Warm start: the saved store is accepted on a second run.
    assert (
        main(
            [
                "experiment",
                "tpch_q15",
                "--picks",
                "3",
                "--stats-store",
                str(store),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "round 0:" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "nope"])
