"""Pins the CI pipeline's structural invariants to the repo's contents.

YAML is not parseable with the stdlib, so these pins grep the workflow
files for the specific structured lines they own — crude, but they turn
"someone added tests/newdir and forgot the shard matrix" from a silent
coverage hole into a red test.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CI = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
NIGHTLY = (REPO_ROOT / ".github" / "workflows" / "nightly.yml").read_text()


def test_every_test_directory_is_in_exactly_one_shard():
    sharded: list[str] = []
    for line in CI.splitlines():
        match = re.match(r"\s*paths:\s*(.+)$", line)
        if match:
            sharded.extend(match.group(1).split())
    actual = {
        f"tests/{p.name}"
        for p in (REPO_ROOT / "tests").iterdir()
        if p.is_dir() and any(p.glob("test_*.py"))
    }
    assert sorted(sharded) == sorted(set(sharded)), "directory in two shards"
    assert set(sharded) == actual, (
        "ci.yml shard matrix and tests/ directories disagree — update the "
        "shard `paths:` entries when adding or removing a test directory"
    )


def test_ci_cancels_superseded_runs_but_never_main():
    assert "concurrency:" in CI
    assert "group: ${{ github.workflow }}-${{ github.ref }}" in CI
    assert (
        "cancel-in-progress: ${{ github.ref != 'refs/heads/main' }}" in CI
    )


def test_bench_smoke_matrix_covers_every_baseline():
    """Each committed baseline is produced and gated by one matrix job."""
    results = set(re.findall(r"result:\s*(\S+\.json)", CI))
    baselines = {
        p.name for p in (REPO_ROOT / "benchmarks" / "baselines").glob("*.json")
    }
    assert results == baselines, (
        "bench-smoke matrix and benchmarks/baselines/ disagree — every "
        "baseline needs a CI job producing its result (and vice versa)"
    )


def test_serve_bench_is_wired_into_ci_and_nightly():
    assert "bench_serve.py" in CI and "serve.json" in CI
    assert "bench_serve.py" in NIGHTLY
    assert "REPRO_BENCH_SERVE_TENANTS" in NIGHTLY


def test_nightly_is_scheduled_with_artifact_upload():
    assert "schedule:" in NIGHTLY and re.search(r"cron:", NIGHTLY)
    assert "workflow_dispatch:" in NIGHTLY
    assert "actions/upload-artifact" in NIGHTLY
    assert "retention-days:" in NIGHTLY
    # Larger-than-CI scale knobs are actually set.
    assert re.search(r'SOAK_SCALE_FACTOR:\s*"1200"', NIGHTLY)
    assert re.search(r'STORE_BENCH_WRITERS:\s*"8"', NIGHTLY)
    assert re.search(r'REPRO_BENCH_SERVE_WARM:\s*"100"', NIGHTLY)
