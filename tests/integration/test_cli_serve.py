"""End-to-end CLI coverage for `repro serve` / `repro plan`.

One real server subprocess (spawned exactly as an operator would start
it), driven by the `plan` subcommand over TCP — the full wire path the
quickstart documents.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve import spawn_server


@pytest.fixture(scope="module")
def server():
    with spawn_server() as spawned:
        yield spawned


def test_plan_against_live_server(server, capsys):
    address = f"127.0.0.1:{server.port}"
    assert (
        main(["plan", "tpch_q15", "--server", address, "--tenant", "cli"])
        == 0
    )
    out = capsys.readouterr().out
    assert "tpch_q15 (tenant cli, miss" in out
    assert "cost " in out and "#1: cost" in out
    assert "planned in" in out and "served in" in out

    # Second request: the server's plan cache answers.
    assert main(["plan", "tpch_q15", "--server", address, "--tenant", "cli"]) == 0
    assert "tpch_q15 (tenant cli, hit" in capsys.readouterr().out


def test_plan_json_output_round_trips(server, capsys):
    address = f"127.0.0.1:{server.port}"
    assert (
        main(
            [
                "plan",
                "clickstream",
                "--server",
                address,
                "--tenant",
                "cli",
                "--top-k",
                "2",
                "--json",
            ]
        )
        == 0
    )
    response = json.loads(capsys.readouterr().out)
    assert response["ok"] is True
    assert response["workload"] == "clickstream"
    assert len(response["ranked"]) == 2
    assert response["plan"][0]  # linearized operator order present


def test_plan_rejects_malformed_server_address(capsys):
    assert main(["plan", "tpch_q7", "--server", "nowhere"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_plan_reports_unreachable_server(capsys):
    assert main(["plan", "tpch_q7", "--server", "127.0.0.1:1"]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_serve_writes_trace_and_metrics_on_shutdown(tmp_path):
    trace_path = tmp_path / "serve_trace.jsonl"
    metrics_path = tmp_path / "serve_metrics.prom"
    with spawn_server(
        [
            "--trace",
            str(trace_path),
            "--trace-metrics",
            str(metrics_path),
        ]
    ) as spawned:
        with spawned.connect() as client:
            client.plan("tpch_q15", tenant="traced")
            client.plan("tpch_q15", tenant="traced")
    assert spawned.process.returncode == 0
    spans = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if line.strip()
    ]
    request_spans = [s for s in spans if s.get("name") == "serve.request"]
    assert len(request_spans) == 2
    assert {s["args"]["cache"] for s in request_spans} == {"miss", "hit"}
    prom = metrics_path.read_text()
    assert "repro_serve_requests_total 2" in prom
    assert "repro_serve_cache_hits_total 1" in prom
