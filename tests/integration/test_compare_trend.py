"""The bench-trend gate's own contract, pinned.

The gate script lives outside the package (``benchmarks/``), so it loads
here by path.  The critical pin: a committed baseline whose bench never
produced a result must FAIL the default (no-args) gate — a bench that
silently stops running is a regression escape hatch, not a skip.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_compare_trend(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / "compare_trend.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Dataclass creation inside the module resolves its own module
    # object through sys.modules: register before exec.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def trend(monkeypatch, tmp_path):
    """The compare_trend module, repointed at throwaway dirs."""
    module = load_compare_trend("compare_trend_under_test")
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    monkeypatch.setattr(module, "RESULTS_DIR", results)
    monkeypatch.setattr(module, "BASELINES_DIR", baselines)
    return module


def _write(directory: Path, name: str, value: float) -> Path:
    path = directory / name
    path.write_text(json.dumps({"warm_speedup_p50": value}))
    return path


def test_gate_passes_on_matching_result(trend, capsys):
    _write(trend.BASELINES_DIR, "serve.json", 7.0)
    _write(trend.RESULTS_DIR, "serve.json", 7.0)
    assert trend.main([]) == 0
    assert "serve.json" in capsys.readouterr().out


def test_gate_fails_on_regression_beyond_tolerance(trend, capsys):
    _write(trend.BASELINES_DIR, "serve.json", 10.0)
    _write(trend.RESULTS_DIR, "serve.json", 6.0)  # -40% < -30% tolerance
    assert trend.main([]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_tolerated_dip_passes(trend):
    _write(trend.BASELINES_DIR, "serve.json", 10.0)
    _write(trend.RESULTS_DIR, "serve.json", 8.0)  # -20% within tolerance
    assert trend.main([]) == 0


def test_baseline_without_result_fails_instead_of_silently_skipping(
    trend, capsys
):
    """The silent-skip bug: a bench with a committed baseline that never
    wrote its result used to vanish from the default gate set."""
    _write(trend.BASELINES_DIR, "serve.json", 7.0)
    assert trend.main([]) == 1
    assert "did the bench run?" in capsys.readouterr().err


def test_explicitly_named_missing_result_still_fails(trend, capsys):
    _write(trend.BASELINES_DIR, "serve.json", 7.0)
    missing = trend.RESULTS_DIR / "serve.json"
    assert trend.main([str(missing)]) == 1
    assert "did the bench run?" in capsys.readouterr().err


def test_every_committed_baseline_is_registered():
    """Each committed baseline must have a headline (and vice versa the
    gate default set covers it) — an orphan baseline gates nothing."""
    module = load_compare_trend("compare_trend_real")
    committed = {p.name for p in module.BASELINES_DIR.glob("*.json")}
    assert committed == set(module.HEADLINES)
