"""Per-operator agreement between SCA-derived and manually annotated
properties on the real workload UDFs.

This is the strongest statement behind Table 1: for every analyzable UDF
the analyzer must derive exactly the attribute-level sets an expert would
annotate — not just 'something safe'.  The one designed exception is the
clickstream buy filter, which must degrade to conservative properties.
"""

import pytest

from repro.core import AnnotationMode
from repro.core.operators import UdfOperator
from repro.core.plan import iter_nodes
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL = dict(
    q7=TpchScale(suppliers=10, customers=10, orders=30),
    q15=TpchScale(suppliers=10, customers=10, orders=30),
    clicks=ClickScale(sessions=20),
    corpus=CorpusScale(documents=10),
)


def udf_ops(workload):
    return [n.op for n in iter_nodes(workload.plan) if isinstance(n.op, UdfOperator)]


def assert_bound_props_equal(op):
    manual = op.bound_props(AnnotationMode.MANUAL)
    sca = op.bound_props(AnnotationMode.SCA)
    assert sca.reads == manual.reads, f"{op.name}: reads differ"
    assert sca.modified == manual.modified, f"{op.name}: modified differ"
    assert sca.projected == manual.projected, f"{op.name}: projected differ"
    assert sca.new_attrs == manual.new_attrs, f"{op.name}: new attrs differ"
    assert sca.branch_reads <= manual.branch_reads | manual.reads, op.name
    assert sca.emit_bounds == manual.emit_bounds, f"{op.name}: bounds differ"


@pytest.mark.parametrize(
    "build,kwargs",
    [
        (build_q7, {"scale": SMALL["q7"]}),
        (build_q15, {"scale": SMALL["q15"]}),
        (build_textmining, {"scale": SMALL["corpus"]}),
    ],
)
def test_sca_matches_annotations_exactly(build, kwargs):
    workload = build(**kwargs)
    for op in udf_ops(workload):
        sca = op.udf.properties(AnnotationMode.SCA)
        assert not sca.is_conservative(), f"{op.name} unexpectedly unanalyzable"
        assert_bound_props_equal(op)


def test_clickstream_sca_precision_and_designed_gap():
    workload = build_clickstream(SMALL["clicks"])
    for op in udf_ops(workload):
        sca = op.udf.properties(AnnotationMode.SCA)
        if op.name == "filter_buy_sessions":
            # The record group escapes into a helper: conservative fallback.
            assert sca.is_conservative()
            assert "escapes" in sca.notes[0] or "call" in sca.notes[0]
        else:
            assert not sca.is_conservative(), op.name
            assert_bound_props_equal(op)


def test_kat_behavior_gap_is_the_only_weakening():
    """For analyzable KAT UDFs, SCA derives ONE_PER_GROUP where annotated;
    the ALL_OR_NONE shape (filter_buy) is annotation-only by design."""
    workload = build_q15(SMALL["q15"])
    gamma = next(op for op in udf_ops(workload) if op.name == "gamma_supplier_revenue")
    manual = gamma.udf.properties(AnnotationMode.MANUAL)
    sca = gamma.udf.properties(AnnotationMode.SCA)
    assert sca.kat_behavior == manual.kat_behavior
