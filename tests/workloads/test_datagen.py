"""Data generators: determinism, integrity, configurable scales."""

from repro.datagen import (
    ClickScale,
    CorpusScale,
    TpchScale,
    generate_clickstream,
    generate_corpus,
    generate_tpch,
)
from repro.datagen.textcorpus import (
    extract_relations,
    find_drugs,
    find_genes,
    find_mesh_terms,
    find_species,
    pos_tag,
    tokenize,
)


class TestTpch:
    def test_deterministic(self):
        left = generate_tpch(seed=5)
        right = generate_tpch(seed=5)
        assert left.lineitem == right.lineitem
        assert generate_tpch(seed=6).lineitem != left.lineitem

    def test_referential_integrity(self):
        data = generate_tpch(TpchScale(suppliers=20, customers=30, orders=100))
        nations = {n["nationkey"] for n in data.nation}
        suppliers = {s["suppkey"] for s in data.supplier}
        customers = {c["custkey"] for c in data.customer}
        orders = {o["orderkey"] for o in data.orders}
        assert all(s["nationkey"] in nations for s in data.supplier)
        assert all(c["nationkey"] in nations for c in data.customer)
        assert all(o["custkey"] in customers for o in data.orders)
        assert all(li["orderkey"] in orders for li in data.lineitem)
        assert all(li["suppkey"] in suppliers for li in data.lineitem)

    def test_keys_unique(self):
        data = generate_tpch(TpchScale(suppliers=10, customers=10, orders=50))
        assert len({o["orderkey"] for o in data.orders}) == len(data.orders)
        assert len({s["suppkey"] for s in data.supplier}) == len(data.supplier)

    def test_shipdate_after_orderdate(self):
        data = generate_tpch(TpchScale(orders=50))
        order_dates = {o["orderkey"]: o["orderdate"] for o in data.orders}
        assert all(li["shipdate"] > order_dates[li["orderkey"]] for li in data.lineitem)

    def test_scaled(self):
        scale = TpchScale().scaled(0.1)
        assert scale.suppliers == 10
        assert scale.orders == 150


class TestClickstream:
    def test_deterministic(self):
        assert generate_clickstream(seed=1).clicks == generate_clickstream(seed=1).clicks

    def test_login_unique_per_session(self):
        data = generate_clickstream(ClickScale(sessions=200))
        session_ids = [login["session_id"] for login in data.logins]
        assert len(session_ids) == len(set(session_ids))

    def test_users_unique_and_selective(self):
        scale = ClickScale(sessions=200, user_info_fraction=0.5, users=100)
        data = generate_clickstream(scale)
        user_ids = [u["user_id"] for u in data.users]
        assert len(user_ids) == len(set(user_ids))
        assert 0 < len(user_ids) < scale.users  # deliberately non-total

    def test_buy_sessions_exist_and_not_all(self):
        data = generate_clickstream(ClickScale(sessions=300))
        buys = {c["session_id"] for c in data.clicks if c["action"] == "buy"}
        all_sessions = {c["session_id"] for c in data.clicks}
        assert buys and buys < all_sessions


class TestCorpus:
    def test_deterministic(self):
        assert generate_corpus(seed=2).documents == generate_corpus(seed=2).documents

    def test_entity_occurrence_rates(self):
        scale = CorpusScale(documents=800)
        data = generate_corpus(scale)
        with_genes = sum(
            1 for d in data.documents if find_genes(tokenize(d["text"]))
        )
        rate = with_genes / len(data.documents)
        assert abs(rate - scale.p_gene) < 0.08

    def test_nlp_components(self):
        tokens = tokenize("GEN001 binds drugazol02 in homo_sapiens mesh_term_01")
        assert find_genes(tokens) == ("GEN001",)
        assert find_drugs(tokens) == ("drugazol02",)
        assert find_mesh_terms(tokens) == ("mesh_term_01",)
        assert find_species(tokens) == ("homo_sapiens",)
        assert len(pos_tag(tokens)) == len(tokens)
        relations = extract_relations(("GEN001",), ("drugazol02",))
        assert all("~" in r for r in relations)
