"""Workload-level checks: plan-space sizes (Table 1), SCA parity, and
semantic equivalence of enumerated alternatives on real generated data."""

import pytest

from repro.core import AnnotationMode, body, evaluate, projected_equal, validate
from repro.core.plan import linearize, signature
from repro.datagen import ClickScale, CorpusScale, TpchScale
from repro.optimizer import PlanContext, enumerate_flows
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

SMALL_TPCH = TpchScale(suppliers=30, customers=40, orders=200)


def enumerate_counts(workload):
    counts = {}
    for mode in AnnotationMode:
        ctx = PlanContext(workload.catalog, mode)
        counts[mode] = len(enumerate_flows(body(workload.plan), ctx))
    return counts


class TestPlanSpaces:
    """Table 1: enumerated orders under manual annotations vs SCA."""

    def test_q15_three_orders_both_modes(self):
        counts = enumerate_counts(build_q15(SMALL_TPCH))
        assert counts[AnnotationMode.MANUAL] == 3
        assert counts[AnnotationMode.SCA] == 3  # 100% parity, as in the paper

    def test_textmining_24_orders_both_modes(self):
        counts = enumerate_counts(build_textmining(CorpusScale(documents=50)))
        assert counts[AnnotationMode.MANUAL] == 24  # matches the paper exactly
        assert counts[AnnotationMode.SCA] == 24

    def test_clickstream_sca_loses_reorderings(self):
        counts = enumerate_counts(build_clickstream(ClickScale(sessions=100)))
        # filter_buy_sessions is unanalyzable -> SCA enumerates fewer orders
        assert counts[AnnotationMode.MANUAL] == 9
        assert counts[AnnotationMode.SCA] == 5
        assert counts[AnnotationMode.SCA] < counts[AnnotationMode.MANUAL]

    def test_q7_large_space_with_full_sca_parity(self):
        counts = enumerate_counts(build_q7(SMALL_TPCH))
        assert counts[AnnotationMode.MANUAL] == counts[AnnotationMode.SCA]
        assert counts[AnnotationMode.MANUAL] == 442


class TestPlanValidity:
    @pytest.mark.parametrize(
        "build,kwargs",
        [
            (build_q7, {"scale": SMALL_TPCH}),
            (build_q15, {"scale": SMALL_TPCH}),
            (build_clickstream, {"scale": ClickScale(sessions=50)}),
            (build_textmining, {"scale": CorpusScale(documents=30)}),
        ],
    )
    def test_plans_validate(self, build, kwargs):
        workload = build(**kwargs)
        validate(workload.plan)
        assert workload.sink_attrs
        assert workload.data


class TestSemanticEquivalence:
    def check_workload(self, workload, sample=None):
        ctx = PlanContext(workload.catalog, AnnotationMode.MANUAL)
        flows = enumerate_flows(body(workload.plan), ctx)
        if sample is not None:
            flows = flows[:: max(1, len(flows) // sample)]
        baseline = evaluate(workload.plan, workload.data)
        for flow in flows:
            result = evaluate(flow, workload.data)
            assert projected_equal(result, baseline, workload.sink_attrs), (
                f"{workload.name}: plan {linearize(flow)} diverges"
            )
        return len(flows)

    def test_q15_all_plans_equivalent(self):
        assert self.check_workload(build_q15(SMALL_TPCH)) == 3

    def test_clickstream_all_plans_equivalent(self):
        assert self.check_workload(build_clickstream(ClickScale(sessions=80))) == 9

    def test_textmining_all_plans_equivalent(self):
        assert self.check_workload(
            build_textmining(CorpusScale(documents=60))
        ) == 24

    def test_q7_sampled_plans_equivalent(self):
        checked = self.check_workload(build_q7(SMALL_TPCH), sample=15)
        assert checked >= 15


class TestSCAvsManualAgreement:
    def test_q7_property_sets_agree(self):
        """Where SCA succeeds, it should find the reorderings the manual
        annotations allow: the SCA plan set equals the manual plan set."""
        workload = build_q7(SMALL_TPCH)
        manual = {
            signature(f)
            for f in enumerate_flows(
                body(workload.plan), PlanContext(workload.catalog, AnnotationMode.MANUAL)
            )
        }
        sca = {
            signature(f)
            for f in enumerate_flows(
                body(workload.plan), PlanContext(workload.catalog, AnnotationMode.SCA)
            )
        }
        assert manual == sca

    def test_clickstream_sca_subset_of_manual(self):
        workload = build_clickstream(ClickScale(sessions=60))
        manual = {
            signature(f)
            for f in enumerate_flows(
                body(workload.plan), PlanContext(workload.catalog, AnnotationMode.MANUAL)
            )
        }
        sca = {
            signature(f)
            for f in enumerate_flows(
                body(workload.plan), PlanContext(workload.catalog, AnnotationMode.SCA)
            )
        }
        assert sca < manual  # conservative: strictly fewer, never different
