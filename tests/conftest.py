"""Shared fixtures and small flow-building helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Catalog,
    FieldMap,
    MapOp,
    MatchOp,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    binary_udf,
    map_udf,
    reduce_udf,
)


@pytest.fixture
def ab_attrs():
    return attrs("I.A", "I.B")


@pytest.fixture
def ab_source(ab_attrs):
    return Source("I", ab_attrs)


@pytest.fixture
def ab_map(ab_attrs):
    return FieldMap(ab_attrs)


def make_map(name, fn, field_map, annotations=None):
    return MapOp(name, map_udf(fn, annotations), field_map)


def make_reduce(name, fn, field_map, key_positions, annotations=None):
    return ReduceOp(name, reduce_udf(fn, annotations), field_map, key_positions)


def make_match(name, fn, left_map, right_map, lk, rk, annotations=None):
    return MatchOp(name, binary_udf(fn, annotations), left_map, right_map, lk, rk)


def simple_catalog(*source_rows: tuple[str, int]) -> Catalog:
    catalog = Catalog()
    for name, rows in source_rows:
        catalog.add_source(name, SourceStats(row_count=rows))
    return catalog


def random_rows(attributes, count, seed=0, lo=-10, hi=10):
    rng = random.Random(seed)
    return [{a: rng.randint(lo, hi) for a in attributes} for _ in range(count)]


# Commonly reused UDFs ---------------------------------------------------------


def paper_f1(rec, out):
    """Section 3: replace B with |B|."""
    b = rec.get_field(1)
    r = rec.copy()
    if b < 0:
        r.set_field(1, -b)
    out.emit(r)


def paper_f2(rec, out):
    """Section 3: keep records with A >= 0."""
    a = rec.get_field(0)
    if a < 0:
        return
    out.emit(rec.copy())


def paper_f3(rec, out):
    """Section 3: replace A with A + B."""
    a = rec.get_field(0)
    b = rec.get_field(1)
    r = rec.copy()
    r.set_field(0, a + b)
    out.emit(r)


def identity_udf(rec, out):
    out.emit(rec.copy())


def concat_udf(left, right, out):
    out.emit(left.concat(right))
