"""Property test: dirty-spine re-costing is bit-identical to a rebuild.

For random single- and multi-hint changes on all four paper workloads,
re-optimizing over an invalidated memo must produce estimates, costs,
and rankings exactly equal to a full from-scratch rebuild under the same
hints — including across *sequences* of changes applied to one memo.
This is the invariant the whole incremental subsystem rests on: an
estimate (and hence a cost) depends only on the operators inside a
node's subtree, so evicting every entry whose subtree contains a changed
operator makes the surviving entries exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotationMode
from repro.core.operators import Source, UdfOperator
from repro.core.plan import body as plan_body, iter_nodes, signature
from repro.optimizer import Hints, Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

WORKLOADS = {
    "tpch_q15": build_q15(),
    "clickstream": build_clickstream(),
    "textmining": build_textmining(),
    "tpch_q7": build_q7(),
}


def udf_op_names(workload):
    return sorted(
        n.op.name
        for n in iter_nodes(plan_body(workload.plan))
        if isinstance(n.op, UdfOperator)
    )


hint_values = st.builds(
    Hints,
    selectivity=st.one_of(
        st.none(), st.floats(min_value=0.01, max_value=3.0, allow_nan=False)
    ),
    cpu_per_call=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    distinct_keys=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
)


@st.composite
def change_sequences(draw):
    """A workload plus 1-3 successive hint-change steps (1-3 ops each)."""
    name = draw(st.sampled_from(sorted(WORKLOADS)))
    ops = udf_op_names(WORKLOADS[name])
    steps = draw(
        st.lists(
            st.dictionaries(
                st.sampled_from(ops), hint_values, min_size=1, max_size=3
            ),
            min_size=1,
            max_size=3,
        )
    )
    return name, steps


def assert_identical(got, want, estimator_got, estimator_want):
    assert got.plan_count == want.plan_count
    for g, w in zip(got.ranked, want.ranked):
        assert g.rank == w.rank
        assert signature(g.body) == signature(w.body)
        assert g.cost == w.cost  # exact float equality
        # describe() covers ships, locals, build sides, per-node row
        # estimates and cumulative costs of the whole tree.
        assert g.physical.describe() == w.physical.describe()
    # estimates agree node-for-node on the best plan's body (exact)
    for node in iter_nodes(got.best.body):
        if isinstance(node.op, Source):
            continue
        g = estimator_got.estimate(node)
        w = estimator_want.estimate(node)
        assert (g.rows, g.width, g.calls) == (w.rows, w.width, w.calls)


@given(change_sequences())
@settings(max_examples=12, deadline=None)
def test_invalidation_parity_under_random_hint_changes(case):
    name, steps = case
    workload = WORKLOADS[name]
    optimizer = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    )
    memo = optimizer.new_memo()
    optimizer.optimize(workload.plan, memo=memo)
    hints = dict(workload.hints)
    for step in steps:
        hints = {**hints, **step}
        optimizer.hints = hints
        incremental = optimizer.reoptimize(workload.plan, memo, set(step))
        incremental_estimator = optimizer.last_estimator
        reference = Optimizer(
            workload.catalog, hints, AnnotationMode.SCA, workload.params
        )
        full = reference.optimize(workload.plan)
        assert_identical(
            incremental, full, incremental_estimator, reference.last_estimator
        )
