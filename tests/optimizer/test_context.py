"""Plan-level derivations: schemas, unique keys, totality, join fan-out."""

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    FieldMap,
    FieldSet,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    SourceStats,
    UdfProperties,
    attrs,
    binary_udf,
    chain,
    map_udf,
    node,
    reduce_udf,
)
from repro.optimizer import PlanContext
from tests.conftest import concat_udf, identity_udf

L = attrs("l.k", "l.v")
S = attrs("s.k", "s.name")


def fresh_ctx(declare_unique=(), references=()):
    catalog = Catalog()
    catalog.add_source("L", SourceStats(100))
    catalog.add_source("S", SourceStats(10))
    for key in declare_unique:
        catalog.declare_unique(key)
    for src, dst, total in references:
        catalog.declare_reference((src,), (dst,), total=total)
    return PlanContext(catalog, AnnotationMode.MANUAL)


def one():
    return UdfProperties(emit_bounds=EmitBounds.exactly(1))


def filter_props():
    return UdfProperties(
        reads=FieldSet.of((0, 1)),
        branch_reads=FieldSet.of((0, 1)),
        emit_bounds=EmitBounds.at_most_one(),
    )


class TestOutAttrs:
    def test_source_and_sink(self):
        ctx = fresh_ctx()
        src = node(Source("L", L))
        assert ctx.out_attrs(src) == frozenset(L)
        assert ctx.out_attrs(node(Sink("o"), src)) == frozenset(L)

    def test_new_attrs_appear(self):
        ctx = fresh_ctx()
        props = UdfProperties(
            writes_modified=FieldSet.of(2), emit_bounds=EmitBounds.exactly(1)
        )
        m = MapOp("m", map_udf(identity_udf, props), FieldMap(L))
        flow = chain(Source("L", L), m)
        out = ctx.out_attrs(flow)
        assert frozenset(L) < out
        assert any(a.name == "m.f2" for a in out)

    def test_projection_removes(self):
        ctx = fresh_ctx()
        props = UdfProperties(
            writes_projected=FieldSet.of(1), emit_bounds=EmitBounds.exactly(1)
        )
        m = MapOp("m", map_udf(identity_udf, props), FieldMap(L))
        flow = chain(Source("L", L), m)
        assert ctx.out_attrs(flow) == frozenset({L[0]})


class TestUniqueKeys:
    def test_source_keys_from_catalog(self):
        ctx = fresh_ctx(declare_unique=(S[0],))
        assert ctx.unique_keys(node(Source("S", S))) == frozenset({frozenset({S[0]})})

    def test_filter_preserves_uniqueness(self):
        ctx = fresh_ctx(declare_unique=(S[0],))
        m = MapOp("f", map_udf(identity_udf, filter_props()), FieldMap(S))
        flow = chain(Source("S", S), m)
        assert ctx.is_unique(flow, frozenset({S[0]}))

    def test_multi_emit_destroys_uniqueness(self):
        ctx = fresh_ctx(declare_unique=(S[0],))
        props = UdfProperties(emit_bounds=EmitBounds(0, 3))
        m = MapOp("dup", map_udf(identity_udf, props), FieldMap(S))
        flow = chain(Source("S", S), m)
        assert not ctx.is_unique(flow, frozenset({S[0]}))

    def test_writing_key_destroys_uniqueness(self):
        ctx = fresh_ctx(declare_unique=(S[0],))
        props = UdfProperties(
            writes_modified=FieldSet.of(0), emit_bounds=EmitBounds.exactly(1)
        )
        m = MapOp("w", map_udf(identity_udf, props), FieldMap(S))
        flow = chain(Source("S", S), m)
        assert not ctx.is_unique(flow, frozenset({S[0]}))

    def test_reduce_key_becomes_unique(self):
        ctx = fresh_ctx()
        r = ReduceOp("agg", reduce_udf(identity_udf, one()), FieldMap(L), (0,))
        flow = chain(Source("L", L), r)
        assert ctx.is_unique(flow, frozenset({L[0]}))

    def test_match_with_unique_other_side_preserves(self):
        ctx = fresh_ctx(declare_unique=(S[0], L[0]))
        m = MatchOp("j", binary_udf(concat_udf, one()), FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(Source("L", L)), node(Source("S", S)))
        assert ctx.is_unique(flow, frozenset({L[0]}))

    def test_match_without_unique_other_side_does_not(self):
        ctx = fresh_ctx(declare_unique=(L[0],))
        m = MatchOp("j", binary_udf(concat_udf, one()), FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(Source("L", L)), node(Source("S", S)))
        assert not ctx.is_unique(flow, frozenset({L[0]}))


class TestRowPreserving:
    def test_source_preserves(self):
        ctx = fresh_ctx()
        assert ctx.row_preserving(node(Source("L", L)))

    def test_filter_does_not(self):
        ctx = fresh_ctx()
        m = MapOp("f", map_udf(identity_udf, filter_props()), FieldMap(L))
        assert not ctx.row_preserving(chain(Source("L", L), m))

    def test_one_to_one_map_preserves(self):
        ctx = fresh_ctx()
        m = MapOp("t", map_udf(identity_udf, one()), FieldMap(L))
        assert ctx.row_preserving(chain(Source("L", L), m))

    def test_join_conservatively_does_not(self):
        ctx = fresh_ctx(declare_unique=(S[0],))
        m = MatchOp("j", binary_udf(concat_udf, one()), FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(Source("L", L)), node(Source("S", S)))
        assert not ctx.row_preserving(flow)


class TestMatchRecordBounds:
    def make_match(self):
        return MatchOp(
            "j", binary_udf(concat_udf, one()), FieldMap(L), FieldMap(S), (0,), (0,)
        )

    def test_unique_total_reference_gives_exactly_one(self):
        ctx = fresh_ctx(declare_unique=(S[0],), references=((L[0], S[0], True),))
        bounds = ctx.match_record_bounds(self.make_match(), 0, node(Source("S", S)))
        assert bounds.exactly_one

    def test_unique_non_total_gives_at_most_one(self):
        ctx = fresh_ctx(declare_unique=(S[0],), references=((L[0], S[0], False),))
        bounds = ctx.match_record_bounds(self.make_match(), 0, node(Source("S", S)))
        assert (bounds.lo, bounds.hi) == (0, 1)

    def test_non_unique_gives_unbounded(self):
        ctx = fresh_ctx()
        bounds = ctx.match_record_bounds(self.make_match(), 0, node(Source("S", S)))
        assert bounds.hi is None

    def test_filter_below_dimension_breaks_totality(self):
        ctx = fresh_ctx(declare_unique=(S[0],), references=((L[0], S[0], True),))
        f = MapOp("f", map_udf(identity_udf, filter_props()), FieldMap(S))
        filtered = chain(Source("S", S), f)
        bounds = ctx.match_record_bounds(self.make_match(), 0, filtered)
        assert bounds.lo == 0  # totality gone
        assert bounds.hi == 1  # uniqueness survives the filter
