"""The Memo subsystem: ownership, dependency index, invalidation, reuse.

The memo is first-class state: it owns the physical options table, the
memo-scoped estimator caches, and the enumerated closure; it maintains a
reverse dependency index (operator name -> entries whose subtree contains
the operator); and ``invalidate`` evicts exactly the dirty spine above a
changed operator.  Re-optimization over an invalidated memo must be
bit-identical to a full rebuild, and an ``Optimizer`` instance must stay
re-entrant: no memo state may leak between plans or calls unless the
caller passes a memo explicitly.
"""

import pytest

from repro.core import AnnotationMode
from repro.core.errors import OptimizationError
from repro.core.plan import body as plan_body, signature
from repro.optimizer import (
    CardinalityEstimator,
    Hints,
    Memo,
    Optimizer,
    PlanContext,
    enumerate_flows,
)
from repro.optimizer.physical import PhysicalOptimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

BUILDERS = {
    "tpch_q7": build_q7,
    "tpch_q15": build_q15,
    "clickstream": build_clickstream,
    "textmining": build_textmining,
}


@pytest.fixture(scope="module")
def workloads():
    return {name: build() for name, build in BUILDERS.items()}


def assert_identical(got, want):
    assert got.plan_count == want.plan_count
    for g, w in zip(got.ranked, want.ranked):
        assert g.rank == w.rank
        assert signature(g.body) == signature(w.body)
        assert g.cost == w.cost  # exact float equality, not approx
        assert g.physical.describe() == w.physical.describe()


# -- ownership and the dependency index ---------------------------------------


def test_memo_owns_options_estimates_and_closure(workloads):
    w = workloads["tpch_q7"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    result = opt.optimize(w.plan, memo=memo)
    flow = plan_body(w.plan)
    # closure cached under the optimized flow
    assert flow in memo.closures
    assert len(memo.closures[flow]) == result.plan_count
    # options table holds exactly the distinct sub-plans of the closure
    distinct = set()
    for alt in memo.closures[flow]:
        stack = [alt]
        while stack:
            n = stack.pop()
            distinct.add(n)
            stack.extend(n.children)
    assert set(memo.table) == distinct
    # estimates are memo-scoped: the estimator wrote into the memo's cache
    assert set(memo.est_cache) == distinct
    assert opt.last_estimator._cache is memo.est_cache


def test_dependency_index_tracks_subtree_containment(workloads):
    w = workloads["tpch_q7"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    opt.optimize(w.plan, memo=memo)
    dependents = memo.dependents_of("gamma_revenue")
    assert dependents  # the reduce appears in every alternative
    for node in memo.table:
        contains = "gamma_revenue" in opt.ctx.op_names(node)
        assert (node in dependents) == contains
    # an unknown operator has no dependents
    assert memo.dependents_of("no_such_op") == frozenset()


def test_invalidate_evicts_exactly_the_dirty_spine(workloads):
    w = workloads["tpch_q7"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    opt.optimize(w.plan, memo=memo)
    before = set(memo.table)
    dirty = {n for n in before if "gamma_revenue" in opt.ctx.op_names(n)}
    evicted = memo.invalidate({"gamma_revenue"})
    assert evicted == len(dirty)
    assert set(memo.table) == before - dirty
    assert set(memo.est_cache) == before - dirty
    # clean entries survived untouched; a second invalidation is a no-op
    assert memo.invalidate({"gamma_revenue"}) == 0
    # width caches and closures are hint-independent and survive
    assert memo.width_cache
    assert memo.closures


def test_invalidate_unknown_op_is_noop(workloads):
    w = workloads["clickstream"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    opt.optimize(w.plan, memo=memo)
    size = len(memo)
    assert memo.invalidate({"never_heard_of_it"}) == 0
    assert len(memo) == size


# -- dirty-spine re-optimization parity ---------------------------------------


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_reoptimize_after_hint_change_matches_full_rebuild(workloads, name):
    w = workloads[name]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    opt.optimize(w.plan, memo=memo)
    # change one hinted operator (or hint a previously unhinted one)
    target = sorted(opt.ctx.op_names(plan_body(w.plan)))[0]
    opt.hints = {**w.hints, target: Hints(selectivity=0.31, cpu_per_call=2.7)}
    incremental = opt.reoptimize(w.plan, memo, {target})
    full = Optimizer(
        w.catalog, opt.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    assert_identical(incremental, full)


def test_repeated_invalidations_converge(workloads):
    """Alternating between two hint sets over one memo stays exact."""
    w = workloads["tpch_q7"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    opt.optimize(w.plan, memo=memo)
    changed = {**w.hints, "gamma_revenue": Hints(distinct_keys=5, cpu_per_call=2.0)}
    for hints in (changed, w.hints, changed):
        opt.hints = hints
        incremental = opt.reoptimize(w.plan, memo, {"gamma_revenue"})
        full = Optimizer(
            w.catalog, hints, AnnotationMode.SCA, w.params
        ).optimize(w.plan)
        assert_identical(incremental, full)


def test_memo_reuse_without_changes_is_identical(workloads):
    w = workloads["textmining"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    memo = opt.new_memo()
    first = opt.optimize(w.plan, memo=memo)
    again = opt.optimize(w.plan, memo=memo)  # fully warm: no recompute
    assert_identical(again, first)


def test_memo_merge_combines_entries(workloads):
    w = workloads["clickstream"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    a, b = opt.new_memo(), opt.new_memo()
    opt.optimize(w.plan, memo=a)
    opt.optimize(w.plan, memo=b)
    merged = opt.new_memo()
    assert merged.merge(a) == len(a)
    assert merged.merge(b) == 0  # everything already present; first wins
    assert set(merged.table) == set(a.table)
    assert set(merged.closures) == set(a.closures)


def test_explicit_memo_requires_reuse_memo():
    w = build_q15()
    opt = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params, reuse_memo=False
    )
    with pytest.raises(OptimizationError):
        opt.optimize(w.plan, memo=Memo())


# -- optimizer re-entrancy (satellite regression) ------------------------------


def test_optimizer_reentrant_across_plans_and_calls(workloads):
    """One Optimizer instance, several plans: results must be bit-identical
    to fresh-instance runs — no shared-PhysicalOptimizer memo state may
    leak between plans or calls."""
    w = workloads["tpch_q7"]
    ctx = PlanContext(w.catalog, AnnotationMode.SCA)
    alternatives = enumerate_flows(plan_body(w.plan), ctx)
    other_plan = alternatives[len(alternatives) // 2]  # a reordered body

    shared = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    first = shared.optimize(w.plan)
    second = shared.optimize(other_plan)
    third = shared.optimize(w.plan)

    fresh_first = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    fresh_second = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params
    ).optimize(other_plan)
    assert_identical(first, fresh_first)
    assert_identical(second, fresh_second)
    assert_identical(third, fresh_first)


def test_optimizer_reentrant_after_hint_mutation(workloads):
    """Without an explicit memo, a hint change needs no invalidation: the
    next optimize() call starts from a fresh memo."""
    w = workloads["clickstream"]
    opt = Optimizer(w.catalog, w.hints, AnnotationMode.SCA, w.params)
    opt.optimize(w.plan)
    opt.hints = {**w.hints, "condense_sessions": Hints(distinct_keys=3)}
    changed = opt.optimize(w.plan)
    fresh = Optimizer(
        w.catalog, opt.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    assert_identical(changed, fresh)


def test_physical_optimizer_default_memo_is_private(workloads):
    """Two PhysicalOptimizer instances never share state by accident."""
    w = workloads["tpch_q15"]
    ctx = PlanContext(w.catalog, AnnotationMode.SCA)
    est = CardinalityEstimator(ctx, w.hints)
    a = PhysicalOptimizer(ctx, est, w.params)
    b = PhysicalOptimizer(ctx, est, w.params)
    assert a.memo is not b.memo
    a.optimize(plan_body(w.plan))
    assert len(b.memo) == 0


# -- plan-space sampling (satellite) ------------------------------------------


def test_sampling_full_closure_when_unlimited(workloads):
    w = workloads["tpch_q7"]
    unlimited = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params, max_alternatives=None
    ).optimize(w.plan)
    reference = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    assert_identical(unlimited, reference)


def test_sampling_bounds_and_determinism(workloads):
    w = workloads["tpch_q7"]

    def run(seed):
        return Optimizer(
            w.catalog,
            w.hints,
            AnnotationMode.SCA,
            w.params,
            max_alternatives=40,
            sample_seed=seed,
        ).optimize(w.plan)

    a, b, c = run(7), run(7), run(8)
    assert a.plan_count == 40
    assert_identical(a, b)  # deterministic given the seed
    assert {signature(p.body) for p in a.ranked} != {
        signature(p.body) for p in c.ranked
    } or [p.cost for p in a.ranked] != [p.cost for p in c.ranked]
    # the implemented flow is always part of the sample
    flow = plan_body(w.plan)
    assert any(p.body is flow for p in a.ranked)


def test_sampling_ranks_are_subset_consistent(workloads):
    """Sampled plans carry the same costs as in the full ranking."""
    w = workloads["tpch_q7"]
    full = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    cost_of = {p.body: p.cost for p in full.ranked}
    sampled = Optimizer(
        w.catalog,
        w.hints,
        AnnotationMode.SCA,
        w.params,
        max_alternatives=25,
        sample_seed=3,
    ).optimize(w.plan)
    for plan in sampled.ranked:
        assert cost_of[plan.body] == plan.cost
    costs = [p.cost for p in sampled.ranked]
    assert costs == sorted(costs)


def test_sampling_noop_when_closure_small():
    w = build_q15()  # 3 alternatives
    sampled = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params,
        max_alternatives=10, sample_seed=0,
    ).optimize(w.plan)
    reference = Optimizer(
        w.catalog, w.hints, AnnotationMode.SCA, w.params
    ).optimize(w.plan)
    assert_identical(sampled, reference)


def test_sampling_validates_arguments():
    w = build_q15()
    with pytest.raises(OptimizationError):
        Optimizer(w.catalog, max_alternatives=0)
    with pytest.raises(OptimizationError):
        Optimizer(w.catalog, jobs=0)
    with pytest.raises(OptimizationError):
        # the reference path is sequential by definition
        Optimizer(w.catalog, reuse_memo=False, jobs=2)
