"""Guided (best-first) search parity and safety tests.

``Optimizer(search="guided")`` costs only frontier heads of a priority
queue ordered by an admissible lower bound, terminating as soon as the
top-``k`` prefix is provably final.  Everything here pins the contract
that makes the strategy usable as a drop-in serving path:

* The guided top-``k`` is *bit-identical* to the eager ranking's prefix
  — same plan bodies (object identity: plans are interned), same exact
  float costs, same physical trees — across all four paper workloads,
  under random hint perturbations (hypothesis), and again after a
  dirty-spine ``Memo.invalidate`` + re-search.
* Guided composes with plan-space sampling (``max_alternatives``) and
  with parallel wave costing (``jobs > 1``) without changing results.
* The work counters (:class:`~repro.optimizer.optimizer.SearchStats`)
  prove guided actually prunes: costed < expanded, and far fewer
  cardinality-estimate cache misses than eager spends.
* Configuration errors (bad ``jobs`` / ``engine_jobs`` / ``search`` /
  ``top_k``, guided under feedback) raise subclasses of ``ValueError``
  so callers can catch them without importing repro error types.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotationMode
from repro.core.errors import (
    ExecutionError,
    OptimizationConfigError,
    OptimizationError,
)
from repro.core.plan import body as plan_body, iter_nodes
from repro.core.operators import UdfOperator
from repro.bench.harness import run_experiment
from repro.engine import Engine
from repro.optimizer import Hints, Optimizer, parallel
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

WORKLOADS = {
    "tpch_q15": build_q15(),
    "clickstream": build_clickstream(),
    "textmining": build_textmining(),
    "tpch_q7": build_q7(),
}

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def assert_prefix_identical(guided, eager, k):
    """Guided's ranking must be the eager ranking's first ``k`` plans."""
    want = eager.ranked[:k]
    assert len(guided.ranked) == len(want)
    for g, w in zip(guided.ranked, want):
        assert g.rank == w.rank
        assert g.body is w.body  # interned plans: identity == structure
        assert g.cost == w.cost  # exact float equality
        assert g.physical.describe() == w.physical.describe()


def optimize_both(workload, k, hints=None, mode=AnnotationMode.SCA):
    hints = workload.hints if hints is None else hints
    eager = Optimizer(
        workload.catalog, hints, mode, workload.params
    ).optimize(workload.plan)
    guided = Optimizer(
        workload.catalog, hints, mode, workload.params,
        search="guided", top_k=k,
    ).optimize(workload.plan)
    return guided, eager


# -- parity ----------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("k", [1, 5])
def test_guided_matches_eager_prefix(name, k):
    workload = WORKLOADS[name]
    guided, eager = optimize_both(workload, k)
    assert_prefix_identical(guided, eager, k)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_guided_matches_eager_manual_mode(name):
    workload = WORKLOADS[name]
    guided, eager = optimize_both(workload, 3, mode=AnnotationMode.MANUAL)
    assert_prefix_identical(guided, eager, 3)


def udf_op_names(workload):
    return sorted(
        n.op.name
        for n in iter_nodes(plan_body(workload.plan))
        if isinstance(n.op, UdfOperator)
    )


hint_values = st.builds(
    Hints,
    selectivity=st.one_of(
        st.none(), st.floats(min_value=0.01, max_value=3.0, allow_nan=False)
    ),
    cpu_per_call=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    distinct_keys=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
)


@st.composite
def perturbed_cases(draw):
    """A workload, a hint perturbation for 1-3 of its UDFs, and a k."""
    name = draw(st.sampled_from(sorted(WORKLOADS)))
    ops = udf_op_names(WORKLOADS[name])
    changes = draw(
        st.dictionaries(st.sampled_from(ops), hint_values, min_size=1, max_size=3)
    )
    k = draw(st.integers(min_value=1, max_value=4))
    return name, changes, k


@given(perturbed_cases())
@settings(max_examples=10, deadline=None)
def test_guided_parity_under_random_hint_perturbations(case):
    """The admissibility of the bound is hint-independent: whatever the
    selectivities/CPU weights/key counts say, guided returns exactly the
    eager prefix — and keeps doing so after a dirty-spine invalidation
    re-search over the same memo."""
    name, changes, k = case
    workload = WORKLOADS[name]
    hints = {**workload.hints, **changes}
    guided_opt = Optimizer(
        workload.catalog, hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=k,
    )
    memo = guided_opt.new_memo()
    guided = guided_opt.optimize(workload.plan, memo=memo)
    eager = Optimizer(
        workload.catalog, hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    assert_prefix_identical(guided, eager, k)

    # A second perturbation re-searched over the invalidated memo must
    # again match an eager rebuild under the new hints exactly.
    more = {op: Hints(selectivity=1.3, cpu_per_call=2.0) for op in changes}
    hints2 = {**hints, **more}
    guided_opt.hints = hints2
    re_guided = guided_opt.reoptimize(workload.plan, memo, set(more))
    re_eager = Optimizer(
        workload.catalog, hints2, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    assert_prefix_identical(re_guided, re_eager, k)


def test_guided_top_k_beyond_space_returns_full_ranking():
    workload = WORKLOADS["textmining"]
    eager = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
    ).optimize(workload.plan)
    space = eager.plan_count
    guided = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=space + 10,
    ).optimize(workload.plan)
    assert_prefix_identical(guided, eager, space)


# -- composition: sampling and parallel waves ------------------------------


@pytest.mark.parametrize("seed", [0, 7])
def test_guided_matches_eager_under_sampling(seed):
    workload = WORKLOADS["tpch_q7"]
    kwargs = dict(max_alternatives=40, sample_seed=seed)
    eager = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        **kwargs,
    ).optimize(workload.plan)
    guided = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=3, **kwargs,
    ).optimize(workload.plan)
    assert eager.plan_count == 40
    assert_prefix_identical(guided, eager, 3)
    # and the sample itself is deterministic per seed
    again = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=3, **kwargs,
    ).optimize(workload.plan)
    assert_prefix_identical(guided, again, 3)


@pytest.mark.skipif(not HAS_FORK, reason="wave costing requires fork")
@pytest.mark.skipif(not parallel.available(), reason="parallel unavailable")
@pytest.mark.parametrize("k", [1, 4])
def test_guided_parallel_waves_match_sequential(k):
    workload = WORKLOADS["tpch_q7"]
    sequential = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=k,
    ).optimize(workload.plan)
    waves = Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=k, jobs=2,
    ).optimize(workload.plan)
    assert_prefix_identical(waves, sequential, k)


# -- work accounting -------------------------------------------------------


def test_guided_search_stats_prove_pruning():
    workload = WORKLOADS["tpch_q7"]
    guided, eager = optimize_both(workload, 1)
    gs, es = guided.search_stats, eager.search_stats
    assert gs.search == "guided" and es.search == "eager"
    # Same space expanded, but guided costed only a sliver of it.
    assert gs.expanded == es.expanded == eager.plan_count
    assert gs.costed < gs.expanded
    assert gs.costed + gs.pruned == gs.expanded
    assert es.costed == es.expanded and es.pruned == 0
    # Bounds were computed (one per distinct subtree of the space) and
    # bought a large reduction in estimation work.
    assert gs.bounds_computed > 0
    assert es.bounds_computed == 0
    assert gs.estimate_calls < es.estimate_calls


def test_search_stats_exported_as_counters():
    from repro.obs import Tracer

    workload = WORKLOADS["textmining"]
    tracer = Tracer()
    Optimizer(
        workload.catalog, workload.hints, AnnotationMode.SCA, workload.params,
        search="guided", top_k=1, tracer=tracer,
    ).optimize(workload.plan)
    counters = tracer.metrics.counters
    for name in (
        "optimizer.search.expanded",
        "optimizer.search.costed",
        "optimizer.search.pruned",
        "optimizer.search.bounds",
        "optimizer.estimates",
    ):
        assert name in counters, name
    assert counters["optimizer.search.expanded"] == (
        counters["optimizer.search.costed"]
        + counters["optimizer.search.pruned"]
    )


# -- configuration errors --------------------------------------------------


@pytest.mark.parametrize("bad", [0, -2, 1.5, True, "4"])
def test_optimizer_jobs_validation_is_a_value_error(bad):
    workload = WORKLOADS["textmining"]
    with pytest.raises(ValueError, match="jobs"):
        Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, jobs=bad,
        )
    # and still catchable as the subsystem error, for existing callers
    with pytest.raises(OptimizationError):
        Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, jobs=bad,
        )


@pytest.mark.parametrize("bad", [0, -1, 2.0, False, "2"])
def test_engine_jobs_validation_is_a_value_error(bad):
    workload = WORKLOADS["textmining"]
    with pytest.raises(ValueError, match="engine_jobs"):
        Engine(workload.params, workload.true_costs, engine_jobs=bad)
    with pytest.raises(ExecutionError):
        Engine(workload.params, workload.true_costs, engine_jobs=bad)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"search": "bestfirst"},
        {"search": "guided", "reuse_memo": False},
        {"top_k": 0},
        {"top_k": -3},
        {"top_k": 1.5},
        {"top_k": True},
    ],
)
def test_search_and_top_k_validation(kwargs):
    workload = WORKLOADS["textmining"]
    with pytest.raises(OptimizationConfigError):
        Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA,
            workload.params, **kwargs,
        )


def test_guided_is_rejected_under_feedback_experiments():
    workload = WORKLOADS["textmining"]
    with pytest.raises(OptimizationConfigError, match="feedback"):
        run_experiment(workload, feedback_rounds=1, search="guided")
    # the config error is a ValueError too
    with pytest.raises(ValueError):
        run_experiment(workload, feedback_rounds=1, search="guided")


def test_guided_runs_through_the_harness():
    workload = WORKLOADS["clickstream"]
    guided = run_experiment(workload, search="guided", top_k=2)
    eager = run_experiment(workload)
    assert guided.plan_count == 2
    got = [(p.rank, p.estimated_cost) for p in guided.executed]
    want = [
        (p.rank, p.cost) for p in eager.optimization.ranked[:2]
    ]
    assert got == want
