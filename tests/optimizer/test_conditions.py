"""ROC (Definition 4) and KGP (Definition 5) condition checks."""

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    FieldMap,
    KatBehavior,
    SourceStats,
    attrs,
    map_udf,
    reduce_udf,
)
from repro.core.operators import BoundProps, MapOp, ReduceOp
from repro.optimizer import PlanContext, kgp_kat, kgp_map, roc
from tests.conftest import identity_udf

A, B, C = attrs("t.a", "t.b", "t.c")


def props(reads=(), writes=(), branch=(), bounds=EmitBounds.exactly(1),
          kat=KatBehavior.NOT_KAT):
    return BoundProps(
        reads=frozenset(reads),
        branch_reads=frozenset(branch),
        modified=frozenset(writes),
        projected=frozenset(),
        new_attrs=frozenset(),
        emit_bounds=bounds,
        kat_behavior=kat,
        conservative=False,
    )


class TestROC:
    def test_disjoint_ok(self):
        assert roc(props(reads={A}), props(reads={A}))  # read/read never conflicts

    def test_read_write_conflict(self):
        assert not roc(props(reads={A}), props(writes={A}))
        assert not roc(props(writes={A}), props(reads={A}))

    def test_write_write_conflict(self):
        assert not roc(props(writes={A}), props(writes={A}))

    def test_disjoint_writes_ok(self):
        assert roc(props(reads={A}, writes={B}), props(reads={A}, writes={C}))


class TestKgpMap:
    def test_exactly_one_always_preserves(self):
        assert kgp_map(props(bounds=EmitBounds.exactly(1)), frozenset())

    def test_filter_inside_key(self):
        p = props(branch={A}, bounds=EmitBounds.at_most_one())
        assert kgp_map(p, frozenset({A, B}))

    def test_filter_outside_key(self):
        p = props(branch={B}, bounds=EmitBounds.at_most_one())
        assert not kgp_map(p, frozenset({A}))

    def test_multi_emit_never_preserves(self):
        p = props(bounds=EmitBounds(0, 3))
        assert not kgp_map(p, frozenset({A}))

    def test_unbounded_never_preserves(self):
        assert not kgp_map(props(bounds=EmitBounds.unbounded()), frozenset({A}))


class TestKgpKat:
    def make_reduce(self, key_positions=(0,)):
        return ReduceOp(
            "r", reduce_udf(identity_udf), FieldMap((A, B, C)), key_positions
        )

    def test_all_or_none_with_refining_key(self):
        op = self.make_reduce((0,))
        p = props(bounds=EmitBounds.unbounded(), kat=KatBehavior.ALL_OR_NONE)
        assert kgp_kat(op, p, frozenset({A, B}))  # {A} subset of {A,B}

    def test_all_or_none_with_unrelated_key(self):
        op = self.make_reduce((0,))
        p = props(bounds=EmitBounds.unbounded(), kat=KatBehavior.ALL_OR_NONE)
        assert not kgp_kat(op, p, frozenset({B}))

    def test_one_per_group_never_preserves(self):
        op = self.make_reduce((0,))
        p = props(bounds=EmitBounds.exactly(1), kat=KatBehavior.ONE_PER_GROUP)
        assert not kgp_kat(op, p, frozenset({A}))

    def test_arbitrary_never_preserves(self):
        op = self.make_reduce((0,))
        p = props(kat=KatBehavior.ARBITRARY)
        assert not kgp_kat(op, p, frozenset({A}))


class TestContextDerivations:
    def test_conservative_props_block_everything(self):
        catalog = Catalog()
        catalog.add_source("t", SourceStats(10))

        def escapes(rec, out):
            _helper(rec, out)

        op = MapOp("m", map_udf(escapes), FieldMap((A, B)))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        bound = ctx.props(op)
        assert bound.conservative
        assert bound.reads == frozenset({A, B})
        assert bound.writes == frozenset({A, B})


def _helper(rec, out):
    out.emit(rec.copy())
