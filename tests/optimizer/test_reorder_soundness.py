"""Property-based soundness of reordering (the theorems of Section 4).

Random UDFs + random data: every plan the enumerator derives must produce
a bag-identical result to the original flow.  This exercises Theorems 1/2
end to end through SCA-derived properties — if either the analyzer or the
swap conditions were too permissive, this test would find it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnnotationMode,
    Catalog,
    FieldMap,
    MapOp,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    chain,
    datasets_equal,
    evaluate,
    map_udf,
    project,
    reduce_udf,
)
from repro.optimizer import PlanContext, enumerate_flows
from repro.sca import parse_tac

WIDTH = 3
ATTRS = attrs(*(f"t.f{i}" for i in range(WIDTH)))
FMAP = FieldMap(ATTRS)


@st.composite
def map_udf_texts(draw) -> str:
    """Small random Map UDFs: optional filter, optional field rewrites."""
    lines = ["f(InputRecord $ir):"]
    guard_pos = draw(st.one_of(st.none(), st.integers(0, WIDTH - 1)))
    if guard_pos is not None:
        lines.append(f"$g := getField($ir, {guard_pos})")
        lines.append(f"if $g < {draw(st.integers(-1, 1))} goto SKIP")
    lines.append("$or := copy($ir)")
    for i in range(draw(st.integers(0, 2))):
        pos = draw(st.integers(0, WIDTH - 1))
        src = draw(st.integers(0, WIDTH - 1))
        lines.append(f"$v{i} := getField($ir, {src})")
        lines.append(f"$w{i} := $v{i} + {draw(st.integers(1, 3))}")
        lines.append(f"setField($or, {pos}, $w{i})")
    lines.append("emit($or)")
    lines.append("SKIP:")
    lines.append("return")
    return "\n".join(lines)


SUM_REDUCE = """
agg($recs):
    $sum := 0
    $it := iter($recs)
L0:
    $r := next($it) else LD
    $v := getField($r, 1)
    $sum := $sum + $v
    goto L0
LD:
    $first := getitem($recs, 0)
    $o := copy($first)
    setField($o, 1, $sum)
    emit($o)
    return
"""


def make_ctx():
    catalog = Catalog()
    catalog.add_source("T", SourceStats(16))
    return PlanContext(catalog, AnnotationMode.SCA)


def rows_from(ints):
    rows = []
    for chunk_start in range(0, len(ints) - WIDTH + 1, WIDTH):
        chunk = ints[chunk_start : chunk_start + WIDTH]
        rows.append({a: v for a, v in zip(ATTRS, chunk)})
    return rows


@settings(max_examples=60, deadline=None)
@given(
    texts=st.lists(map_udf_texts(), min_size=2, max_size=3),
    ints=st.lists(st.integers(-3, 3), min_size=WIDTH, max_size=WIDTH * 6),
)
def test_all_enumerated_map_chains_equivalent(texts, ints):
    ops = [MapOp(f"m{i}", map_udf(parse_tac(t)), FMAP) for i, t in enumerate(texts)]
    flow = chain(Source("T", ATTRS), *ops)
    ctx = make_ctx()
    alternatives = enumerate_flows(flow, ctx)
    data = {"T": rows_from(ints)}
    baseline = evaluate(flow, data)
    for alternative in alternatives:
        assert datasets_equal(evaluate(alternative, data), baseline)


@settings(max_examples=40, deadline=None)
@given(
    text=map_udf_texts(),
    ints=st.lists(st.integers(-3, 3), min_size=WIDTH, max_size=WIDTH * 6),
)
def test_map_reduce_reorderings_equivalent(text, ints):
    m = MapOp("m", map_udf(parse_tac(text)), FMAP)
    r = ReduceOp("agg", reduce_udf(parse_tac(SUM_REDUCE)), FMAP, (0,))
    flow = chain(Source("T", ATTRS), m, r)
    ctx = make_ctx()
    alternatives = enumerate_flows(flow, ctx)
    data = {"T": rows_from(ints)}
    baseline = project(evaluate(flow, data), (ATTRS[0], ATTRS[1]))
    for alternative in alternatives:
        result = project(evaluate(alternative, data), (ATTRS[0], ATTRS[1]))
        assert datasets_equal(result, baseline)


@settings(max_examples=40, deadline=None)
@given(texts=st.lists(map_udf_texts(), min_size=2, max_size=2))
def test_swap_legality_is_symmetric(texts):
    """If m over n may swap, the swapped plan must offer the inverse swap."""
    ctx = make_ctx()
    ops = [MapOp(f"m{i}", map_udf(parse_tac(t)), FMAP) for i, t in enumerate(texts)]
    flow = chain(Source("T", ATTRS), *ops)
    alternatives = enumerate_flows(flow, ctx)
    from repro.core import signature

    for alternative in alternatives:
        back = {signature(f) for f in enumerate_flows(alternative, ctx)}
        assert signature(flow) in back
