"""The rank-pick protocol (Figures 5/6): endpoint coverage and edge counts."""

from repro.core import AnnotationMode
from repro.datagen import TpchScale
from repro.optimizer import Optimizer
from repro.optimizer.optimizer import OptimizationResult, RankedPlan
from repro.workloads import build_q15


def _result(n: int) -> OptimizationResult:
    ranked = [RankedPlan(rank=i + 1, body=None, physical=None) for i in range(n)]
    return OptimizationResult(
        original_body=None,
        ranked=ranked,
        enumeration_seconds=0.0,
        physical_seconds=0.0,
    )


class TestPicks:
    def test_single_pick_returns_rank_one(self):
        """picks(1) used to divide by ``count - 1`` and crash."""
        result = _result(25)
        picks = result.picks(1)
        assert [p.rank for p in picks] == [1]

    def test_non_positive_count_picks_nothing(self):
        assert _result(25).picks(0) == []
        assert _result(25).picks(-3) == []

    def test_fewer_plans_than_picks_takes_all(self):
        assert [p.rank for p in _result(4).picks(10)] == [1, 2, 3, 4]

    def test_endpoints_and_spacing(self):
        picks = _result(100).picks(10)
        ranks = [p.rank for p in picks]
        assert len(ranks) == 10
        assert ranks[0] == 1 and ranks[-1] == 100
        assert ranks == sorted(set(ranks))

    def test_single_pick_on_real_workload(self):
        workload = build_q15(TpchScale(suppliers=20, customers=30, orders=120))
        result = Optimizer(
            workload.catalog, workload.hints, AnnotationMode.SCA, workload.params
        ).optimize(workload.plan)
        (pick,) = result.picks(1)
        assert pick.rank == 1
        assert pick is result.best
