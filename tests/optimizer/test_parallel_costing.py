"""Parallel plan costing must be bit-identical to sequential costing.

``Optimizer(jobs=N)`` shards the alternative list across forked worker
processes, each costing against its own copy of the shared memo; the
worker entries are shipped back as primitives and merged.  These tests
pin that the parallel path is plan-for-plan identical to the sequential
one (ranked order, exact costs, ships, locals, estimates), that the
merged memo is usable afterwards (warm reuse, dirty-spine invalidation),
and that the whole pipeline composes with the feedback loop and CLI.
"""

import multiprocessing

import pytest

from repro.core import AnnotationMode
from repro.core.plan import body as plan_body, signature
from repro.optimizer import Hints, Optimizer
from repro.optimizer import parallel
from repro.workloads import build_clickstream, build_q7, build_textmining

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel costing requires fork-style process inheritance",
)


def assert_identical(got, want):
    assert got.plan_count == want.plan_count
    for g, w in zip(got.ranked, want.ranked):
        assert g.rank == w.rank
        assert signature(g.body) == signature(w.body)
        assert g.cost == w.cost  # exact float equality
        assert g.physical.describe() == w.physical.describe()


@pytest.fixture(scope="module")
def q7():
    return build_q7()


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_matches_sequential_q7(q7, jobs):
    sequential = Optimizer(
        q7.catalog, q7.hints, AnnotationMode.SCA, q7.params
    ).optimize(q7.plan)
    parallel_result = Optimizer(
        q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, jobs=jobs
    ).optimize(q7.plan)
    assert_identical(parallel_result, sequential)


def test_parallel_matches_sequential_small_spaces():
    for build in (build_clickstream, build_textmining):
        w = build()
        sequential = Optimizer(
            w.catalog, w.hints, AnnotationMode.SCA, w.params
        ).optimize(w.plan)
        parallel_result = Optimizer(
            w.catalog, w.hints, AnnotationMode.SCA, w.params, jobs=3
        ).optimize(w.plan)
        assert_identical(parallel_result, sequential)


def test_parallel_merges_worker_memos(q7):
    opt = Optimizer(q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, jobs=2)
    memo = opt.new_memo()
    first = opt.optimize(q7.plan, memo=memo)
    # the merged memo covers every distinct sub-plan of the closure
    distinct = set()
    for alt in memo.closures[plan_body(q7.plan)]:
        stack = [alt]
        while stack:
            n = stack.pop()
            distinct.add(n)
            stack.extend(n.children)
    assert set(memo.table) == distinct
    # and is immediately reusable: a warm second call is identical
    again = opt.optimize(q7.plan, memo=memo)
    assert_identical(again, first)


def test_invalidation_over_parallel_merged_memo(q7):
    """Dirty-spine re-costing over worker-built entries stays exact."""
    opt = Optimizer(q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, jobs=2)
    memo = opt.new_memo()
    opt.optimize(q7.plan, memo=memo)
    opt.hints = {**q7.hints, "gamma_revenue": Hints(distinct_keys=9, cpu_per_call=2.0)}
    incremental = opt.reoptimize(q7.plan, memo, {"gamma_revenue"})
    full = Optimizer(
        q7.catalog, opt.hints, AnnotationMode.SCA, q7.params
    ).optimize(q7.plan)
    assert_identical(incremental, full)


def test_parallel_composes_with_sampling(q7):
    kwargs = dict(max_alternatives=30, sample_seed=11)
    sequential = Optimizer(
        q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, **kwargs
    ).optimize(q7.plan)
    parallel_result = Optimizer(
        q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, jobs=2, **kwargs
    ).optimize(q7.plan)
    assert sequential.plan_count == 30
    assert_identical(parallel_result, sequential)


def test_parallel_feedback_experiment_matches_sequential(tmp_path):
    """The adaptive loop with jobs=2 reproduces the sequential outcome."""
    from repro.bench import run_experiment

    w = build_clickstream()
    seq = run_experiment(w, picks=3, feedback_rounds=1)
    par = run_experiment(build_clickstream(), picks=3, feedback_rounds=1, jobs=2)
    assert seq.feedback is not None and par.feedback is not None
    assert len(seq.feedback.rounds) == len(par.feedback.rounds)
    for a, b in zip(seq.feedback.rounds, par.feedback.rounds):
        assert a.pick.rank == b.pick.rank
        assert a.pick_seconds == b.pick_seconds
        assert a.qerror.per_node == b.qerror.per_node
    assert [p.runtime_seconds for p in seq.executed] == [
        p.runtime_seconds for p in par.executed
    ]


def test_worker_state_is_cleaned_up(q7):
    Optimizer(
        q7.catalog, q7.hints, AnnotationMode.SCA, q7.params, jobs=2
    ).optimize(q7.plan)
    assert parallel._WORKER is None


def test_cli_jobs_flag(capsys):
    from repro.cli import main

    assert main(["experiment", "tpch_q15", "--picks", "2", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Experiment" in out
