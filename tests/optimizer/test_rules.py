"""Swap rules: Theorems 1-4 and Lemma 1 as pairwise legality checks."""

from repro.core import (
    AnnotationMode,
    Catalog,
    FieldMap,
    MapOp,
    MatchOp,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    binary_udf,
    map_udf,
    node,
    reduce_udf,
)
from repro.core.plan import linearize
from repro.optimizer import (
    PlanContext,
    can_exchange_unary_binary,
    can_rotate,
    can_swap_unary_unary,
    enumerate_flows,
)
from tests.conftest import concat_udf, paper_f1, paper_f2, paper_f3

AB = attrs("i.a", "i.b")
RS = attrs("r.k", "r.v")
ST = attrs("s.k", "s.w")


def ctx_for(*sources):
    catalog = Catalog()
    for name, rows in sources:
        catalog.add_source(name, SourceStats(rows))
    return catalog, PlanContext(catalog, AnnotationMode.SCA)


class TestTheorem1MapMap:
    """Two Maps reorder iff the ROC condition holds."""

    def setup_method(self):
        _, self.ctx = ctx_for(("I", 10))
        fmap = FieldMap(AB)
        self.m1 = MapOp("m1", map_udf(paper_f1), fmap)
        self.m2 = MapOp("m2", map_udf(paper_f2), fmap)
        self.m3 = MapOp("m3", map_udf(paper_f3), fmap)

    def test_f1_f2_reorderable(self):
        assert can_swap_unary_unary(self.m2, self.m1, self.ctx)
        assert can_swap_unary_unary(self.m1, self.m2, self.ctx)

    def test_f2_f3_conflict_on_a(self):
        assert not can_swap_unary_unary(self.m3, self.m2, self.ctx)

    def test_f1_f3_conflict_on_b(self):
        assert not can_swap_unary_unary(self.m3, self.m1, self.ctx)


class TestTheorem2MapReduce:
    """Map/Reduce reorder needs ROC plus KGP for the Reduce key."""

    def setup_method(self):
        _, self.ctx = ctx_for(("I", 10))
        self.fmap = FieldMap(AB)

        def count_group(records, out):
            o = records[0].copy()
            o.set_field(2, len(records))
            out.emit(o)

        self.reduce_on_a = ReduceOp(
            "red", reduce_udf(count_group), self.fmap, (0,)
        )

    def test_filter_on_key_passes(self):
        m = MapOp("filter_a", map_udf(paper_f2), self.fmap)  # filters on A
        assert can_swap_unary_unary(self.reduce_on_a, m, self.ctx)

    def test_filter_off_key_blocked(self):
        def filter_b(rec, out):
            if rec.get_field(1) > 0:
                out.emit(rec.copy())

        m = MapOp("filter_b", map_udf(filter_b), self.fmap)
        assert not can_swap_unary_unary(self.reduce_on_a, m, self.ctx)

    def test_one_to_one_map_passes(self):
        def negate_b(rec, out):
            r = rec.copy()
            r.set_field(1, -rec.get_field(1))
            out.emit(r)

        m = MapOp("neg_b", map_udf(negate_b), self.fmap)
        assert can_swap_unary_unary(self.reduce_on_a, m, self.ctx)

    def test_roc_still_required(self):
        def rewrite_key(rec, out):
            r = rec.copy()
            r.set_field(0, 0)
            out.emit(r)

        m = MapOp("rewrite_key", map_udf(rewrite_key), self.fmap)
        # writes A which the Reduce reads (its key): ROC fails
        assert not can_swap_unary_unary(self.reduce_on_a, m, self.ctx)


class TestTheorem3MapPastBinary:
    def setup_method(self):
        self.catalog, self.ctx = ctx_for(("R", 10), ("S", 10))
        self.match = MatchOp(
            "join", binary_udf(concat_udf), FieldMap(RS), FieldMap(ST), (0,), (0,)
        )
        self.s_side = node(Source("S", ST))

    def test_map_on_left_attrs_passes(self):
        def touch_left(rec, out):
            r = rec.copy()
            r.set_field(1, rec.get_field(1) + 1)
            out.emit(r)

        m = MapOp("m", map_udf(touch_left), FieldMap(RS))
        assert can_exchange_unary_binary(m, self.match, 0, self.s_side, self.ctx)

    def test_map_reading_other_side_blocked(self):
        combined = RS + ST

        def reads_right(rec, out):
            if rec.get_field(3) > 0:  # s.w, a right-side attribute
                out.emit(rec.copy())

        m = MapOp("m", map_udf(reads_right), FieldMap(combined))
        assert not can_exchange_unary_binary(m, self.match, 0, self.s_side, self.ctx)


class TestTheorem4InvariantGrouping:
    """Reduce past Match: PK-FK join + grouping on the match key."""

    def setup_method(self):
        self.catalog, self.ctx = ctx_for(("R", 100), ("S", 10))

        def agg(records, out):
            o = records[0].copy()
            o.set_field(1, len(records))
            out.emit(o)

        self.reduce_on_k = ReduceOp("agg", reduce_udf(agg), FieldMap(RS), (0,))
        self.match = MatchOp(
            "join", binary_udf(concat_udf), FieldMap(RS), FieldMap(ST), (0,), (0,)
        )
        self.s_side = node(Source("S", ST))

    def test_blocked_without_unique_key(self):
        assert not can_exchange_unary_binary(
            self.reduce_on_k, self.match, 0, self.s_side, self.ctx
        )

    def test_passes_with_unique_dimension_key(self):
        self.catalog.declare_unique(ST[0])
        ctx = PlanContext(self.catalog, AnnotationMode.SCA)
        assert can_exchange_unary_binary(
            self.reduce_on_k, self.match, 0, self.s_side, ctx
        )

    def test_blocked_if_reduce_key_not_superset_of_match_key(self):
        self.catalog.declare_unique(ST[0])
        ctx = PlanContext(self.catalog, AnnotationMode.SCA)

        def agg(records, out):
            o = records[0].copy()
            o.set_field(0, len(records))
            out.emit(o)

        reduce_on_v = ReduceOp("agg_v", reduce_udf(agg), FieldMap(RS), (1,))
        assert not can_exchange_unary_binary(
            reduce_on_v, self.match, 0, self.s_side, ctx
        )


class TestLemma1Rotations:
    def setup_method(self):
        T = attrs("t.k", "t.x")
        self.T = T
        self.catalog, self.ctx = ctx_for(("R", 10), ("S", 10), ("T", 10))
        self.lower = MatchOp(
            "j1", binary_udf(concat_udf), FieldMap(RS), FieldMap(ST), (0,), (0,)
        )
        # upper joins S with T (keys from S and T)
        self.upper = MatchOp(
            "j2", binary_udf(concat_udf), FieldMap(RS + ST), FieldMap(T),
            (3,), (1,),  # s.w = t.x
        )
        self.r_node = node(Source("R", RS))
        self.t_node = node(Source("T", T))

    def test_rotation_legal_when_sides_disjoint(self):
        # upper accesses s.w/t.x only: it may take the S side (stay = R side)
        assert can_rotate(self.upper, self.lower, self.r_node, self.t_node, self.ctx)

    def test_rotation_blocked_when_upper_needs_stay_side(self):
        upper_on_r = MatchOp(
            "j3", binary_udf(concat_udf), FieldMap(RS + ST), FieldMap(self.T),
            (1,), (1,),  # r.v = t.x -- reads the R side
        )
        assert not can_rotate(upper_on_r, self.lower, self.r_node, self.t_node, self.ctx)

    def test_non_binary_ops_rejected(self):
        m = MapOp("m", map_udf(paper_f2), FieldMap(AB))
        assert not can_rotate(m, self.lower, self.r_node, self.t_node, self.ctx)


class TestSection3Enumeration:
    def test_paper_example_plan_space(self):
        """I -> f1 -> f2 -> f3: only f1/f2 swap, two total orders."""
        _, ctx = ctx_for(("I", 10))
        src = Source("I", AB)
        fmap = FieldMap(AB)
        flow = node(
            MapOp("m3", map_udf(paper_f3), fmap),
            node(
                MapOp("m2", map_udf(paper_f2), fmap),
                node(MapOp("m1", map_udf(paper_f1), fmap), node(src)),
            ),
        )
        alternatives = enumerate_flows(flow, ctx)
        orders = sorted(linearize(a) for a in alternatives)
        assert orders == [("m1", "m2", "m3"), ("m2", "m1", "m3")]
