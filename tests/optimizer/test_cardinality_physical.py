"""Cardinality estimation and physical strategy selection."""

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    FieldMap,
    FieldSet,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    SourceStats,
    UdfProperties,
    attrs,
    binary_udf,
    chain,
    map_udf,
    node,
    reduce_udf,
)
from repro.optimizer import (
    CardinalityEstimator,
    CostParams,
    Hints,
    LocalStrategy,
    PlanContext,
    ShipKind,
    optimize_physical,
)
from tests.conftest import concat_udf, identity_udf

L = attrs("l.k", "l.v")
S = attrs("s.k", "s.name")


def setup_env(l_rows=1000, s_rows=10):
    catalog = Catalog()
    catalog.add_source(
        "L", SourceStats(l_rows, distinct={L[0]: s_rows}, attr_bytes={a: 8.0 for a in L})
    )
    catalog.add_source(
        "S", SourceStats(s_rows, distinct={S[0]: s_rows}, attr_bytes={a: 8.0 for a in S})
    )
    catalog.declare_unique(S[0])
    ctx = PlanContext(catalog, AnnotationMode.MANUAL)
    return catalog, ctx


def exactly_one():
    return UdfProperties(emit_bounds=EmitBounds.exactly(1))


def filter_half():
    return UdfProperties(
        reads=FieldSet.of((0, 1)),
        branch_reads=FieldSet.of((0, 1)),
        emit_bounds=EmitBounds.at_most_one(),
    )


class TestEstimator:
    def test_source_rows(self):
        _, ctx = setup_env()
        est = CardinalityEstimator(ctx)
        assert est.estimate(node(Source("L", L))).rows == 1000

    def test_map_hint_selectivity(self):
        _, ctx = setup_env()
        m = MapOp("f", map_udf(identity_udf, filter_half()), FieldMap(L))
        flow = chain(Source("L", L), m)
        est = CardinalityEstimator(ctx, {"f": Hints(selectivity=0.25)})
        assert est.estimate(flow).rows == 250

    def test_map_default_selectivity_from_bounds(self):
        _, ctx = setup_env()
        m = MapOp("f", map_udf(identity_udf, filter_half()), FieldMap(L))
        flow = chain(Source("L", L), m)
        est = CardinalityEstimator(ctx)
        assert est.estimate(flow).rows == 500  # (0,1) bounds default 0.5

    def test_reduce_groups_from_catalog_distinct(self):
        _, ctx = setup_env()
        r = ReduceOp("g", reduce_udf(identity_udf, exactly_one()), FieldMap(L), (0,))
        flow = chain(Source("L", L), r)
        est = CardinalityEstimator(ctx)
        assert est.estimate(flow).rows == 10

    def test_reduce_per_group_honors_emit_bounds(self):
        """Pin the Reduce output cardinality per emit-bounds shape: an
        exactly-one aggregation keeps every group, a filter-like reduce
        (lo=0, hi=1) defaults to dropping half, anything else defaults to
        one record per group."""
        _, ctx = setup_env()

        def reduce_rows(props):
            r = ReduceOp("g", reduce_udf(identity_udf, props), FieldMap(L), (0,))
            flow = chain(Source("L", L), r)
            return CardinalityEstimator(ctx).estimate(flow)

        agg = reduce_rows(exactly_one())
        assert (agg.rows, agg.calls) == (10, 10)
        filtering = reduce_rows(
            UdfProperties(emit_bounds=EmitBounds.at_most_one())
        )
        assert (filtering.rows, filtering.calls) == (5, 10)
        unbounded = reduce_rows(UdfProperties())
        assert (unbounded.rows, unbounded.calls) == (10, 10)

    def test_reduce_hint_selectivity_overrides_bounds(self):
        _, ctx = setup_env()
        r = ReduceOp(
            "g",
            reduce_udf(identity_udf, exactly_one()),
            FieldMap(L),
            (0,),
        )
        flow = chain(Source("L", L), r)
        est = CardinalityEstimator(ctx, {"g": Hints(selectivity=3.0)})
        assert est.estimate(flow).rows == 30

    def test_match_uses_key_distincts(self):
        _, ctx = setup_env()
        m = MatchOp("j", binary_udf(concat_udf, exactly_one()),
                    FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(Source("L", L)), node(Source("S", S)))
        est = CardinalityEstimator(ctx)
        # 1000 x 10 / max(10, 10) = 1000
        assert est.estimate(flow).rows == 1000

    def test_width_includes_new_attrs(self):
        _, ctx = setup_env()
        props = UdfProperties(
            writes_modified=FieldSet.of(2), emit_bounds=EmitBounds.exactly(1)
        )
        m = MapOp("w", map_udf(identity_udf, props), FieldMap(L))
        flow = chain(Source("L", L), m)
        est = CardinalityEstimator(ctx)
        assert est.estimate(flow).width > est.estimate(flow.only_child).width


class TestPhysical:
    def make_q15_like(self):
        catalog, ctx = setup_env()
        r = ReduceOp(
            "agg",
            reduce_udf(identity_udf, UdfProperties(
                reads=FieldSet.of((0, 1)),
                emit_bounds=EmitBounds.exactly(1),
            )),
            FieldMap(L), (0,),
        )
        m = MatchOp("join", binary_udf(concat_udf, exactly_one()),
                    FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(r, node(Source("L", L))), node(Source("S", S)))
        return ctx, flow

    def test_partitioning_reuse_after_reduce(self):
        """The Q15 story: Match reuses the Reduce's partitioning (forward)."""
        ctx, flow = self.make_q15_like()
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        assert phys.local is LocalStrategy.HASH_JOIN
        left_ship = phys.ships[0]
        assert left_ship.kind is ShipKind.FORWARD  # reduce side reused

    def test_reduce_partitions_random_input(self):
        catalog, ctx = setup_env()
        r = ReduceOp("agg", reduce_udf(identity_udf, exactly_one()), FieldMap(L), (0,))
        flow = chain(Source("L", L), r)
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        assert phys.ships[0].kind is ShipKind.PARTITION

    def test_broadcast_chosen_for_tiny_build_side(self):
        catalog, ctx = setup_env(l_rows=100_000, s_rows=5)
        m = MatchOp("join", binary_udf(concat_udf, exactly_one()),
                    FieldMap(L), FieldMap(S), (0,), (0,))
        flow = node(m, node(Source("L", L)), node(Source("S", S)))
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        kinds = {s.kind for s in phys.ships}
        assert ShipKind.BROADCAST in kinds
        assert phys.build_side == 1  # the tiny supplier side builds

    def test_map_preserves_partitioning_unless_writing_it(self):
        catalog, ctx = setup_env()
        r = ReduceOp("agg", reduce_udf(identity_udf, exactly_one()), FieldMap(L), (0,))
        touch_key = UdfProperties(
            writes_modified=FieldSet.of(0), emit_bounds=EmitBounds.exactly(1)
        )
        m = MapOp("touch", map_udf(identity_udf, touch_key), FieldMap(L))
        flow = chain(Source("L", L), r, m)
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        assert phys.partitioning == frozenset()  # key was overwritten

    def test_costs_monotone_with_children(self):
        ctx, flow = self.make_q15_like()
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        assert phys.cost_total >= max(c.cost_total for c in phys.children)
        assert phys.cost_self >= 0

    def test_sink_wrapping(self):
        ctx, flow = self.make_q15_like()
        est = CardinalityEstimator(ctx)
        plan = node(Sink("out"), flow)
        phys = optimize_physical(plan, ctx, est, CostParams(degree=8))
        assert phys.local is LocalStrategy.COLLECT

    def test_describe_renders(self):
        ctx, flow = self.make_q15_like()
        est = CardinalityEstimator(ctx)
        phys = optimize_physical(flow, ctx, est, CostParams(degree=8))
        text = phys.describe()
        assert "join" in text and "hash join" in text
