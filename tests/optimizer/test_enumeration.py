"""Enumeration: closure BFS vs the paper's Algorithm 1; memoization; limits."""

import pytest

from repro.core import (
    AnnotationMode,
    Catalog,
    EmitBounds,
    FieldMap,
    FieldSet,
    MapOp,
    OptimizationError,
    PlanError,
    Sink,
    Source,
    SourceStats,
    UdfProperties,
    attrs,
    chain,
    map_udf,
    node,
    signature,
)
from repro.core.plan import linearize
from repro.optimizer import (
    PlanContext,
    count_alternatives,
    enum_alternatives_chain,
    enumerate_flows,
)
from tests.conftest import identity_udf

WIDTH = 5
ATTRS = attrs(*(f"t.f{i}" for i in range(WIDTH)))
FMAP = FieldMap(ATTRS)


def make_ctx():
    catalog = Catalog()
    catalog.add_source("T", SourceStats(10))
    return PlanContext(catalog, AnnotationMode.MANUAL)


def annotated_map(name, reads=(), writes=()):
    props = UdfProperties(
        reads=FieldSet.of(*(((0, p)) for p in reads)),
        writes_modified=FieldSet.of(*writes),
        emit_bounds=EmitBounds.exactly(1),
    )
    return MapOp(name, map_udf(identity_udf, props), FMAP)


def build_chain(*ops):
    return chain(Source("T", ATTRS), *ops)


class TestClosureVsAlgorithm1:
    def cases(self):
        # (ops, expected order count): conflict structure varies
        yield [annotated_map("a", reads=(0,)), annotated_map("b", reads=(1,)),
               annotated_map("c", reads=(2,))], 6  # all commute
        yield [annotated_map("a", writes=(0,)), annotated_map("b", reads=(0,)),
               annotated_map("c", reads=(3,))], 3  # a<b fixed, c free
        # a must precede b and c (both read what a writes); b and c share
        # only a read of field 0, which never conflicts.
        yield [annotated_map("a", writes=(0,)), annotated_map("b", reads=(0,)),
               annotated_map("c", writes=(1,), reads=(0,))], 2

    def test_agreement_and_counts(self):
        ctx = make_ctx()
        for ops, expected in self.cases():
            flow = build_chain(*ops)
            closure = {signature(f) for f in enumerate_flows(flow, ctx)}
            alg1 = {signature(f) for f in enum_alternatives_chain(flow, ctx)}
            assert closure == alg1
            assert len(closure) == expected

    def test_closure_independent_of_start(self):
        ctx = make_ctx()
        ops = [annotated_map("a", reads=(0,)), annotated_map("b", reads=(1,)),
               annotated_map("c", writes=(2,))]
        flow = build_chain(*ops)
        all_flows = enumerate_flows(flow, ctx)
        reference = {signature(f) for f in all_flows}
        for other_start in all_flows:
            assert {signature(f) for f in enumerate_flows(other_start, ctx)} == reference


class TestAlgorithm1Details:
    def test_handles_sink(self):
        ctx = make_ctx()
        flow = node(Sink("out"), build_chain(annotated_map("a"), annotated_map("b")))
        results = enum_alternatives_chain(flow, ctx)
        assert len(results) == 2
        assert all(isinstance(r.op, Sink) for r in results)

    def test_rejects_binary_flows(self):
        from repro.core import MatchOp, binary_udf
        from tests.conftest import concat_udf

        ctx = make_ctx()
        other = attrs("u.x")
        match = MatchOp(
            "j",
            binary_udf(concat_udf, UdfProperties(emit_bounds=EmitBounds.exactly(1))),
            FMAP, FieldMap(other), (0,), (0,),
        )
        flow = node(match, build_chain(annotated_map("a")), node(Source("U", other)))
        with pytest.raises(PlanError):
            enum_alternatives_chain(flow, ctx)

    def test_original_flow_always_included(self):
        ctx = make_ctx()
        flow = build_chain(annotated_map("a", writes=(0,)),
                           annotated_map("b", reads=(0,)))
        results = enum_alternatives_chain(flow, ctx)
        assert signature(flow) in {signature(r) for r in results}


class TestClosureVsAlgorithm1Property:
    """Property-style check on random legal chains: the BFS closure and the
    paper's Algorithm 1 must agree on count and plan set after the
    interning rewrite."""

    def random_ops(self, rng, count):
        ops = []
        for k in range(count):
            reads = tuple(
                p for p in range(WIDTH) if rng.random() < 0.4
            )
            writes = tuple(
                p for p in range(WIDTH) if rng.random() < 0.25
            )
            ops.append(annotated_map(f"p{k}", reads=reads, writes=writes))
        return ops

    def test_random_chains_agree(self):
        import random

        rng = random.Random(20120830)  # the paper's PVLDB year, for luck
        ctx = make_ctx()
        for trial in range(25):
            ops = self.random_ops(rng, rng.randint(2, 5))
            flow = build_chain(*ops)
            closure = enumerate_flows(flow, ctx)
            alg1 = enum_alternatives_chain(flow, ctx)
            assert len(closure) == len(alg1)
            assert {signature(f) for f in closure} == {
                signature(f) for f in alg1
            }
            # interned plans: structurally equal alternatives are identical
            # objects, so the two enumerators return the very same nodes
            assert set(closure) == set(alg1)


class TestEnumerateFlows:
    def test_original_is_first(self):
        ctx = make_ctx()
        flow = build_chain(annotated_map("a"), annotated_map("b"))
        assert enumerate_flows(flow, ctx)[0] == flow

    def test_sink_rejected(self):
        ctx = make_ctx()
        plan = node(Sink("out"), build_chain(annotated_map("a")))
        with pytest.raises(PlanError):
            enumerate_flows(plan, ctx)

    def test_limit_enforced(self):
        ctx = make_ctx()
        ops = [annotated_map(f"m{i}", reads=(i % WIDTH,)) for i in range(5)]
        flow = build_chain(*ops)
        with pytest.raises(OptimizationError):
            enumerate_flows(flow, ctx, limit=10)

    def test_count_helper(self):
        ctx = make_ctx()
        flow = build_chain(annotated_map("a"), annotated_map("b"))
        assert count_alternatives(flow, ctx) == 2

    def test_factorial_growth_of_commuting_maps(self):
        ctx = make_ctx()
        ops = [annotated_map(f"m{i}", reads=(i % WIDTH,)) for i in range(4)]
        flow = build_chain(*ops)
        assert count_alternatives(flow, ctx) == 24

    def test_orders_are_distinct_plans(self):
        ctx = make_ctx()
        ops = [annotated_map("a", reads=(0,)), annotated_map("b", reads=(1,))]
        flow = build_chain(*ops)
        orders = {linearize(f) for f in enumerate_flows(flow, ctx)}
        assert orders == {("a", "b"), ("b", "a")}
