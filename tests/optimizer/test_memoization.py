"""The shared Volcano memo must not change optimization results.

``Optimizer(reuse_memo=True)`` shares one ``PhysicalOptimizer`` — and
hence one memo table of interned sub-plan -> pruned physical options —
across every enumerated alternative.  These tests pin that the memoized
results are plan-for-plan identical (ranked order, costs, shipping and
local strategies) to the unmemoized reference on all four paper
workloads, in both annotation modes where applicable.
"""

import pytest

from repro.core import AnnotationMode
from repro.core.plan import signature
from repro.optimizer import Optimizer
from repro.workloads import (
    build_clickstream,
    build_q7,
    build_q15,
    build_textmining,
)

BUILDERS = {
    "tpch_q7": build_q7,
    "tpch_q15": build_q15,
    "clickstream": build_clickstream,
    "textmining": build_textmining,
}


@pytest.fixture(scope="module")
def workloads():
    return {name: build() for name, build in BUILDERS.items()}


def optimize(workload, mode, reuse_memo):
    return Optimizer(
        workload.catalog, workload.hints, mode, workload.params,
        reuse_memo=reuse_memo,
    ).optimize(workload.plan)


@pytest.mark.parametrize("name", sorted(BUILDERS))
@pytest.mark.parametrize("mode", [AnnotationMode.SCA, AnnotationMode.MANUAL])
def test_memoized_matches_unmemoized(workloads, name, mode):
    workload = workloads[name]
    memoized = optimize(workload, mode, reuse_memo=True)
    reference = optimize(workload, mode, reuse_memo=False)
    assert memoized.plan_count == reference.plan_count
    for got, want in zip(memoized.ranked, reference.ranked):
        assert got.rank == want.rank
        assert signature(got.body) == signature(want.body)
        assert got.cost == want.cost  # exact float equality, not approx
        # describe() covers ships, local strategies, build sides, row
        # estimates, and per-node cumulative costs of the whole tree.
        assert got.physical.describe() == want.physical.describe()


def test_rank_of_distinguishes_equal_signatures():
    """Two distinct commuting operators that merely share a name produce
    ranked plans with identical signatures; the identity-keyed rank index
    must still resolve each plan to its own rank."""
    from repro.core import (
        Catalog,
        EmitBounds,
        FieldMap,
        FieldSet,
        MapOp,
        SourceStats,
        Source,
        UdfProperties,
        attrs,
        chain,
        map_udf,
    )
    from repro.optimizer import optimize as optimize_plan
    from tests.conftest import identity_udf

    fields = attrs("t.a", "t.b")
    catalog = Catalog()
    catalog.add_source("T", SourceStats(10))

    def named_map(read_pos):
        props = UdfProperties(
            reads=FieldSet.of((0, read_pos)),
            emit_bounds=EmitBounds.exactly(1),
        )
        return MapOp("m", map_udf(identity_udf, props), FieldMap(fields))

    flow = chain(Source("T", fields), named_map(0), named_map(1))
    result = optimize_plan(flow, catalog)
    assert result.plan_count == 2
    sigs = {signature(p.body) for p in result.ranked}
    assert len(sigs) == 1  # the two orders are indistinguishable by name
    for plan in result.ranked:
        assert result.rank_of(plan.body) == plan.rank


def test_memo_is_shared_across_alternatives(workloads):
    """The memo table ends up holding every distinct sub-plan exactly once."""
    from repro.optimizer import CardinalityEstimator, PlanContext
    from repro.optimizer.physical import PhysicalOptimizer
    from repro.core.plan import body as plan_body
    from repro.optimizer import enumerate_flows

    workload = workloads["tpch_q7"]
    ctx = PlanContext(workload.catalog, AnnotationMode.SCA)
    alternatives = enumerate_flows(plan_body(workload.plan), ctx)
    estimator = CardinalityEstimator(ctx, workload.hints)
    shared = PhysicalOptimizer(ctx, estimator, workload.params)
    for alt in alternatives:
        shared.optimize(alt)
    distinct = set()
    for alt in alternatives:
        stack = [alt]
        while stack:
            n = stack.pop()
            distinct.add(n)
            stack.extend(n.children)
    # every distinct interned subtree was planned exactly once
    assert set(shared._memo) == distinct
    assert len(shared._memo) < sum(1 + _size(a) for a in alternatives)


def _size(node):
    return 1 + sum(_size(c) for c in node.children)
