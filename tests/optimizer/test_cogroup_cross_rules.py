"""Reordering with CoGroup (tagged-union rules, Section 4.3.2) and Cross
(Theorem 3/4), verified both through the legality checks and by executing
enumerated alternatives against the oracle."""

from repro.core import (
    AnnotationMode,
    Catalog,
    CoGroupOp,
    CrossOp,
    FieldMap,
    MapOp,
    ReduceOp,
    Source,
    SourceStats,
    attrs,
    cogroup_udf,
    binary_udf,
    datasets_equal,
    evaluate,
    map_udf,
    node,
    reduce_udf,
)
from repro.optimizer import (
    PlanContext,
    can_exchange_unary_binary,
    enumerate_flows,
)
from tests.conftest import concat_udf, random_rows

L = attrs("l.k", "l.v")
S = attrs("s.k", "s.w")


def make_ctx():
    catalog = Catalog()
    catalog.add_source("L", SourceStats(30))
    catalog.add_source("S", SourceStats(30))
    return PlanContext(catalog, AnnotationMode.SCA)


def balance_groups(left_recs, right_recs, out):
    """CoGroup UDF: per key, emit one record with the group-size delta."""
    if left_recs:
        o = left_recs[0].copy()
    else:
        o = right_recs[0].copy()
    o.set_field(4, len(left_recs) - len(right_recs))
    out.emit(o)


def make_cogroup():
    return CoGroupOp(
        "cg", cogroup_udf(balance_groups), FieldMap(L), FieldMap(S), (0,), (0,)
    )


class TestCoGroupIsAReorderBarrier:
    """The paper's tagged-union push (Section 4.3.2) rewrites the UDF with
    a lineage guard; a non-intrusive optimizer cannot, so CoGroup blocks
    all exchanges.  The first test documents *why*: a key filter above vs
    below a CoGroup is observably different (right-only key groups)."""

    def test_key_filter_above_vs_below_differs(self):
        def key_filter(rec, out):
            if rec.get_field(0) > 0:
                out.emit(rec.copy())

        cg = make_cogroup()
        below = MapOp("fb", map_udf(key_filter), FieldMap(L))
        # Right-only groups: keys present in S but filtered from L.
        data = {
            "L": [{L[0]: 1, L[1]: 0}, {L[0]: -2, L[1]: 0}],
            "S": [{S[0]: 1, S[1]: 5}, {S[0]: -2, S[1]: 6}, {S[0]: 9, S[1]: 7}],
        }
        plan_below = node(
            cg, node(below, node(Source("L", L))), node(Source("S", S))
        )
        out_below = evaluate(plan_below, data)
        # Below the CoGroup, keys -2 and 9 still form (right-only) groups.
        assert len(out_below) == 3
        # Above the CoGroup, the filter would see right-only records that
        # lack l.k entirely — a different (here: failing) computation.
        cg2 = CoGroupOp(
            "cg2", cogroup_udf(balance_groups), FieldMap(L), FieldMap(S), (0,), (0,)
        )
        plan_above = node(
            MapOp("fa2", map_udf(key_filter), FieldMap(L + S + (cg2.new_attr_factory.attr_for(4),))),
            node(cg2, node(Source("L", L)), node(Source("S", S))),
        )
        import pytest as _pytest

        from repro.core import UdfError

        with _pytest.raises(UdfError):
            evaluate(plan_above, data)

    def test_key_filter_exchange_blocked(self):
        def key_filter(rec, out):
            if rec.get_field(0) > 0:
                out.emit(rec.copy())

        ctx = make_ctx()
        m = MapOp("f", map_udf(key_filter), FieldMap(L))
        assert not can_exchange_unary_binary(
            m, make_cogroup(), 0, node(Source("S", S)), ctx
        )

    def test_reduce_past_cogroup_blocked(self):
        def agg(records, out):
            out.emit(records[0].copy())

        ctx = make_ctx()
        r = ReduceOp("agg", reduce_udf(agg), FieldMap(L), (0,))
        assert not can_exchange_unary_binary(
            r, make_cogroup(), 0, node(Source("S", S)), ctx
        )

    def test_enumeration_keeps_cogroup_flow_fixed(self):
        def key_filter(rec, out):
            if rec.get_field(0) > 0:
                out.emit(rec.copy())

        ctx = make_ctx()
        cg = make_cogroup()
        m = MapOp(
            "f", map_udf(key_filter),
            FieldMap(L + S + (cg.new_attr_factory.attr_for(4),)),
        )
        flow = node(m, node(cg, node(Source("L", L)), node(Source("S", S))))
        assert len(enumerate_flows(flow, ctx)) == 1


class TestMapPastCross:
    def test_side_confined_map_passes_and_executes(self):
        def double_v(rec, out):
            r = rec.copy()
            r.set_field(1, rec.get_field(1) * 2)
            out.emit(r)

        ctx = make_ctx()
        cross = CrossOp("x", binary_udf(concat_udf), FieldMap(L), FieldMap(S))
        m = MapOp("dbl", map_udf(double_v), FieldMap(L))
        assert can_exchange_unary_binary(m, cross, 0, node(Source("S", S)), ctx)

        flow = node(m, node(cross, node(Source("L", L)), node(Source("S", S))))
        alternatives = enumerate_flows(flow, ctx)
        assert len(alternatives) == 2
        data = {"L": random_rows(L, 6, seed=3), "S": random_rows(S, 5, seed=4)}
        baseline = evaluate(flow, data)
        for alt in alternatives:
            assert datasets_equal(evaluate(alt, data), baseline)

    def test_reduce_past_cross_blocked(self):
        def agg(records, out):
            out.emit(records[0].copy())

        ctx = make_ctx()
        cross = CrossOp("x", binary_udf(concat_udf), FieldMap(L), FieldMap(S))
        r = ReduceOp("agg", reduce_udf(agg), FieldMap(L), (0,))
        assert not can_exchange_unary_binary(r, cross, 0, node(Source("S", S)), ctx)

    def test_cross_of_cross_rotation_executes(self):
        t_attrs = attrs("t.a", "t.b")
        catalog = Catalog()
        for name in ("L", "S", "T"):
            catalog.add_source(name, SourceStats(5))
        ctx = PlanContext(catalog, AnnotationMode.SCA)
        inner = CrossOp("x1", binary_udf(concat_udf), FieldMap(L), FieldMap(S))
        outer = CrossOp("x2", binary_udf(concat_udf), FieldMap(L + S), FieldMap(t_attrs))
        flow = node(
            outer,
            node(inner, node(Source("L", L)), node(Source("S", S))),
            node(Source("T", t_attrs)),
        )
        alternatives = enumerate_flows(flow, ctx)
        assert len(alternatives) >= 2  # rotations apply to pure Cross trees
        data = {
            "L": random_rows(L, 3, seed=5),
            "S": random_rows(S, 3, seed=6),
            "T": random_rows(t_attrs, 3, seed=7),
        }
        baseline = evaluate(flow, data)
        for alt in alternatives:
            assert datasets_equal(evaluate(alt, data), baseline)
