"""Reference (oracle) evaluator semantics for all five PACT operators."""

import pytest

from repro.core import (
    CoGroupOp,
    CrossOp,
    ExecutionError,
    FieldMap,
    MapOp,
    MatchOp,
    ReduceOp,
    Sink,
    Source,
    attrs,
    binary_udf,
    cogroup_udf,
    datasets_equal,
    evaluate,
    map_udf,
    node,
    reduce_udf,
)
from tests.conftest import concat_udf

A, B = attrs("i.a", "i.b")
C, D = attrs("j.c", "j.d")
AB = FieldMap((A, B))
CD = FieldMap((C, D))


def rows(*pairs):
    return [{A: a, B: b} for a, b in pairs]


def right_rows(*pairs):
    return [{C: c, D: d} for c, d in pairs]


class TestMapSemantics:
    def test_filter_and_transform(self):
        def udf(rec, out):
            if rec.get_field(0) > 0:
                r = rec.copy()
                r.set_field(1, rec.get_field(1) * 2)
                out.emit(r)

        op = MapOp("m", map_udf(udf), AB)
        plan = node(op, node(Source("I", (A, B))))
        result = evaluate(plan, {"I": rows((1, 5), (-1, 5))})
        assert result == [{A: 1, B: 10}]

    def test_multi_emit(self):
        def udf(rec, out):
            out.emit(rec.copy())
            out.emit(rec.copy())

        op = MapOp("m", map_udf(udf), AB)
        plan = node(op, node(Source("I", (A, B))))
        assert len(evaluate(plan, {"I": rows((1, 1))})) == 2


class TestReduceSemantics:
    def test_grouping_and_aggregation(self):
        def udf(records, out):
            total = 0
            for r in records:
                total = total + r.get_field(1)
            o = records[0].copy()
            o.set_field(1, total)
            out.emit(o)

        op = ReduceOp("r", reduce_udf(udf), AB, (0,))
        plan = node(op, node(Source("I", (A, B))))
        result = evaluate(plan, {"I": rows((1, 5), (1, 7), (2, 3))})
        assert datasets_equal(result, [{A: 1, B: 12}, {A: 2, B: 3}])

    def test_group_receives_all_records(self):
        def udf(records, out):
            o = records[0].copy()
            o.set_field(1, len(records))
            out.emit(o)

        op = ReduceOp("r", reduce_udf(udf), AB, (0,))
        plan = node(op, node(Source("I", (A, B))))
        result = evaluate(plan, {"I": rows((7, 0), (7, 1), (7, 2))})
        assert result == [{A: 7, B: 3}]


class TestBinarySemantics:
    def make_sources(self):
        return node(Source("I", (A, B))), node(Source("J", (C, D)))

    def test_match_is_equi_join(self):
        left, right = self.make_sources()
        op = MatchOp("m", binary_udf(concat_udf), AB, CD, (0,), (0,))
        plan = node(op, left, right)
        data = {"I": rows((1, 10), (2, 20)), "J": right_rows((1, 100), (3, 300))}
        result = evaluate(plan, data)
        assert result == [{A: 1, B: 10, C: 1, D: 100}]

    def test_match_duplicates_multiply(self):
        left, right = self.make_sources()
        op = MatchOp("m", binary_udf(concat_udf), AB, CD, (0,), (0,))
        plan = node(op, left, right)
        data = {"I": rows((1, 10), (1, 11)), "J": right_rows((1, 100), (1, 101))}
        assert len(evaluate(plan, data)) == 4

    def test_cross_is_cartesian(self):
        left, right = self.make_sources()
        op = CrossOp("x", binary_udf(concat_udf), AB, CD)
        plan = node(op, left, right)
        data = {"I": rows((1, 0), (2, 0)), "J": right_rows((9, 0), (8, 0), (7, 0))}
        assert len(evaluate(plan, data)) == 6

    def test_cogroup_covers_both_key_domains(self):
        def udf(left_recs, right_recs, out):
            if left_recs:
                base = left_recs[0]
            else:
                base = right_recs[0]
            o = base.new_record()
            o.set_field(4, len(left_recs) * 10 + len(right_recs))
            out.emit(o)

        op = CoGroupOp("cg", cogroup_udf(udf), AB, CD, (0,), (0,))
        counter = op.new_attr_factory.attr_for(4)
        left, right = self.make_sources()
        plan = node(op, left, right)
        data = {"I": rows((1, 0), (1, 0)), "J": right_rows((1, 5), (2, 5))}
        result = evaluate(plan, data)
        counts = sorted(r[counter] for r in result)
        assert counts == [1, 21]  # key 2: right-only; key 1: 2 left + 1 right


class TestErrors:
    def test_missing_source_data(self):
        plan = node(Source("I", (A, B)))
        with pytest.raises(ExecutionError):
            evaluate(plan, {})

    def test_sink_passthrough(self):
        plan = node(Sink("out"), node(Source("I", (A, B))))
        assert evaluate(plan, {"I": rows((1, 2))}) == [{A: 1, B: 2}]
