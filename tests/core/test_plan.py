"""Plan tree structure, signatures, traversal, validation, rendering."""

import pytest

from repro.core import (
    FieldMap,
    MapOp,
    PlanError,
    Sink,
    Source,
    attrs,
    body,
    chain,
    iter_nodes,
    linearize,
    map_udf,
    node,
    render_tree,
    resinked,
    signature,
    validate,
)
from repro.core.plan import render_inline, replace_subtree
from tests.conftest import identity_udf

AB = attrs("i.a", "i.b")


def build_chain(n=3):
    src = Source("I", AB)
    ops = [MapOp(f"m{k}", map_udf(identity_udf), FieldMap(AB)) for k in range(n)]
    return chain(src, *ops), src, ops


class TestStructure:
    def test_arity_checked(self):
        src = Source("I", AB)
        m = MapOp("m", map_udf(identity_udf), FieldMap(AB))
        with pytest.raises(PlanError):
            node(m)  # unary op with no child
        with pytest.raises(PlanError):
            node(m, node(src), node(src))

    def test_chain_builder(self):
        flow, src, ops = build_chain(2)
        assert flow.op is ops[1]
        assert flow.only_child.op is ops[0]
        assert flow.only_child.only_child.op is src

    def test_iter_nodes_preorder(self):
        flow, src, ops = build_chain(2)
        names = [n.op.name for n in iter_nodes(flow)]
        assert names == ["m1", "m0", "I"]

    def test_linearize_bottom_up(self):
        flow, _, _ = build_chain(3)
        assert linearize(flow) == ("m0", "m1", "m2")


class TestSignature:
    def test_structural_identity(self):
        flow_a, _, _ = build_chain(2)
        assert signature(flow_a) == signature(flow_a)

    def test_signature_distinguishes_order(self):
        src = Source("I", AB)
        m0 = MapOp("m0", map_udf(identity_udf), FieldMap(AB))
        m1 = MapOp("m1", map_udf(identity_udf), FieldMap(AB))
        assert signature(chain(src, m0, m1)) != signature(chain(src, m1, m0))

    def test_nodes_hashable_and_equal(self):
        flow_a, src, ops = build_chain(1)
        flow_b = chain(src, *ops)
        assert flow_a == flow_b
        assert hash(flow_a) == hash(flow_b)
        assert len({flow_a, flow_b}) == 1


class TestInterning:
    def test_structurally_equal_nodes_are_identical(self):
        flow_a, src, ops = build_chain(2)
        flow_b = chain(src, *ops)
        assert flow_a is flow_b

    def test_equal_names_distinct_operators_not_confused(self):
        """Operators compare by identity: two operators that merely share a
        name produce distinct plans (with equal signatures)."""
        src = Source("I", AB)
        m_one = MapOp("m", map_udf(identity_udf), FieldMap(AB))
        m_two = MapOp("m", map_udf(identity_udf), FieldMap(AB))
        flow_one = chain(src, m_one)
        flow_two = chain(src, m_two)
        assert flow_one is not flow_two
        assert flow_one != flow_two
        assert signature(flow_one) == signature(flow_two)
        assert len({flow_one, flow_two}) == 2

    def test_signature_cached_and_nested(self):
        flow, _, _ = build_chain(2)
        assert flow.signature is signature(flow)
        assert signature(flow) == ("m1", ("m0", ("I",)))

    def test_nodes_immutable(self):
        flow, _, _ = build_chain(1)
        with pytest.raises(AttributeError):
            flow.op = None


class TestSinkHandling:
    def test_body_strips_sink(self):
        flow, _, _ = build_chain(1)
        plan = node(Sink("out"), flow)
        assert body(plan) == flow
        assert body(flow) == flow

    def test_resinked(self):
        flow, _, _ = build_chain(1)
        sink_plan = node(Sink("out"), flow)
        rebuilt = resinked(sink_plan, flow)
        assert isinstance(rebuilt.op, Sink)
        assert rebuilt.only_child == flow


class TestValidate:
    def test_duplicate_names_rejected(self):
        src = Source("I", AB)
        m = MapOp("dup", map_udf(identity_udf), FieldMap(AB))
        m2 = MapOp("dup", map_udf(identity_udf), FieldMap(AB))
        with pytest.raises(PlanError):
            validate(chain(src, m, m2))

    def test_sink_only_at_root(self):
        src = Source("I", AB)
        inner = node(Sink("s"), node(src))
        m = MapOp("m", map_udf(identity_udf), FieldMap(AB))
        with pytest.raises(PlanError):
            validate(node(Sink("top"), node(m, inner)))

    def test_valid_plan_passes(self):
        flow, _, _ = build_chain(3)
        validate(node(Sink("out"), flow))


class TestRendering:
    def test_render_inline(self):
        flow, _, _ = build_chain(1)
        assert render_inline(flow) == "Map:m0(Source:I)"

    def test_render_tree_mentions_all_ops(self):
        flow, _, _ = build_chain(2)
        text = render_tree(flow)
        for name in ("m0", "m1", "I"):
            assert name in text


class TestReplaceSubtree:
    def test_replace(self):
        flow, src, ops = build_chain(2)
        replacement = node(src)
        rebuilt = replace_subtree(flow, node(ops[0], node(src)), replacement)
        assert linearize(rebuilt) == ("m1",)
