"""FieldSet algebra (finite/cofinite), EmitBounds, conservative properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EmitBounds, FieldSet, KatBehavior, conservative_properties

small_items = st.frozensets(st.integers(0, 6), max_size=4)
fieldsets = st.builds(FieldSet, small_items, st.booleans())
UNIVERSE = frozenset(range(8))


def concrete(fs: FieldSet) -> frozenset:
    return fs.resolve(UNIVERSE)


class TestFieldSetBasics:
    def test_constructors(self):
        assert FieldSet.empty().is_empty()
        assert FieldSet.all().is_all()
        assert 3 in FieldSet.of(3)
        assert 3 not in FieldSet.all_except(3)
        assert 4 in FieldSet.all_except(3)

    def test_add(self):
        assert 1 in FieldSet.empty().add(1)
        assert 3 in FieldSet.all_except(3).add(3)

    def test_resolve(self):
        assert FieldSet.of(1, 99).resolve({1, 2}) == frozenset({1})
        assert FieldSet.all_except(1).resolve({1, 2}) == frozenset({2})


class TestFieldSetAlgebra:
    @given(fieldsets, fieldsets)
    def test_union_matches_set_semantics(self, x, y):
        assert concrete(x.union(y)) == concrete(x) | concrete(y)

    @given(fieldsets, fieldsets)
    def test_intersection_matches_set_semantics(self, x, y):
        assert concrete(x.intersection(y)) == concrete(x) & concrete(y)

    @given(fieldsets, fieldsets)
    def test_disjointness_consistent(self, x, y):
        # Disjointness claims must never be wrong on any concrete universe.
        if x.is_disjoint(y):
            assert not (concrete(x) & concrete(y))

    @given(fieldsets)
    def test_union_with_all(self, x):
        assert x.union(FieldSet.all()).is_all()

    @given(fieldsets)
    def test_intersection_with_empty(self, x):
        assert x.intersection(FieldSet.empty()).is_empty()

    @given(fieldsets, fieldsets, fieldsets)
    def test_union_associative(self, x, y, z):
        left = x.union(y).union(z)
        right = x.union(y.union(z))
        assert concrete(left) == concrete(right)


class TestEmitBounds:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmitBounds(-1, 0)
        with pytest.raises(ValueError):
            EmitBounds(2, 1)

    def test_predicates(self):
        assert EmitBounds.exactly(1).exactly_one
        assert EmitBounds.at_most_one().filter_like
        assert not EmitBounds.unbounded().filter_like
        assert EmitBounds.unbounded().hi is None

    def test_times(self):
        fan = EmitBounds(0, 1).times(EmitBounds.exactly(1))
        assert (fan.lo, fan.hi) == (0, 1)
        unbounded = EmitBounds(1, None).times(EmitBounds.exactly(2))
        assert unbounded.hi is None
        assert unbounded.lo == 2

    def test_contains(self):
        assert EmitBounds(1, 3).contains(2)
        assert not EmitBounds(1, 3).contains(0)
        assert EmitBounds(0, None).contains(10**6)


class TestConservative:
    def test_conservative_shape(self):
        props = conservative_properties("reason")
        assert props.reads.is_all()
        assert props.writes_modified.is_all()
        assert props.writes_projected.is_empty()
        assert props.emit_bounds.hi is None
        assert props.kat_behavior is KatBehavior.ARBITRARY
        assert props.is_conservative()
        assert "reason" in props.notes[0]
