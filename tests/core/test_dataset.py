"""Bag semantics and dataset equality (Section 2.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    attrs,
    bag_of,
    canonical_record,
    datasets_approx_equal,
    datasets_equal,
    project,
    projected_equal,
)

A, B = attrs("a", "b")


class TestCanonical:
    def test_order_independent(self):
        assert canonical_record({A: 1, B: 2}) == canonical_record({B: 2, A: 1})

    def test_nested_values(self):
        assert canonical_record({A: [1, 2]}) == canonical_record({A: (1, 2)})

    def test_dict_values(self):
        left = canonical_record({A: {"x": 1, "y": 2}})
        right = canonical_record({A: {"y": 2, "x": 1}})
        assert left == right


class TestBagEquality:
    def test_permutation_equal(self):
        left = [{A: 1}, {A: 2}, {A: 2}]
        right = [{A: 2}, {A: 1}, {A: 2}]
        assert datasets_equal(left, right)

    def test_multiplicity_matters(self):
        assert not datasets_equal([{A: 1}], [{A: 1}, {A: 1}])

    def test_value_matters(self):
        assert not datasets_equal([{A: 1}], [{A: 2}])

    @given(st.lists(st.integers(0, 3), max_size=6), st.randoms())
    def test_shuffle_invariance(self, values, rng):
        rows = [{A: v} for v in values]
        shuffled = list(rows)
        rng.shuffle(shuffled)
        assert datasets_equal(rows, shuffled)

    def test_bag_of_counts(self):
        bag = bag_of([{A: 1}, {A: 1}, {A: 2}])
        assert sum(bag.values()) == 3
        assert len(bag) == 2


class TestProjection:
    def test_project_keeps_wanted(self):
        rows = [{A: 1, B: 2}]
        assert project(rows, (A,)) == [{A: 1}]

    def test_project_skips_missing(self):
        rows = [{A: 1}]
        assert project(rows, (A, B)) == [{A: 1}]

    def test_projected_equal_ignores_passthrough(self):
        left = [{A: 1, B: 99}]
        right = [{A: 1}]
        assert projected_equal(left, right, (A,))
        assert not projected_equal(left, right, (A, B))


class TestApproxEquality:
    def test_float_summation_order_tolerated(self):
        left = [{A: 0.1 + 0.2}]
        right = [{A: 0.3}]
        assert not datasets_equal(left, right)
        assert datasets_approx_equal(left, right)

    def test_real_differences_detected(self):
        assert not datasets_approx_equal([{A: 1.0}], [{A: 1.5}])
